#!/usr/bin/env python3
"""RecSys serving scenario: DLRM-DCNv2 RM1/RM2 on a single device.

Reproduces the Section 3.5 / 4.1 RecSys story: end-to-end RM1/RM2
inference across batch sizes and embedding widths (Figure 11), plus
the embedding-operator comparison behind it (Figure 15).

Run with::

    python examples/recsys_serving.py
"""

from repro import get_device
from repro.core.report import render_table
from repro.kernels.embedding import (
    A100Fbgemm,
    EmbeddingConfig,
    GaudiBatchedTable,
    GaudiSdkSingleTable,
    GaudiSingleTable,
)
from repro.models.dlrm import DlrmCostModel, RM1_CONFIG, RM2_CONFIG
from repro.serving import RecSysServer


def end_to_end() -> None:
    gaudi, a100 = get_device("gaudi2"), get_device("a100")
    rows = []
    for base in (RM1_CONFIG, RM2_CONFIG):
        for dim in (16, 64, 256):
            config = base.with_embedding_dim(dim)
            for batch in (1024, 16384):
                gaudi_report = RecSysServer(DlrmCostModel(config, gaudi)).serve_batch(batch)
                a100_report = RecSysServer(DlrmCostModel(config, a100)).serve_batch(batch)
                rows.append((
                    base.name, f"{dim * 4}B", batch,
                    f"{gaudi_report.requests_per_s / 1e6:.2f}M",
                    f"{a100_report.requests_per_s / 1e6:.2f}M",
                    f"{a100_report.latency / gaudi_report.latency:.2f}x",
                    f"{a100_report.energy_joules / gaudi_report.energy_joules:.2f}x",
                ))
    print(render_table(
        ["Model", "Vector", "Batch", "Gaudi req/s", "A100 req/s",
         "Speedup", "Energy-eff"],
        rows,
        title="Figure 11 flavour: RM1/RM2 single-device serving (FP32)",
    ))
    print()


def embedding_operators() -> None:
    operators = [
        GaudiSdkSingleTable(),
        GaudiSingleTable(),
        GaudiBatchedTable(),
        A100Fbgemm(),
    ]
    rows = []
    for batch in (512, 8192):
        config = EmbeddingConfig(
            num_tables=RM2_CONFIG.num_tables,
            rows_per_table=RM2_CONFIG.rows_per_table,
            embedding_dim=64,
            pooling=RM2_CONFIG.pooling,
            batch_size=batch,
        )
        for op in operators:
            result = op.run(config)
            rows.append((
                op.name, batch, result.launches,
                f"{result.time * 1e3:.2f}",
                f"{result.bandwidth_utilization:.1%}",
            ))
    print(render_table(
        ["Operator", "Batch", "Launches", "Time (ms)", "BW util"],
        rows,
        title="Figure 15 flavour: embedding operators on the RM2 config (256 B rows)",
    ))


if __name__ == "__main__":
    end_to_end()
    embedding_operators()
