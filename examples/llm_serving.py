#!/usr/bin/env python3
"""LLM serving scenario: Llama-3.1-8B behind a vLLM-style engine.

Reproduces the Section 4.2 serving setup on both platforms: a
Dynamic-Sonnet-like request mix through the continuous-batching engine
with PagedAttention, sweeping the maximum decode batch size
(Figure 17(d, e)), plus a multi-device 70B comparison (Figure 12).

Run with::

    python examples/llm_serving.py
"""

from repro import get_device
from repro.core.report import render_table
from repro.models.llama import (
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    DecodeAttention,
    LlamaCostModel,
)
from repro.models.tensor_parallel import TensorParallelConfig
from repro.serving import LlmServingEngine, dynamic_sonnet_requests


def serve_8b() -> None:
    gaudi, a100 = get_device("gaudi2"), get_device("a100")
    rows = []
    for max_batch in (8, 32, 128):
        gaudi_report = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=max_batch,
        ).run(dynamic_sonnet_requests(64, seed=0))
        a100_report = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, a100),
            DecodeAttention.PAGED_CUDA,
            max_decode_batch=max_batch,
        ).run(dynamic_sonnet_requests(64, seed=0))
        for report in (gaudi_report, a100_report):
            rows.append((
                report.device,
                max_batch,
                f"{report.throughput_tokens_per_s:.0f}",
                f"{report.mean_ttft:.2f}",
                f"{report.mean_tpot * 1e3:.1f}",
                f"{report.average_power:.0f}",
                f"{report.energy_per_token * 1e3:.1f}",
            ))
    print(render_table(
        ["Device", "Max batch", "tok/s", "TTFT (s)", "TPOT (ms)",
         "Power (W)", "mJ/token"],
        rows,
        title="Llama-3.1-8B vLLM-style serving, Dynamic-Sonnet-like mix",
    ))
    print()


def serve_70b_multi_device() -> None:
    gaudi, a100 = get_device("gaudi2"), get_device("a100")
    rows = []
    for tp in (2, 4, 8):
        gaudi_est = LlamaCostModel(
            LLAMA_3_1_70B, gaudi, TensorParallelConfig.for_device(gaudi, tp)
        ).generate(batch=32, input_len=100, output_len=100)
        a100_est = LlamaCostModel(
            LLAMA_3_1_70B, a100, TensorParallelConfig.for_device(a100, tp)
        ).generate(batch=32, input_len=100, output_len=100)
        rows.append((
            f"TP{tp}",
            f"{gaudi_est.tokens_per_second:.0f}",
            f"{a100_est.tokens_per_second:.0f}",
            f"{a100_est.total_time / gaudi_est.total_time:.2f}x",
            f"{a100_est.energy_joules / gaudi_est.energy_joules:.2f}x",
        ))
    print(render_table(
        ["Devices", "Gaudi tok/s", "A100 tok/s", "Speedup", "Energy-eff"],
        rows,
        title="Llama-3.1-70B multi-device serving (batch 32, 100->100 tokens)",
    ))


if __name__ == "__main__":
    serve_8b()
    serve_70b_multi_device()
