#!/usr/bin/env python3
"""Hands-on TPC-C kernel tuning: the paper's two best practices.

Builds a custom element-wise kernel with the TPC DSL and walks through
the optimizations Section 2.2 recommends -- 256-byte access granularity
and manual loop unrolling -- showing each one's effect on a single TPC
and on the whole chip (Figure 8's methodology as a library).

Run with::

    python examples/tpc_kernel_tuning.py
"""

import numpy as np

from repro.core.report import render_table
from repro.kernels.stream import StreamOp, reference_result, run_stream
from repro.hw.device import Gaudi2Device
from repro.tpc import TpcKernelBuilder, TpcLauncher
from repro.tpc.isa import Opcode

N = 24_000_000


def best_practices_sweep() -> None:
    gaudi = Gaudi2Device()
    rows = []
    # Best practice 1: align accesses to the 256 B granularity.
    for granularity in (32, 128, 256):
        result = run_stream(device=gaudi, op=StreamOp.TRIAD, num_elements=N,
                            access_bytes=granularity, num_cores=1)
        rows.append(("granularity", f"{granularity}B", 1, 1,
                     f"{result.achieved_gflops:.1f}"))
    # Best practice 2: unroll the loop.
    for unroll in (1, 4):
        result = run_stream(device=gaudi, op=StreamOp.SCALE, num_elements=N, unroll=unroll,
                            num_cores=1)
        rows.append(("unroll", "256B", unroll, 1, f"{result.achieved_gflops:.1f}"))
    # Then scale out across TPCs.
    for cores in (4, 12, 24):
        result = run_stream(device=gaudi, op=StreamOp.TRIAD, num_elements=N, unroll=4,
                            num_cores=cores)
        rows.append(("scale-out", "256B", 4, cores, f"{result.achieved_gflops:.1f}"))
    print(render_table(
        ["Knob", "Access", "Unroll", "TPCs", "GFLOPS"],
        rows,
        title="TPC best practices on the STREAM kernels (BF16)",
    ))
    print()


def custom_kernel() -> None:
    """A custom fused multiply-add-max kernel, timed and verified."""

    def body(b: TpcKernelBuilder) -> None:
        x = b.load_tensor("x")
        y = b.load_tensor("y")
        mac = b.vec_into(Opcode.MAC, y, x)   # y += scale * x
        clipped = b.vec(Opcode.MAX, mac, x)
        b.store_tensor("out", clipped)

    def functional(x: np.ndarray, y: np.ndarray, scalar: float = 2.0) -> np.ndarray:
        return np.maximum(y + x * scalar, x)

    kernel = TpcKernelBuilder("mac_clip").build_loop(
        body, iterations=N // 128, unroll=4, functional=functional
    )
    launch = TpcLauncher().launch(kernel)
    print(f"custom kernel '{kernel.name}': {launch.time * 1e3:.2f} ms "
          f"({launch.achieved_flops / 1e9:.0f} GFLOPS, "
          f"bottleneck: {launch.bottleneck})")

    # The functional model verifies semantics on real data.
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=1024), rng.normal(size=1024)
    out = kernel.run_functional(x, y)
    reference = np.maximum(reference_result(StreamOp.TRIAD, x, y, scalar=2.0), x)
    np.testing.assert_allclose(out, reference)
    print("functional check: OK (matches numpy reference)")


if __name__ == "__main__":
    best_practices_sweep()
    custom_kernel()
