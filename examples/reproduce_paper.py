#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Run with::

    python examples/reproduce_paper.py          # fast sweeps (~30 s)
    python examples/reproduce_paper.py --full   # the full grids

Writes the rendered rows/series to ``paper_results/`` and prints each
artifact's headline summary.
"""

import argparse
import pathlib

from repro.figures import generate_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full parameter grids")
    parser.add_argument("--out", default="paper_results",
                        help="output directory for the rendered reports")
    parser.add_argument("--workers", default=None,
                        help="process-pool size for figure generation "
                             "('auto' = one per core, capped)")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)

    results = generate_all(fast=not args.full, workers=args.workers)
    for figure_id, result in results.items():
        (out_dir / f"{figure_id}.txt").write_text(result.text + "\n")
        print(f"== {figure_id}: {result.title} ({len(result.rows)} rows) ==")
        for key, value in result.summary.items():
            print(f"   {key} = {value:.4g}")
        print()
    print(f"full reports written to {out_dir}/")


if __name__ == "__main__":
    main()
