#!/usr/bin/env python3
"""The paper's forward pointers, quantified: Gaudi-3 and training.

Footnote 1 describes Gaudi-3 as architecturally identical to Gaudi-2
with scaled engines; Section 5 names training as future work.  This
example runs both projections on the device models, plus the
CUDA/HPU-Graphs tuning knob the methodology section mentions.

Run with::

    python examples/future_projections.py
"""

from repro import get_device
from repro.core.report import render_table
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.models.training import LlamaTrainingCostModel
from repro.tools import GaudiProfiler


def gaudi3_projection() -> None:
    a100 = get_device("a100")
    rows = []
    for name in ("gaudi2", "gaudi3", "a100"):
        device = get_device(name)
        est = LlamaCostModel(LLAMA_3_1_8B, device).generate(32, 100, 100)
        ref = LlamaCostModel(LLAMA_3_1_8B, a100).generate(32, 100, 100)
        rows.append((
            device.name,
            f"{est.tokens_per_second:.0f}",
            f"{ref.total_time / est.total_time:.2f}x",
            f"{est.average_power:.0f}",
            f"{est.tokens_per_joule:.2f}",
        ))
    print(render_table(
        ["Device", "tok/s", "Speedup vs A100", "Power (W)", "tok/J"],
        rows,
        title="Gaudi-3 projection: Llama-3.1-8B serving (batch 32, 100->100)",
    ))
    print()


def training_projection() -> None:
    rows = []
    for name in ("gaudi2", "a100", "gaudi3"):
        device = get_device(name)
        step = LlamaTrainingCostModel(LLAMA_3_1_8B, device, data_parallel=8).step(
            128, 4096
        )
        rows.append((
            device.name, f"{step.step_time * 1e3:.0f}",
            f"{step.tokens_per_second:.0f}",
            f"{step.model_flops_utilization:.1%}",
            f"{step.gradient_allreduce_time * 1e3:.1f}",
        ))
    print(render_table(
        ["Device", "Step (ms)", "tok/s", "MFU", "Grad AllReduce (ms)"],
        rows,
        title="Training projection: 8B pre-training step, 8-way data parallel",
    ))
    print()


def graphs_knob() -> None:
    gaudi = get_device("gaudi2")
    with_graphs = LlamaCostModel(LLAMA_3_1_8B, gaudi, use_graphs=True)
    eager = LlamaCostModel(LLAMA_3_1_8B, gaudi, use_graphs=False)
    t_graphs = with_graphs.decode_step(8, 256).time
    t_eager = eager.decode_step(8, 256).time
    print(f"HPU Graphs tuning knob (decode step, batch 8): "
          f"{t_eager * 1e3:.2f} ms eager -> {t_graphs * 1e3:.2f} ms captured "
          f"({t_eager / t_graphs:.2f}x)")
    print()


def geometry_reverse_engineering() -> None:
    grouped = GaudiProfiler().geometry_map(
        m_sizes=(64, 256, 2048, 16384), n_sizes=(64, 256, 2048, 16384)
    )
    print("MME geometry map recovered via the profiler (Figure 7(a) method):")
    for geometry, points in sorted(grouped.items()):
        print(f"  {geometry:11s} <- {points}")


if __name__ == "__main__":
    gaudi3_projection()
    training_projection()
    graphs_knob()
    geometry_reverse_engineering()
