#!/usr/bin/env python3
"""Quickstart: the two device models and the Table 1 / Figure 4 story.

Run with::

    python examples/quickstart.py
"""

from repro import get_device
from repro.core.report import render_table
from repro.core.roofline import Roofline
from repro.hw.spec import spec_comparison_rows
from repro.kernels.gemm import run_gemm


def main() -> None:
    gaudi = get_device("gaudi2")
    a100 = get_device("a100")

    # ------------------------------------------------------------------
    # Table 1: the spec sheets.
    # ------------------------------------------------------------------
    print(render_table(
        ["Metric", "A100", "Gaudi-2", "Ratio"],
        spec_comparison_rows(),
        title="Table 1: NVIDIA A100 vs Intel Gaudi-2",
    ))
    print()

    # ------------------------------------------------------------------
    # GEMM: the configurable MME vs fixed-tile Tensor Cores.
    # ------------------------------------------------------------------
    rows = []
    for m, k, n in [(512, 512, 512), (2048, 2048, 2048), (8192, 8192, 8192),
                    (8192, 8192, 16)]:
        pg = run_gemm(device=gaudi, m=m, k=k, n=n)
        pa = run_gemm(device=a100, m=m, k=k, n=n)
        rows.append((
            f"{m}x{k}x{n}",
            f"{pg.achieved_tflops:.0f} TF ({pg.utilization:.0%})",
            f"{pa.achieved_tflops:.0f} TF ({pa.utilization:.0%})",
            f"{pg.achieved_tflops / pa.achieved_tflops:.2f}x",
            pg.config_label,
        ))
    print(render_table(
        ["GEMM", "Gaudi-2", "A100", "Speedup", "MME config"],
        rows,
        title="Figure 4 flavour: GEMM on both matrix engines (BF16)",
    ))
    print()

    # ------------------------------------------------------------------
    # Rooflines.
    # ------------------------------------------------------------------
    for device in (gaudi, a100):
        roofline = Roofline.for_device(device.spec)
        print(
            f"{device.name}: peak {roofline.peak_flops / 1e12:.0f} TFLOPS, "
            f"{roofline.peak_bandwidth / 1e12:.2f} TB/s, "
            f"ridge at {roofline.ridge_point:.0f} flops/byte"
        )


if __name__ == "__main__":
    main()
