#!/usr/bin/env python
"""Validate a chrome://tracing JSON document against the repro schema.

The contract is the one :mod:`repro.obs.exporters` writes (and
``repro trace`` / :func:`repro.tools.profiler.chrome_trace` emit):

* top level is an object with a ``traceEvents`` list and
  ``displayTimeUnit`` of ``"ms"``;
* every event has a ``ph`` in the understood set and a ``pid``;
* ``X`` (complete) events carry numeric ``ts``/``dur`` and a ``cat``;
* ``C`` (counter) events carry a numeric ``args.value``;
* ``b``/``e`` async events pair up per (name, id);
* a serving trace covers all five layers: engine, scheduler, kv,
  collective, and power (``--layers`` toggles this check).

Stdlib-only on purpose: CI runs it against the ``repro trace`` output
without installing anything.

Usage::

    python scripts/check_trace_schema.py trace.json
    python scripts/check_trace_schema.py --no-layers hw_trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

#: Event phases the exporters emit.
KNOWN_PHASES = {"M", "X", "C", "i", "b", "e"}

#: Span categories a full serving trace must cover.
REQUIRED_LAYERS = {"engine", "scheduler", "kv", "collective", "power"}


def check_trace(document: dict, require_layers: bool = True) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["top level must contain a 'traceEvents' list"]
    if document.get("displayTimeUnit") != "ms":
        errors.append("displayTimeUnit must be 'ms'")
    if not events:
        errors.append("traceEvents is empty")

    categories = set()
    async_open: dict = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        if "cat" in event:
            categories.add(event["cat"])
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(f"{where}: X event needs numeric {key!r}")
            if "cat" not in event:
                errors.append(f"{where}: X event needs a 'cat'")
            if not isinstance(event.get("tid"), int):
                errors.append(f"{where}: X event needs an integer tid")
            elif isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                errors.append(f"{where}: negative duration")
        elif phase == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: C event needs numeric args.value")
        elif phase in ("b", "e"):
            key = (event.get("name"), event.get("id"))
            if None in key:
                errors.append(f"{where}: async event needs name and id")
            elif phase == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    errors.append(f"{where}: 'e' event without matching 'b' {key}")
                else:
                    async_open[key] -= 1

    for key, count in sorted(async_open.items()):
        if count != 0:
            errors.append(f"unbalanced async span {key}: {count} unclosed 'b'")
    if require_layers:
        missing = REQUIRED_LAYERS - categories
        if missing:
            errors.append(
                f"serving trace must cover layers {sorted(REQUIRED_LAYERS)}; "
                f"missing {sorted(missing)}"
            )
    return errors


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; exit code 0 iff the document is valid."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to a chrome trace JSON file")
    parser.add_argument(
        "--no-layers",
        dest="layers",
        action="store_false",
        help="skip the serving-layer coverage check (for HW-profile traces)",
    )
    args = parser.parse_args(argv)
    with open(args.trace, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    errors = check_trace(document, require_layers=args.layers)
    if errors:
        for error in errors:
            print(f"SCHEMA ERROR: {error}", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    print(f"{args.trace}: OK ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
