#!/usr/bin/env python
"""Assert the streaming serving path runs in constant memory.

Runs the same release-mode streaming workload (lazy dataset -> lazy
Poisson stamping -> ``LlmServingEngine.run`` over an iterator) at two
trace lengths a decade apart and compares ``tracemalloc`` peaks.  If
the long run's peak grows past a small constant factor of the short
run's, some layer is materializing the trace (or leaking per-request
state) and the million-request recipe in EXPERIMENTS.md is broken.

A warmup run fills the bounded cost-model caches first so the traced
runs measure only per-run engine state, not cache population.

Usage::

    PYTHONPATH=src python scripts/check_streaming_memory.py
    PYTHONPATH=src python scripts/check_streaming_memory.py --small 500 --factor 4
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc

from repro.hw import get_device
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.serving import LlmServingEngine, iter_dynamic_sonnet_requests
from repro.serving.loadgen import poisson_arrivals


def _run(num_requests: int, rate: float) -> int:
    """One release-mode streaming run; returns the tracemalloc peak."""
    engine = LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, get_device("gaudi2")),
        max_decode_batch=64,
        retain_requests=False,
    )
    arrivals = poisson_arrivals(
        iter_dynamic_sonnet_requests(num_requests, seed=0), rate, seed=0
    )
    tracemalloc.start()
    engine.run(arrivals)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", type=int, default=1000,
                        help="short trace length (long run is 10x this)")
    parser.add_argument("--rate", type=float, default=11.0,
                        help="offered req/s (keep below the sustainable "
                             "rate so the backlog stays bounded)")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="max allowed peak growth for the 10x trace")
    args = parser.parse_args(argv)

    large_n = 10 * args.small
    _run(large_n, args.rate)  # warmup: populate bounded caches untraced
    small = _run(args.small, args.rate)
    large = _run(large_n, args.rate)
    ratio = large / small if small else float("inf")
    print(f"peak({args.small:>7}) = {small / 1e6:8.3f} MB")
    print(f"peak({large_n:>7}) = {large / 1e6:8.3f} MB  "
          f"(ratio {ratio:.2f}x, limit {args.factor:.2f}x)")
    if large >= args.factor * small:
        print("FAIL: streaming peak grows with trace length", file=sys.stderr)
        return 1
    print("OK: streaming serving peak is constant in trace length")
    return 0


if __name__ == "__main__":
    sys.exit(main())
