"""Fleet-level resilience reporting.

A :class:`FleetResilienceReport` partitions the run at two levels that
must never be conflated: the *fleet* ledger counts client-visible
requests (admitted = finished + shed + unfinished), while the
*attempt* ledger counts per-node engine requests (a single fleet
request that failed over twice contributed three attempts).  Shed
reasons are likewise split by scope -- gateway-decided
(``gateway-``-prefixed) vs engine-decided -- via
:func:`repro.faults.report.shed_reason_counts`, so fleet and node
reports never double-count a rejection.

``to_payload`` is the journal encoding: exact (unrounded) floats, so a
resumed run rebuilds the report byte-identically.  ``to_dict`` is the
display encoding (rounded), and ``render`` is fixed-format -- the same
seed and config always produce the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["FleetResilienceReport", "NodeReport", "TenantReport"]


@dataclass(frozen=True)
class TenantReport:
    """One tenant's slice of a fleet run's client-visible ledger."""

    name: str
    tier: int
    admitted: int           # requests attributed to this tenant
    finished: int
    shed: int
    quota_shed: int         # shed by the tenant's token bucket
    overload_shed: int      # shed by the CoDel overload response
    unfinished: int
    mean_ttft: float
    p99_ttft: float
    ttft_slo: float         # 0.0 = no SLO configured
    slo_violations: int     # finished requests with TTFT above the SLO

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "tier": self.tier,
            "admitted": self.admitted,
            "finished": self.finished,
            "shed": self.shed,
            "quota_shed": self.quota_shed,
            "overload_shed": self.overload_shed,
            "unfinished": self.unfinished,
            "mean_ttft": self.mean_ttft,
            "p99_ttft": self.p99_ttft,
            "ttft_slo": self.ttft_slo,
            "slo_violations": self.slo_violations,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "TenantReport":
        return cls(
            name=str(data["name"]),
            tier=int(data["tier"]),
            admitted=int(data["admitted"]),
            finished=int(data["finished"]),
            shed=int(data["shed"]),
            quota_shed=int(data["quota_shed"]),
            overload_shed=int(data["overload_shed"]),
            unfinished=int(data["unfinished"]),
            mean_ttft=float(data["mean_ttft"]),
            p99_ttft=float(data["p99_ttft"]),
            ttft_slo=float(data["ttft_slo"]),
            slo_violations=int(data["slo_violations"]),
        )


@dataclass(frozen=True)
class NodeReport:
    """One node's contribution to a fleet run."""

    name: str
    node_class: str
    device: str
    final_state: str
    crashes: int
    attempts: int           # attempts routed to this node
    finished: int           # attempts served to completion here
    shed_engine: int        # engine-decided sheds (KV, deadline, ...)
    shed_gateway: int       # gateway cancellations (timeout, lost hedge)
    failed: int             # attempts failed (node crash)
    engine_steps: int
    total_output_tokens: int
    mean_ttft: float
    clock: float            # node engine's final virtual time

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "node_class": self.node_class,
            "device": self.device,
            "final_state": self.final_state,
            "crashes": self.crashes,
            "attempts": self.attempts,
            "finished": self.finished,
            "shed_engine": self.shed_engine,
            "shed_gateway": self.shed_gateway,
            "failed": self.failed,
            "engine_steps": self.engine_steps,
            "total_output_tokens": self.total_output_tokens,
            "mean_ttft": self.mean_ttft,
            "clock": self.clock,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "NodeReport":
        return cls(
            name=str(data["name"]),
            node_class=str(data["node_class"]),
            device=str(data["device"]),
            final_state=str(data["final_state"]),
            crashes=int(data["crashes"]),
            attempts=int(data["attempts"]),
            finished=int(data["finished"]),
            shed_engine=int(data["shed_engine"]),
            shed_gateway=int(data["shed_gateway"]),
            failed=int(data["failed"]),
            engine_steps=int(data["engine_steps"]),
            total_output_tokens=int(data["total_output_tokens"]),
            mean_ttft=float(data["mean_ttft"]),
            clock=float(data["clock"]),
        )


@dataclass(frozen=True)
class FleetResilienceReport:
    """Aggregate outcome of one multi-node fleet run."""

    # -- configuration echo --------------------------------------------
    nodes_spec: str
    policy: str
    seed: int
    # -- fleet request ledger (client-visible) -------------------------
    admitted: int
    finished: int
    shed: int
    unfinished: int
    # -- attempt ledger (per-node engine requests) ---------------------
    attempts: int
    attempt_finished: int
    attempt_shed_engine: int
    attempt_shed_gateway: int
    attempt_failed: int
    # -- gateway pipeline ----------------------------------------------
    retries: int
    failovers: int
    timeouts: int
    hedges: int
    hedge_wasted: int
    probes: int
    # -- chaos / autoscale ---------------------------------------------
    node_crashes: int
    scale_ups: int
    scale_downs: int
    # -- service quality -----------------------------------------------
    total_time: float
    total_output_tokens: int
    throughput_tokens_per_s: float
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    p99_tpot: float
    shed_reasons_gateway: Tuple[Tuple[str, int], ...] = ()
    shed_reasons_engine: Tuple[Tuple[str, int], ...] = ()
    node_reports: Tuple[NodeReport, ...] = ()
    fault_log: Tuple[str, ...] = field(default=(), repr=False)
    autoscale_log: Tuple[str, ...] = field(default=(), repr=False)
    watchdog_reason: str = ""
    # -- tenants / admission (all default: pre-admission journals) -----
    tenant_reports: Tuple[TenantReport, ...] = ()
    quota_sheds: int = 0
    overload_sheds: int = 0
    brownout_entries: int = 0
    admission_mode_log: Tuple[str, ...] = field(default=(), repr=False)
    # -- circuit breakers ----------------------------------------------
    breaker_opens: int = 0
    breaker_probes: int = 0
    breaker_closes: int = 0
    breaker_short_circuits: int = 0
    # -- rolling upgrades ----------------------------------------------
    upgrades_started: int = 0
    upgrades_completed: int = 0
    upgrade_log: Tuple[str, ...] = field(default=(), repr=False)

    @property
    def watchdog_tripped(self) -> bool:
        return bool(self.watchdog_reason)

    @property
    def completion_rate(self) -> float:
        return self.finished / self.admitted if self.admitted else 0.0

    # -- journal encoding (exact) --------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Exact (unrounded) payload; round-trips bit-identically
        through :meth:`from_payload` -- the fleet-journal contract."""
        return {
            "nodes_spec": self.nodes_spec,
            "policy": self.policy,
            "seed": self.seed,
            "admitted": self.admitted,
            "finished": self.finished,
            "shed": self.shed,
            "unfinished": self.unfinished,
            "attempts": self.attempts,
            "attempt_finished": self.attempt_finished,
            "attempt_shed_engine": self.attempt_shed_engine,
            "attempt_shed_gateway": self.attempt_shed_gateway,
            "attempt_failed": self.attempt_failed,
            "retries": self.retries,
            "failovers": self.failovers,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "hedge_wasted": self.hedge_wasted,
            "probes": self.probes,
            "node_crashes": self.node_crashes,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "total_time": self.total_time,
            "total_output_tokens": self.total_output_tokens,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "mean_ttft": self.mean_ttft,
            "p99_ttft": self.p99_ttft,
            "mean_tpot": self.mean_tpot,
            "p99_tpot": self.p99_tpot,
            "shed_reasons_gateway": [list(item) for item in self.shed_reasons_gateway],
            "shed_reasons_engine": [list(item) for item in self.shed_reasons_engine],
            "node_reports": [node.to_payload() for node in self.node_reports],
            "fault_log": list(self.fault_log),
            "autoscale_log": list(self.autoscale_log),
            "watchdog_reason": self.watchdog_reason,
            "tenant_reports": [tenant.to_payload() for tenant in self.tenant_reports],
            "quota_sheds": self.quota_sheds,
            "overload_sheds": self.overload_sheds,
            "brownout_entries": self.brownout_entries,
            "admission_mode_log": list(self.admission_mode_log),
            "breaker_opens": self.breaker_opens,
            "breaker_probes": self.breaker_probes,
            "breaker_closes": self.breaker_closes,
            "breaker_short_circuits": self.breaker_short_circuits,
            "upgrades_started": self.upgrades_started,
            "upgrades_completed": self.upgrades_completed,
            "upgrade_log": list(self.upgrade_log),
        }

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "FleetResilienceReport":
        return cls(
            nodes_spec=str(data["nodes_spec"]),
            policy=str(data["policy"]),
            seed=int(data["seed"]),
            admitted=int(data["admitted"]),
            finished=int(data["finished"]),
            shed=int(data["shed"]),
            unfinished=int(data["unfinished"]),
            attempts=int(data["attempts"]),
            attempt_finished=int(data["attempt_finished"]),
            attempt_shed_engine=int(data["attempt_shed_engine"]),
            attempt_shed_gateway=int(data["attempt_shed_gateway"]),
            attempt_failed=int(data["attempt_failed"]),
            retries=int(data["retries"]),
            failovers=int(data["failovers"]),
            timeouts=int(data["timeouts"]),
            hedges=int(data["hedges"]),
            hedge_wasted=int(data["hedge_wasted"]),
            probes=int(data["probes"]),
            node_crashes=int(data["node_crashes"]),
            scale_ups=int(data["scale_ups"]),
            scale_downs=int(data["scale_downs"]),
            total_time=float(data["total_time"]),
            total_output_tokens=int(data["total_output_tokens"]),
            throughput_tokens_per_s=float(data["throughput_tokens_per_s"]),
            mean_ttft=float(data["mean_ttft"]),
            p99_ttft=float(data["p99_ttft"]),
            mean_tpot=float(data["mean_tpot"]),
            p99_tpot=float(data["p99_tpot"]),
            shed_reasons_gateway=tuple(
                (str(reason), int(count))
                for reason, count in data.get("shed_reasons_gateway", [])
            ),
            shed_reasons_engine=tuple(
                (str(reason), int(count))
                for reason, count in data.get("shed_reasons_engine", [])
            ),
            node_reports=tuple(
                NodeReport.from_payload(node) for node in data.get("node_reports", [])
            ),
            fault_log=tuple(str(entry) for entry in data.get("fault_log", [])),
            autoscale_log=tuple(str(entry) for entry in data.get("autoscale_log", [])),
            watchdog_reason=str(data.get("watchdog_reason", "")),
            tenant_reports=tuple(
                TenantReport.from_payload(tenant)
                for tenant in data.get("tenant_reports", [])
            ),
            quota_sheds=int(data.get("quota_sheds", 0)),
            overload_sheds=int(data.get("overload_sheds", 0)),
            brownout_entries=int(data.get("brownout_entries", 0)),
            admission_mode_log=tuple(
                str(entry) for entry in data.get("admission_mode_log", [])
            ),
            breaker_opens=int(data.get("breaker_opens", 0)),
            breaker_probes=int(data.get("breaker_probes", 0)),
            breaker_closes=int(data.get("breaker_closes", 0)),
            breaker_short_circuits=int(data.get("breaker_short_circuits", 0)),
            upgrades_started=int(data.get("upgrades_started", 0)),
            upgrades_completed=int(data.get("upgrades_completed", 0)),
            upgrade_log=tuple(str(entry) for entry in data.get("upgrade_log", [])),
        )

    # -- Report protocol (display encodings) ---------------------------
    def to_dict(self) -> Dict[str, object]:
        payload = self.to_payload()
        for key in ("total_time", "mean_ttft", "p99_ttft"):
            payload[key] = round(float(payload[key]), 9)
        for key in ("mean_tpot", "p99_tpot"):
            payload[key] = round(float(payload[key]), 9)
        payload["throughput_tokens_per_s"] = round(self.throughput_tokens_per_s, 6)
        payload["completion_rate"] = round(self.completion_rate, 6)
        payload["shed_reasons_gateway"] = dict(self.shed_reasons_gateway)
        payload["shed_reasons_engine"] = dict(self.shed_reasons_engine)
        for node in payload["node_reports"]:
            node["mean_ttft"] = round(float(node["mean_ttft"]), 9)
            node["clock"] = round(float(node["clock"]), 9)
        for tenant in payload["tenant_reports"]:
            tenant["mean_ttft"] = round(float(tenant["mean_ttft"]), 9)
            tenant["p99_ttft"] = round(float(tenant["p99_ttft"]), 9)
        return payload

    def to_json(self) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """The report as one CSV row (nested fields JSON-encoded)."""
        from repro.api.report import rows_to_csv

        row = self.to_dict()
        for key in (
            "shed_reasons_gateway", "shed_reasons_engine", "node_reports",
            "fault_log", "autoscale_log", "tenant_reports",
            "admission_mode_log", "upgrade_log",
        ):
            row[key] = json.dumps(row[key], sort_keys=True)
        return rows_to_csv([row])

    def render(self) -> str:
        """Fixed-format text report (byte-identical per seed)."""
        lines: List[str] = []
        lines.append(
            f"Fleet resilience report: {self.nodes_spec} "
            f"(policy={self.policy}, seed={self.seed})"
        )
        lines.append(
            f"  requests   : {self.admitted} admitted | "
            f"{self.finished} finished | {self.shed} shed | "
            f"{self.unfinished} unfinished"
        )
        lines.append(
            f"  attempts   : {self.attempts} dispatched | "
            f"{self.attempt_finished} finished | "
            f"{self.attempt_shed_engine} shed by engines | "
            f"{self.attempt_shed_gateway} cancelled by gateway | "
            f"{self.attempt_failed} failed"
        )
        lines.append(
            f"  pipeline   : {self.retries} retries | {self.failovers} failovers | "
            f"{self.timeouts} timeouts | {self.hedges} hedges "
            f"({self.hedge_wasted} wasted) | {self.probes} probes"
        )
        lines.append(
            f"  chaos      : {self.node_crashes} node crashes | "
            f"{self.scale_ups} scale-ups | {self.scale_downs} scale-downs"
        )
        if self.tenant_reports:
            lines.append(
                f"  admission  : {self.quota_sheds} quota sheds | "
                f"{self.overload_sheds} overload sheds | "
                f"{self.brownout_entries} brownout entries"
            )
        if (
            self.breaker_opens or self.breaker_probes
            or self.breaker_short_circuits
        ):
            lines.append(
                f"  breakers   : {self.breaker_opens} opened | "
                f"{self.breaker_probes} probes | {self.breaker_closes} closed | "
                f"{self.breaker_short_circuits} short-circuits"
            )
        if self.upgrades_started:
            lines.append(
                f"  upgrades   : {self.upgrades_started} started | "
                f"{self.upgrades_completed} completed"
            )
        if self.finished > 0:
            lines.append(
                f"  latency    : mean TTFT {self.mean_ttft:.4f} s | "
                f"p99 TTFT {self.p99_ttft:.4f} s | "
                f"mean TPOT {self.mean_tpot * 1e3:.3f} ms | "
                f"p99 TPOT {self.p99_tpot * 1e3:.3f} ms"
            )
        else:
            lines.append("  latency    : no finished requests")
        lines.append(
            f"  throughput : {self.throughput_tokens_per_s:.2f} tokens/s over "
            f"{self.total_time:.4f} s ({self.total_output_tokens} tokens)"
        )
        if self.shed_reasons_gateway:
            lines.append("  shed (gw)  : " + "; ".join(
                f"{count}x {reason}" for reason, count in self.shed_reasons_gateway
            ))
        if self.shed_reasons_engine:
            lines.append("  shed (eng) : " + "; ".join(
                f"{count}x {reason}" for reason, count in self.shed_reasons_engine
            ))
        for tenant in self.tenant_reports:
            slo = (
                f"SLO {tenant.ttft_slo:g}s ({tenant.slo_violations} violations)"
                if tenant.ttft_slo > 0 else "no SLO"
            )
            latency = (
                f"mean TTFT {tenant.mean_ttft:.4f} s | "
                f"p99 TTFT {tenant.p99_ttft:.4f} s"
                if tenant.finished > 0 else "no finished requests"
            )
            lines.append(
                f"  tenant     : {tenant.name} (tier {tenant.tier}) | "
                f"{tenant.admitted} admitted | {tenant.finished} finished | "
                f"{tenant.shed} shed ({tenant.quota_shed} quota, "
                f"{tenant.overload_shed} overload) | {latency} | {slo}"
            )
        for node in self.node_reports:
            lines.append(
                f"  node       : {node.name} [{node.device}] {node.final_state} | "
                f"{node.attempts} attempts | {node.finished} finished | "
                f"{node.shed_engine}+{node.shed_gateway} shed | "
                f"{node.failed} failed | {node.crashes} crashes | "
                f"{node.engine_steps} steps"
            )
        for entry in self.fault_log:
            lines.append(f"  event      : {entry}")
        for entry in self.autoscale_log:
            lines.append(f"  autoscale  : {entry}")
        for entry in self.admission_mode_log:
            lines.append(f"  admission  : {entry}")
        for entry in self.upgrade_log:
            lines.append(f"  upgrade    : {entry}")
        if self.watchdog_reason:
            lines.append(f"  watchdog   : PARTIAL RESULT ({self.watchdog_reason})")
        return "\n".join(lines)
