"""Node-level fault vocabulary for fleet simulations.

Device-level chaos (:mod:`repro.faults`) mutates one box; a fleet run
instead schedules *node*-level events against named nodes: hard
crashes (with optional recovery), slow-node brownouts, fabric-link
degradation inside the node's box (re-priced through the node's own
:class:`~repro.comm.FabricHealth` on the Figure 10 port model), and
transient unavailability blips that make a node unroutable without
losing its in-flight work.

A :class:`NodeFaultPlan` is built programmatically (builder methods
chain) or parsed from the compact ``repro fleet --chaos`` spec, a
semicolon-separated list of events::

    crash:gaudi2-1@t=2,recover=6
    brownout:a100-0@t=1,factor=0.5,until=4
    fabric:gaudi2-0@t=3,factor=0.25,until=5
    blip:gaudi2-2@t=2.5,duration=1
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audit import ConfigError
from repro.faults.plan import _parse_spec

__all__ = ["NodeFaultEvent", "NodeFaultKind", "NodeFaultPlan"]


class NodeFaultKind(enum.Enum):
    #: Hard node loss: every in-flight request on the node fails over.
    NODE_CRASH = "node_crash"
    #: A crashed node comes back (through RECOVERING, then HEALTHY).
    NODE_RECOVER = "node_recover"
    #: Slow node: every engine step runs at ``1 / factor`` speed.
    BROWNOUT = "brownout"
    BROWNOUT_CLEAR = "brownout_clear"
    #: One intra-node fabric link drops to ``factor`` bandwidth.
    FABRIC_DEGRADE = "fabric_degrade"
    FABRIC_RESTORE = "fabric_restore"
    #: Transient unavailability: unroutable, but in-flight work survives.
    BLIP = "blip"
    BLIP_CLEAR = "blip_clear"


@dataclass(frozen=True)
class NodeFaultEvent:
    """One scheduled node-level event."""

    time: float
    kind: NodeFaultKind
    node: str
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"event time must be >= 0, got {self.time!r}")
        if not self.node:
            raise ConfigError("event must name a node")

    def describe(self) -> str:
        parts = [f"t={self.time:g}", self.kind.value, self.node]
        if self.factor is not None:
            parts.append(f"factor={self.factor:g}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind.value,
            "node": self.node,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeFaultEvent":
        return cls(
            time=float(data["time"]),
            kind=NodeFaultKind(data["kind"]),
            node=str(data["node"]),
            factor=None if data.get("factor") is None else float(data["factor"]),
        )


@dataclass
class NodeFaultPlan:
    """An ordered schedule of node-level fault events."""

    events: List[NodeFaultEvent] = field(default_factory=list)

    # -- builders ------------------------------------------------------
    def add(self, event: NodeFaultEvent) -> "NodeFaultPlan":
        self.events.append(event)
        return self

    def crash(
        self, node: str, at: float, recover_at: Optional[float] = None
    ) -> "NodeFaultPlan":
        """Hard-crash ``node`` at ``at``; optionally recover later."""
        self.add(NodeFaultEvent(at, NodeFaultKind.NODE_CRASH, node))
        if recover_at is not None:
            if recover_at <= at:
                raise ConfigError(
                    f"recovery (recover_at={recover_at!r}) must come after "
                    f"the crash (at={at!r})"
                )
            self.add(NodeFaultEvent(recover_at, NodeFaultKind.NODE_RECOVER, node))
        return self

    def brownout(
        self, node: str, factor: float, at: float, until: Optional[float] = None
    ) -> "NodeFaultPlan":
        """Slow ``node`` to ``factor`` of its speed from ``at``."""
        if not 0.0 < factor <= 1.0:
            raise ConfigError(f"brownout factor must be in (0, 1], got {factor!r}")
        self.add(NodeFaultEvent(at, NodeFaultKind.BROWNOUT, node, factor=factor))
        if until is not None:
            if until <= at:
                raise ConfigError(
                    f"clear (until={until!r}) must come after the brownout (at={at!r})"
                )
            self.add(NodeFaultEvent(until, NodeFaultKind.BROWNOUT_CLEAR, node))
        return self

    def degrade_fabric(
        self, node: str, factor: float, at: float, until: Optional[float] = None
    ) -> "NodeFaultPlan":
        """Degrade one intra-node fabric link to ``factor`` bandwidth."""
        if not 0.0 <= factor < 1.0:
            raise ConfigError(f"fabric factor must be in [0, 1), got {factor!r}")
        self.add(NodeFaultEvent(at, NodeFaultKind.FABRIC_DEGRADE, node, factor=factor))
        if until is not None:
            if until <= at:
                raise ConfigError(
                    f"restore (until={until!r}) must come after the "
                    f"degradation (at={at!r})"
                )
            self.add(NodeFaultEvent(until, NodeFaultKind.FABRIC_RESTORE, node))
        return self

    def blip(self, node: str, at: float, duration: float) -> "NodeFaultPlan":
        """Make ``node`` unroutable for ``duration`` seconds."""
        if duration <= 0:
            raise ConfigError(f"blip duration must be positive, got {duration!r}")
        self.add(NodeFaultEvent(at, NodeFaultKind.BLIP, node))
        self.add(NodeFaultEvent(at + duration, NodeFaultKind.BLIP_CLEAR, node))
        return self

    # -- queries -------------------------------------------------------
    def scheduled(self) -> List[NodeFaultEvent]:
        """Events in replay order (stable sort by fire time)."""
        return sorted(self.events, key=lambda e: e.time)

    @property
    def empty(self) -> bool:
        return not self.events

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeFaultPlan":
        return cls(events=[NodeFaultEvent.from_dict(e) for e in data.get("events", [])])

    # -- CLI spec parsing ----------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "NodeFaultPlan":
        """Parse a ``--chaos`` string: ``;``-separated event specs of
        the form ``kind:node@t=T[,key=value...]`` (see module doc)."""
        plan = cls()
        for item in spec.split(";"):
            item = item.strip()
            if not item:
                continue
            kind, sep, rest = item.partition(":")
            if not sep:
                raise ConfigError(
                    f"bad fleet fault spec {item!r}: expected kind:node@t=T[,...]"
                )
            kind = kind.strip()
            try:
                plan._parse_one(kind, rest)
            except ValueError as error:
                raise ConfigError(str(error)) from None
        return plan

    def _parse_one(self, kind: str, rest: str) -> None:
        if kind == "crash":
            head, kv = _parse_spec(rest, required=("t",), optional=("recover",))
            self.crash(head, kv["t"], recover_at=kv.get("recover"))
        elif kind == "brownout":
            head, kv = _parse_spec(rest, required=("t", "factor"), optional=("until",))
            self.brownout(head, kv["factor"], kv["t"], until=kv.get("until"))
        elif kind == "fabric":
            head, kv = _parse_spec(rest, required=("t", "factor"), optional=("until",))
            self.degrade_fabric(head, kv["factor"], kv["t"], until=kv.get("until"))
        elif kind == "blip":
            head, kv = _parse_spec(rest, required=("t", "duration"))
            self.blip(head, kv["t"], kv["duration"])
        else:
            raise ConfigError(
                f"unknown fleet fault kind {kind!r} "
                "(expected crash, brownout, fabric, or blip)"
            )
