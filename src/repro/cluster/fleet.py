"""The fleet event loop: nodes, gateway, chaos, and autoscaling on one
shared virtual clock.

Clock/ownership model (see DESIGN.md for the full discussion):

* The *fleet clock* advances through a deterministic event heap keyed
  ``(time, seq)`` -- arrivals, fault events, health probes, timeouts,
  retry re-dispatches, hedges, autoscale ticks.  It is monotone and
  audited (:meth:`~repro.audit.RunAudit.observe_clock`).
* Each :class:`~repro.cluster.node.Node` owns its engine's clock.
  Before an event is handled, every node is advanced *to* the event
  time; a batch-synchronous engine step that starts at or before the
  horizon runs to completion, so node clocks may overrun the fleet
  clock by up to one step.  Completions inside the overrun are
  *observed* at the next advance -- exactly the smearing a real
  gateway sees polling engines between scheduler ticks.
* The gateway owns logical :class:`~repro.cluster.gateway.FleetRequest`
  state; nodes own per-attempt engine requests.  An attempt never
  outlives its node; a fleet request never belongs to a node.

Determinism: the heap ordering, routing policies, backoff jitter
(seeded, stateless), and synthetic workload are all derived from the
config's seed, so the same ``FleetConfig`` always produces a
byte-identical :class:`~repro.cluster.report.FleetResilienceReport`,
chaos included.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.audit import (
    ConfigError,
    FleetConservationError,
    FleetDrainError,
    FleetRoutingError,
    JournalError,
    WatchdogExceeded,
    get_auditor,
)
from repro.cluster.admission import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    TenantSpec,
    UpgradePlan,
    bump_counter,
)
from repro.cluster.autoscaler import AutoscalePolicy, Autoscaler
from repro.cluster.faults import NodeFaultEvent, NodeFaultKind, NodeFaultPlan
from repro.cluster.gateway import ROUTING_POLICIES, FleetRequest, Gateway
from repro.cluster.node import Node, NodeClass
from repro.cluster.report import FleetResilienceReport, NodeReport, TenantReport
from repro.core.journal import RunJournal
from repro.core.metrics import percentile
from repro.faults.report import GATEWAY_SHED_PREFIX
from repro.hw.backend import GAUDI2, resolve_backend
from repro.serving.engine import ResiliencePolicy
from repro.serving.dataset import dynamic_sonnet_requests
from repro.serving.loadgen import diurnal_arrivals, poisson_arrivals
from repro.serving.request import Request, RequestState, RetryPolicy

__all__ = ["FleetConfig", "resume_fleet", "run_fleet"]


@dataclass
class FleetConfig:
    """One fleet experiment (all knobs surfaced by ``repro fleet``)."""

    #: Heterogeneous pools: ((class name, count), ...); class names are
    #: device names ("gaudi2", "a100") and double as pool names.
    nodes: Tuple[Tuple[str, int], ...] = ((GAUDI2, 2),)
    model: str = "8b"
    tp: int = 8
    max_decode_batch: int = 32
    num_kv_blocks: Optional[int] = None
    num_requests: int = 64
    rate: float = 8.0
    diurnal: bool = False
    diurnal_period: float = 60.0
    seed: int = 0
    policy: str = "round-robin"
    #: Per-attempt gateway timeout in seconds (None = no timeout).
    timeout: Optional[float] = None
    #: Gateway retry/backoff budget (jittered, deterministic).
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(jitter=0.5))
    #: Hedge a second attempt when the first is quiet this long.
    hedge_after: Optional[float] = None
    probe_interval: float = 1.0
    #: RECOVERING -> HEALTHY delay after a crash recovery.
    recovery_warmup: float = 0.5
    #: Engine-level TTFT SLO inside each node (None = gateway-only).
    deadline: Optional[float] = None
    checkpoint_interval: int = 32
    admission_watermark: float = 1.0
    autoscale: Optional[AutoscalePolicy] = None
    #: Multi-tenant traffic classes; empty = the untenanted workload.
    tenants: Tuple[TenantSpec, ...] = ()
    #: Gateway admission control (quotas + fair queueing + overload
    #: response); requires ``tenants``.
    admission: Optional[AdmissionPolicy] = None
    #: Per-node circuit breakers (None = disabled).
    breaker: Optional[BreakerPolicy] = None
    #: Rolling-upgrade drain schedule (None = no upgrade).
    upgrade: Optional[UpgradePlan] = None
    plan: NodeFaultPlan = field(default_factory=NodeFaultPlan)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigError("fleet needs at least one node pool")
        for name, count in self.nodes:
            resolve_backend(name)  # typed error naming registered backends
            if count < 1:
                raise ConfigError(f"pool {name!r} needs count >= 1, got {count}")
        if self.num_requests < 1:
            raise ConfigError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate!r}")
        if self.diurnal_period <= 0:
            raise ConfigError(
                f"diurnal_period must be positive, got {self.diurnal_period!r}"
            )
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r} (expected one of "
                f"{', '.join(ROUTING_POLICIES)})"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout!r}")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigError(
                f"hedge_after must be positive, got {self.hedge_after!r}"
            )
        if self.probe_interval <= 0:
            raise ConfigError(
                f"probe_interval must be positive, got {self.probe_interval!r}"
            )
        if self.recovery_warmup < 0:
            raise ConfigError(
                f"recovery_warmup must be >= 0, got {self.recovery_warmup!r}"
            )
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {sorted(names)}")
        if self.admission is not None and not self.tenants:
            raise ConfigError("admission control requires at least one tenant")

    @property
    def nodes_spec(self) -> str:
        """Display form, e.g. ``"4x gaudi2,2x a100"``."""
        return ",".join(f"{count}x {name}" for name, count in self.nodes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "nodes": [[name, count] for name, count in self.nodes],
            "model": self.model,
            "tp": self.tp,
            "max_decode_batch": self.max_decode_batch,
            "num_kv_blocks": self.num_kv_blocks,
            "num_requests": self.num_requests,
            "rate": self.rate,
            "diurnal": self.diurnal,
            "diurnal_period": self.diurnal_period,
            "seed": self.seed,
            "policy": self.policy,
            "timeout": self.timeout,
            "retry": {
                "max_retries": self.retry.max_retries,
                "backoff_base": self.retry.backoff_base,
                "backoff_multiplier": self.retry.backoff_multiplier,
                "jitter": self.retry.jitter,
                "max_backoff": self.retry.max_backoff,
                "seed": self.retry.seed,
            },
            "hedge_after": self.hedge_after,
            "probe_interval": self.probe_interval,
            "recovery_warmup": self.recovery_warmup,
            "deadline": self.deadline,
            "checkpoint_interval": self.checkpoint_interval,
            "admission_watermark": self.admission_watermark,
            "autoscale": None if self.autoscale is None else self.autoscale.to_dict(),
            "tenants": [spec.to_dict() for spec in self.tenants],
            "admission": (
                None if self.admission is None else self.admission.to_dict()
            ),
            "breaker": None if self.breaker is None else self.breaker.to_dict(),
            "upgrade": None if self.upgrade is None else self.upgrade.to_dict(),
            "plan": self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetConfig":
        retry = data.get("retry", {})
        return cls(
            nodes=tuple((str(name), int(count)) for name, count in data["nodes"]),
            model=str(data.get("model", "8b")),
            tp=int(data.get("tp", 8)),
            max_decode_batch=int(data.get("max_decode_batch", 32)),
            num_kv_blocks=(
                None if data.get("num_kv_blocks") is None
                else int(data["num_kv_blocks"])
            ),
            num_requests=int(data["num_requests"]),
            rate=float(data["rate"]),
            diurnal=bool(data.get("diurnal", False)),
            diurnal_period=float(data.get("diurnal_period", 60.0)),
            seed=int(data.get("seed", 0)),
            policy=str(data.get("policy", "round-robin")),
            timeout=None if data.get("timeout") is None else float(data["timeout"]),
            retry=RetryPolicy(
                max_retries=int(retry.get("max_retries", 3)),
                backoff_base=float(retry.get("backoff_base", 0.25)),
                backoff_multiplier=float(retry.get("backoff_multiplier", 2.0)),
                jitter=float(retry.get("jitter", 0.5)),
                max_backoff=(
                    None if retry.get("max_backoff") is None
                    else float(retry["max_backoff"])
                ),
                seed=int(retry.get("seed", 0)),
            ),
            hedge_after=(
                None if data.get("hedge_after") is None
                else float(data["hedge_after"])
            ),
            probe_interval=float(data.get("probe_interval", 1.0)),
            recovery_warmup=float(data.get("recovery_warmup", 0.5)),
            deadline=None if data.get("deadline") is None else float(data["deadline"]),
            checkpoint_interval=int(data.get("checkpoint_interval", 32)),
            admission_watermark=float(data.get("admission_watermark", 1.0)),
            autoscale=(
                None if data.get("autoscale") is None
                else AutoscalePolicy.from_dict(data["autoscale"])
            ),
            tenants=tuple(
                TenantSpec.from_dict(item) for item in data.get("tenants", [])
            ),
            admission=(
                None if data.get("admission") is None
                else AdmissionPolicy.from_dict(data["admission"])
            ),
            breaker=(
                None if data.get("breaker") is None
                else BreakerPolicy.from_dict(data["breaker"])
            ),
            upgrade=(
                None if data.get("upgrade") is None
                else UpgradePlan.from_dict(data["upgrade"])
            ),
            plan=NodeFaultPlan.from_dict(data.get("plan", {})),
        )


class _FleetRun:
    """Mutable state of one fleet simulation (one-shot)."""

    def __init__(self, config: FleetConfig, ctx=None) -> None:
        self.config = config
        self.ctx = ctx
        self.tracer = ctx.tracer if ctx is not None else None
        self.metrics = ctx.metrics if ctx is not None else None
        self.auditor = get_auditor()
        self.audit = (
            self.auditor.begin_run("fleet.run") if self.auditor is not None else None
        )
        self.gateway = Gateway(config.policy)
        self.autoscaler = (
            Autoscaler(config.autoscale) if config.autoscale is not None else None
        )
        self.now = 0.0
        self.heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0
        self.requests: List[FleetRequest] = []
        #: attempt id -> (fleet id, node name at dispatch)
        self.attempt_map: Dict[int, Tuple[int, str]] = {}
        self.terminal_count = 0
        self.fault_log: List[str] = []
        self.node_crashes = 0
        self.admission = (
            AdmissionController(config.tenants, config.admission)
            if config.admission is not None else None
        )
        #: node name -> breaker (empty dict when breakers are off).
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.breaker_short_circuits = 0
        self.upgrades_started = 0
        self.upgrades_completed = 0
        self.upgrade_log: List[str] = []
        self._class_counts: Dict[str, int] = {}
        self._node_classes: Dict[str, NodeClass] = {}
        #: Pool -> (ttft, tpot) samples finished since the last
        #: autoscale evaluation.
        self._slo_window: Dict[str, List[Tuple[float, float]]] = {}
        self._engine_policy = ResiliencePolicy(
            deadline=config.deadline,
            retry=replace(config.retry, jitter=0.0),
            checkpoint_interval=config.checkpoint_interval,
            admission_watermark=config.admission_watermark,
        )
        for name, count in config.nodes:
            node_class = NodeClass(
                name=name,
                device=name,
                model=config.model,
                tp=config.tp,
                max_decode_batch=config.max_decode_batch,
                num_kv_blocks=config.num_kv_blocks,
            )
            self._node_classes[name] = node_class
            self._slo_window[name] = []
            for _ in range(count):
                self._spawn_node(name)
        #: Rolling-upgrade order: the initial fleet, registration order.
        self._upgrade_order: List[str] = list(self.gateway.nodes)
        known = set(self.gateway.nodes)
        for event in config.plan.events:
            if event.node not in known:
                raise ConfigError(
                    f"fault plan targets unknown node {event.node!r} "
                    f"(fleet has {', '.join(sorted(known))})"
                )

    # -- plumbing ------------------------------------------------------
    def push(self, time: float, kind: str, payload: object = None) -> None:
        heapq.heappush(self.heap, (time, self._seq, kind, payload))
        self._seq += 1

    def check(self, condition: bool, error_cls, message: str) -> None:
        if self.auditor is not None:
            self.auditor.check(condition, error_cls, message)

    def _spawn_node(self, class_name: str) -> Node:
        index = self._class_counts.get(class_name, 0)
        self._class_counts[class_name] = index + 1
        node = Node(
            f"{class_name}-{index}",
            self._node_classes[class_name],
            policy=self._engine_policy,
        )
        if self.ctx is not None:
            # Share the fleet RunContext so node engines emit their
            # engine/scheduler/kv/collective/power spans into the same
            # trace; attempt ids are fleet-unique, so async spans pair.
            node.engine.bind_context(self.ctx)
        node.begin()
        self.gateway.register(node)
        if self.config.breaker is not None:
            self.breakers[node.name] = CircuitBreaker(self.config.breaker)
        if self.metrics is not None:
            self.metrics.gauge("fleet.nodes").set(len(self.gateway.nodes))
        return node

    # -- workload ------------------------------------------------------
    def seed_workload(self) -> None:
        config = self.config
        shapes = dynamic_sonnet_requests(config.num_requests, seed=config.seed)
        if config.diurnal:
            diurnal_arrivals(
                shapes, config.rate, period=config.diurnal_period, seed=config.seed
            )
        else:
            poisson_arrivals(shapes, config.rate, seed=config.seed)
        assigned: List[Optional[TenantSpec]] = [None] * len(shapes)
        if config.tenants:
            # Attribute the SAME arrival stream to tenants by weighted
            # share: the arrival process is identical to an untenanted
            # run with this seed, only the labels differ.  String seeds
            # hash through SHA-512 inside random.Random, so the
            # assignment is platform-stable.
            by_name = {spec.name: spec for spec in config.tenants}
            rng = random.Random(f"fleet-tenants/{config.seed}")
            assigned = [
                by_name[name] for name in rng.choices(
                    [spec.name for spec in config.tenants],
                    weights=[spec.share for spec in config.tenants],
                    k=len(shapes),
                )
            ]
        for shape, spec in zip(shapes, assigned):
            fleet_request = FleetRequest(
                fleet_id=shape.request_id,
                input_tokens=shape.input_tokens,
                output_tokens=shape.output_tokens,
                arrival_time=shape.arrival_time,
            )
            if spec is not None:
                fleet_request.tenant = spec.name
                fleet_request.tier = spec.tier
                fleet_request.ttft_slo = spec.ttft_slo
            self.requests.append(fleet_request)
            self.push(shape.arrival_time, "arrival", fleet_request.fleet_id)
        for event in config.plan.scheduled():
            self.push(event.time, "fault", event)
        self.push(config.probe_interval, "probe")
        if self.autoscaler is not None:
            self.push(config.autoscale.evaluate_interval, "autoscale")
        if self.admission is not None:
            self.push(config.admission.evaluate_interval, "admission")
        if config.upgrade is not None:
            self.push(config.upgrade.start, "upgrade", 0)

    # -- node advancement / reconciliation -----------------------------
    def advance_nodes(self, horizon: float) -> None:
        for node in self.gateway.nodes.values():
            node.advance_to(horizon)

    def reconcile(self) -> None:
        """Fold newly terminal attempts into the fleet ledger."""
        for node in list(self.gateway.nodes.values()):
            for attempt in node.reap():
                self._observe_attempt(node, attempt)
        if self.admission is not None:
            self.pump()
        if self.tracer is not None:
            inflight = self.admitted_so_far - self.terminal_count
            self.tracer.counter("fleet.inflight", self.now, inflight)

    @property
    def admitted_so_far(self) -> int:
        return sum(1 for r in self.requests if r.arrival_time <= self.now)

    def _observe_attempt(self, node: Node, attempt: Request) -> None:
        fleet_id, _ = self.attempt_map[attempt.request_id]
        fleet_request = self.requests[fleet_id]
        if self.tracer is not None:
            end = attempt.finish_time if attempt.finish_time is not None else self.now
            self.tracer.record(
                "attempt", node.name, attempt.arrival_time, max(end, attempt.arrival_time),
                fleet_id=fleet_id, attempt_id=attempt.request_id,
                outcome=attempt.state.value,
            )
        if attempt.state is RequestState.FINISHED:
            if fleet_request.terminal:
                # A hedge sibling finished after the winner: wasted
                # speculation, not a double-serve -- the client saw one
                # completion.  Anything else finishing twice is a bug.
                self.check(
                    fleet_request.hedged,
                    FleetConservationError,
                    f"fleet request {fleet_id} completed twice without hedging",
                )
                self.gateway.stats.hedge_wasted += 1
                return
            self.finish_request(fleet_request, node, attempt)
        elif attempt.state is RequestState.FAILED:
            # Node crash killed the attempt: fail over immediately.
            breaker = self.breakers.get(node.name)
            if breaker is not None:
                breaker.record_failure(self.now)
            if fleet_request.terminal:
                return
            self.gateway.stats.failovers += 1
            self.dispatch(fleet_request, self.now)
        else:  # SHED
            reason = attempt.shed_reason or ""
            if reason.startswith(GATEWAY_SHED_PREFIX):
                return  # gateway cancellation; pipeline already moved on
            # Engine-decided shed (KV exhaustion, engine deadline):
            # retry elsewhere with backoff, or give up.
            if fleet_request.terminal:
                return
            self.retry_or_shed(
                fleet_request,
                self.now,
                f"{GATEWAY_SHED_PREFIX}retry-exhausted: engine shed "
                f"({reason.split(':', 1)[0]})",
            )

    # -- pipeline ------------------------------------------------------
    def _breaker_avoid(self, now: float) -> frozenset:
        """Nodes whose breakers currently refuse new dispatches."""
        if not self.breakers:
            return frozenset()
        return frozenset(
            name for name, breaker in self.breakers.items()
            if breaker.blocked(now)
        )

    @property
    def _brownout_active(self) -> bool:
        return self.admission is not None and self.admission.brownout_active

    def pump(self) -> None:
        """Dispatch fair-queued arrivals while gateway headroom exists.

        The admission queue drains in WFQ order; the pump stops once no
        breaker-closed routable node has in-flight headroom, so queued
        work waits at the gateway (where it can be overload-shed)
        instead of piling onto saturated engines.
        """
        controller = self.admission
        if controller is None:
            return
        limit = controller.policy.max_inflight_per_node
        if limit is None:
            limit = self.config.max_decode_batch
        while controller.queued:
            avoid = self._breaker_avoid(self.now)
            if not any(
                node.routable and node.name not in avoid and node.load < limit
                for node in self.gateway.nodes.values()
            ):
                break
            entry = controller.pop_dispatchable()
            if entry is None:
                break
            fleet_request = self.requests[entry.fleet_id]
            if fleet_request.terminal:
                continue
            self.dispatch(fleet_request, self.now)

    def dispatch(self, fleet_request: FleetRequest, now: float) -> None:
        """Route one attempt, or enter the retry/shed path."""
        if fleet_request.terminal:
            return
        avoid = self._breaker_avoid(now)
        node = self.gateway.pick(exclude=fleet_request.tried_nodes, avoid=avoid)
        if node is None:
            if avoid and any(
                self.gateway.nodes[name].routable for name in avoid
            ):
                # Breakers, not health, blocked the route.
                self.breaker_short_circuits += 1
                bump_counter("breaker_short_circuits")
            self.retry_or_shed(
                fleet_request, now,
                f"{GATEWAY_SHED_PREFIX}no-healthy-node: retry budget "
                "exhausted with no routable node",
            )
            return
        self.check(
            node.routable,
            FleetRoutingError,
            f"policy {self.gateway.policy!r} picked unroutable node "
            f"{node.name} ({node.state.value}) for request {fleet_request.fleet_id}",
        )
        breaker = self.breakers.get(node.name)
        if breaker is not None:
            breaker.on_dispatch(now)
        max_new_tokens = (
            self.admission.policy.brownout_max_new_tokens
            if self._brownout_active else None
        )
        attempt = self.gateway.dispatch(
            fleet_request, node, now, max_new_tokens=max_new_tokens
        )
        self.attempt_map[attempt.request_id] = (fleet_request.fleet_id, node.name)
        if self.metrics is not None:
            self.metrics.counter("fleet.dispatches").inc()
        if self.config.timeout is not None:
            self.push(
                now + self.config.timeout, "timeout",
                (fleet_request.fleet_id, attempt.request_id),
            )
        if (
            self.config.hedge_after is not None
            and not fleet_request.hedged
            and not self._brownout_active  # brownout disables speculation
        ):
            self.push(
                now + self.config.hedge_after, "hedge",
                (fleet_request.fleet_id, attempt.request_id),
            )

    def retry_or_shed(
        self, fleet_request: FleetRequest, now: float, shed_reason: str
    ) -> None:
        """Jittered-backoff retry while budget remains, else shed."""
        retry = self.config.retry
        if fleet_request.retries < retry.max_retries:
            delay = retry.backoff(fleet_request.retries, token=fleet_request.fleet_id)
            fleet_request.retries += 1
            self.gateway.stats.retries += 1
            if self.metrics is not None:
                self.metrics.counter("fleet.retries").inc()
            self.push(now + delay, "dispatch", fleet_request.fleet_id)
            return
        self._shed(fleet_request, shed_reason)

    def _shed(self, fleet_request: FleetRequest, reason: str) -> None:
        fleet_request.shed(reason)
        self.terminal_count += 1
        if self.tracer is not None:
            self.tracer.async_end(
                f"fleet-request-{fleet_request.fleet_id}", "fleet", self.now,
                fleet_request.fleet_id, state="shed", reason=reason,
            )
        if self.metrics is not None:
            self.metrics.counter("fleet.sheds").inc()

    # -- event handlers ------------------------------------------------
    def handle_arrival(self, fleet_id: int) -> None:
        fleet_request = self.requests[fleet_id]
        if self.tracer is not None:
            self.tracer.async_begin(
                f"fleet-request-{fleet_id}", "fleet", self.now, fleet_id,
                prompt_tokens=fleet_request.input_tokens,
            )
        if self.admission is None:
            self.dispatch(fleet_request, self.now)
            return
        reason = self.admission.offer(fleet_id, fleet_request.tenant, self.now)
        if reason is not None:
            self._shed(fleet_request, GATEWAY_SHED_PREFIX + reason)
            return
        self.pump()

    def handle_timeout(self, fleet_id: int, attempt_id: int) -> None:
        fleet_request = self.requests[fleet_id]
        if fleet_request.terminal:
            return
        attempt = next(
            (a for a in fleet_request.attempts if a.request_id == attempt_id), None
        )
        # The timeout covers queue time too, so WAITING attempts are
        # cancelled just like RUNNING ones; terminal ones already got
        # handled by other machinery.
        if attempt is None or attempt.state not in (
            RequestState.WAITING, RequestState.RUNNING
        ):
            return
        _, node_name = self.attempt_map[attempt_id]
        node = self.gateway.nodes[node_name]
        timeout = self.config.timeout
        if not node.cancel(
            attempt, f"{GATEWAY_SHED_PREFIX}timeout: no completion within {timeout:g}s"
        ):
            return  # completion outran the cancel inside the last step
        self.gateway.stats.timeouts += 1
        breaker = self.breakers.get(node_name)
        if breaker is not None:
            breaker.record_failure(self.now)
        if self.metrics is not None:
            self.metrics.counter("fleet.timeouts").inc()
        self.retry_or_shed(
            fleet_request, self.now,
            f"{GATEWAY_SHED_PREFIX}timeout: retry budget exhausted",
        )

    def handle_hedge(self, fleet_id: int, attempt_id: int) -> None:
        fleet_request = self.requests[fleet_id]
        if fleet_request.terminal or fleet_request.hedged:
            return
        attempt = next(
            (a for a in fleet_request.attempts if a.request_id == attempt_id), None
        )
        if attempt is None or attempt.state not in (
            RequestState.WAITING, RequestState.RUNNING
        ):
            return
        if attempt.first_token_time is not None:
            return  # already streaming; no point hedging
        if self._brownout_active:
            return  # brownout: no speculative load on a saturated fleet
        # require_untried: hedging onto an already-tried node buys
        # nothing, and an abandoned hedge must not advance the
        # round-robin cursor (that perturbed routing for later requests).
        node = self.gateway.pick(
            exclude=fleet_request.tried_nodes,
            avoid=self._breaker_avoid(self.now),
            require_untried=True,
        )
        if node is None:
            return
        fleet_request.hedged = True
        self.gateway.stats.hedges += 1
        if self.metrics is not None:
            self.metrics.counter("fleet.hedges").inc()
        breaker = self.breakers.get(node.name)
        if breaker is not None:
            breaker.on_dispatch(self.now)
        hedge_attempt = self.gateway.dispatch(fleet_request, node, self.now)
        self.attempt_map[hedge_attempt.request_id] = (fleet_id, node.name)
        if self.config.timeout is not None:
            self.push(
                self.now + self.config.timeout, "timeout",
                (fleet_id, hedge_attempt.request_id),
            )

    def handle_fault(self, event: NodeFaultEvent) -> None:
        node = self.gateway.nodes[event.node]
        self.fault_log.append(event.describe())
        if self.tracer is not None:
            self.tracer.instant(
                f"node.{event.kind.value}", "fleet", self.now, node=event.node
            )
        kind = event.kind
        if kind is NodeFaultKind.NODE_CRASH:
            self.node_crashes += 1
            victims = node.crash()
            if self.metrics is not None:
                self.metrics.counter("fleet.node_crashes").inc()
            for attempt in victims:
                self._observe_attempt(node, attempt)
        elif kind is NodeFaultKind.NODE_RECOVER:
            node.begin_recovery()
            self.push(self.now + self.config.recovery_warmup, "warm", event.node)
        elif kind is NodeFaultKind.BROWNOUT:
            node.set_brownout(event.factor)
        elif kind is NodeFaultKind.BROWNOUT_CLEAR:
            node.clear_brownout()
        elif kind is NodeFaultKind.FABRIC_DEGRADE:
            node.degrade_fabric(event.factor)
        elif kind is NodeFaultKind.FABRIC_RESTORE:
            node.restore_fabric()
        elif kind is NodeFaultKind.BLIP:
            node.set_blip(True)
        elif kind is NodeFaultKind.BLIP_CLEAR:
            node.set_blip(False)

    def handle_warm(self, node_name: str) -> None:
        self.gateway.nodes[node_name].warm()

    def handle_probe(self) -> None:
        states = self.gateway.probe()
        healthy = sum(1 for state in states.values() if state == "healthy")
        if self.tracer is not None:
            self.tracer.counter("fleet.healthy_nodes", self.now, healthy)
        if self.metrics is not None:
            self.metrics.gauge("fleet.healthy_nodes").set(healthy)
        if self.terminal_count < len(self.requests):
            self.push(self.now + self.config.probe_interval, "probe")

    def handle_autoscale(self) -> None:
        scaler = self.autoscaler
        for pool, node_class in self._node_classes.items():
            live = [
                node for node in self.gateway.nodes.values()
                if node.node_class.name == pool
                and not node.retired and not node.draining
            ]
            window = self._slo_window[pool]
            action = scaler.evaluate(
                pool, self.now, len(live),
                [ttft for ttft, _ in window], [tpot for _, tpot in window],
            )
            self._slo_window[pool] = []
            if action == "up":
                self.push(
                    self.now + scaler.policy.provision_delay, "provision", pool
                )
            elif action == "down":
                routable = [node for node in live if node.routable]
                if routable:
                    victim = max(routable, key=lambda node: node.name)
                    victim.drain()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "node.drain", "fleet", self.now, node=victim.name
                        )
        if self.terminal_count < len(self.requests):
            self.push(
                self.now + scaler.policy.evaluate_interval, "autoscale"
            )

    def handle_provision(self, pool: str) -> None:
        node = self._spawn_node(pool)
        if self.tracer is not None:
            self.tracer.instant("node.provision", "fleet", self.now, node=node.name)

    def handle_admission(self) -> None:
        """Deterministic CoDel tick: move the overload state machine
        and shed what it condemns."""
        controller = self.admission
        for entry, reason in controller.evaluate(self.now):
            fleet_request = self.requests[entry.fleet_id]
            if not fleet_request.terminal:
                self._shed(fleet_request, GATEWAY_SHED_PREFIX + reason)
        self.pump()
        if self.terminal_count < len(self.requests):
            self.push(
                self.now + controller.policy.evaluate_interval, "admission"
            )

    # -- rolling upgrades ----------------------------------------------
    def handle_upgrade(self, index: int) -> None:
        """Start draining the next upgradable node (one at a time)."""
        order = self._upgrade_order
        while index < len(order):
            node = self.gateway.nodes[order[index]]
            if node.dead or node.retired or node.draining:
                self.upgrade_log.append(
                    f"t={self.now:g} skip {node.name} ({node.state.value})"
                )
                index += 1
                continue
            break
        if index >= len(order):
            return  # every node upgraded (or skipped)
        node = self.gateway.nodes[order[index]]
        node.start_upgrade_drain()
        self.upgrades_started += 1
        bump_counter("upgrade_drains")
        self.upgrade_log.append(f"t={self.now:g} drain {node.name}")
        if self.tracer is not None:
            self.tracer.instant("node.upgrade_drain", "fleet", self.now, node=node.name)
        self.push(self.now + self.config.upgrade.poll_interval, "upgrade_poll", index)

    def handle_upgrade_poll(self, index: int) -> None:
        node = self.gateway.nodes[self._upgrade_order[index]]
        if node.dead:
            # Chaos beat the upgrade to it; the crash path already
            # failed its work over.  Move on to the next node.
            self.upgrade_log.append(f"t={self.now:g} abort {node.name} (crashed)")
            self.upgrades_completed += 1
            self.push(self.now, "upgrade", index + 1)
            return
        if not node.drained:
            self.push(
                self.now + self.config.upgrade.poll_interval, "upgrade_poll", index
            )
            return
        # Zero-loss gate: restarting with work in flight would lose it.
        self.check(
            not node.inflight and not node.engine.has_unfinished,
            FleetDrainError,
            f"node {node.name} entered its upgrade restart with "
            f"{len(node.inflight)} attempts in flight",
        )
        node.begin_upgrade_restart()
        self.upgrade_log.append(f"t={self.now:g} restart {node.name}")
        self.push(
            self.now + self.config.upgrade.restart_delay, "upgrade_rejoin", index
        )

    def handle_upgrade_rejoin(self, index: int) -> None:
        node = self.gateway.nodes[self._upgrade_order[index]]
        node.finish_upgrade()
        self.upgrades_completed += 1
        self.upgrade_log.append(f"t={self.now:g} rejoin {node.name}")
        if self.tracer is not None:
            self.tracer.instant("node.upgrade_done", "fleet", self.now, node=node.name)
        self.pump()
        self.push(self.now, "upgrade", index + 1)

    # -- completion ----------------------------------------------------
    def finish_request(
        self, fleet_request: FleetRequest, node: Node, attempt: Request
    ) -> None:
        fleet_request.finish(attempt)
        self.terminal_count += 1
        breaker = self.breakers.get(node.name)
        if breaker is not None:
            breaker.record_success()
        node.observe_latency(attempt.first_token_time - attempt.arrival_time)
        self._slo_window.setdefault(node.node_class.name, []).append(
            (fleet_request.ttft, fleet_request.tpot)
        )
        # A finished winner makes every other live attempt moot.
        for sibling in fleet_request.attempts:
            if sibling is attempt or sibling.state not in (
                RequestState.WAITING, RequestState.RUNNING
            ):
                continue
            _, sibling_node = self.attempt_map[sibling.request_id]
            if self.gateway.nodes[sibling_node].cancel(
                sibling, f"{GATEWAY_SHED_PREFIX}hedge-lost: sibling finished first"
            ):
                self.gateway.stats.hedge_wasted += 1
        if self.tracer is not None:
            self.tracer.async_end(
                f"fleet-request-{fleet_request.fleet_id}", "fleet", self.now,
                fleet_request.fleet_id, state="finished", node=node.name,
            )
        if self.metrics is not None:
            self.metrics.counter("fleet.finished").inc()
            self.metrics.histogram("fleet.ttft").observe(fleet_request.ttft)
            self.metrics.histogram("fleet.tpot").observe(fleet_request.tpot)

    # -- main loop -----------------------------------------------------
    def run(self) -> str:
        """Drive the event heap to quiescence; returns the watchdog
        reason ("" for a complete run)."""
        handlers = {
            "arrival": lambda p: self.handle_arrival(p),
            "dispatch": lambda p: self.dispatch(self.requests[p], self.now),
            "timeout": lambda p: self.handle_timeout(*p),
            "hedge": lambda p: self.handle_hedge(*p),
            "fault": lambda p: self.handle_fault(p),
            "warm": lambda p: self.handle_warm(p),
            "probe": lambda p: self.handle_probe(),
            "autoscale": lambda p: self.handle_autoscale(),
            "provision": lambda p: self.handle_provision(p),
            "admission": lambda p: self.handle_admission(),
            "upgrade": lambda p: self.handle_upgrade(p),
            "upgrade_poll": lambda p: self.handle_upgrade_poll(p),
            "upgrade_rejoin": lambda p: self.handle_upgrade_rejoin(p),
        }
        try:
            while True:
                if self.heap:
                    time, _, kind, payload = heapq.heappop(self.heap)
                    self.advance_nodes(time)
                    self.now = max(self.now, time)
                    if self.audit is not None:
                        self.audit.observe_clock(self.now)
                    self.reconcile()
                    handlers[kind](payload)
                else:
                    if not any(
                        node.engine.has_unfinished
                        for node in self.gateway.nodes.values()
                        if not node.dead
                    ):
                        break
                    self.advance_nodes(math.inf)
                    self.now = max(
                        [self.now]
                        + [node.engine.now for node in self.gateway.nodes.values()]
                    )
                    if self.audit is not None:
                        self.audit.observe_clock(self.now)
                    self.reconcile()
        except WatchdogExceeded as error:
            return str(error)
        return ""

    # -- report --------------------------------------------------------
    def build_report(self, watchdog_reason: str) -> FleetResilienceReport:
        config = self.config
        finished = [r for r in self.requests if r.state is RequestState.FINISHED]
        shed = [r for r in self.requests if r.state is RequestState.SHED]
        unfinished = len(self.requests) - len(finished) - len(shed)
        ttfts = sorted(r.ttft for r in finished)
        tpots = sorted(r.tpot for r in finished)
        node_reports: List[NodeReport] = []
        attempt_finished = attempt_shed_engine = attempt_shed_gateway = 0
        attempt_failed = 0
        engine_shed_reasons: Dict[str, int] = {}
        for node in self.gateway.nodes.values():
            serving = node.finish(watchdog_reason)
            attempts = node.engine.requests
            node_shed_gateway = node_shed_engine = 0
            for attempt in attempts:
                if attempt.state is RequestState.SHED:
                    reason = attempt.shed_reason or ""
                    if reason.startswith(GATEWAY_SHED_PREFIX):
                        node_shed_gateway += 1
                    else:
                        node_shed_engine += 1
                        category = reason.split(":", 1)[0]
                        engine_shed_reasons[category] = (
                            engine_shed_reasons.get(category, 0) + 1
                        )
            attempt_finished += serving.finished_requests
            attempt_shed_engine += node_shed_engine
            attempt_shed_gateway += node_shed_gateway
            attempt_failed += serving.failed_requests
            node_reports.append(NodeReport(
                name=node.name,
                node_class=node.node_class.name,
                device=serving.device,
                final_state=node.state.value,
                crashes=node.crashes,
                attempts=node.attempts_fed,
                finished=serving.finished_requests,
                shed_engine=node_shed_engine,
                shed_gateway=node_shed_gateway,
                failed=serving.failed_requests,
                engine_steps=serving.engine_steps,
                total_output_tokens=serving.total_output_tokens,
                mean_ttft=serving.mean_ttft,
                clock=node.engine.now,
            ))
        gateway_shed_reasons: Dict[str, int] = {}
        for request in shed:
            category = (request.shed_reason or "").split(":", 1)[0]
            gateway_shed_reasons[category] = gateway_shed_reasons.get(category, 0) + 1
        tenant_reports: List[TenantReport] = []
        for spec in config.tenants:
            mine = [r for r in self.requests if r.tenant == spec.name]
            tenant_finished = [r for r in mine if r.state is RequestState.FINISHED]
            tenant_shed = [r for r in mine if r.state is RequestState.SHED]
            quota_shed = sum(
                1 for r in tenant_shed
                if (r.shed_reason or "").startswith(f"{GATEWAY_SHED_PREFIX}quota")
            )
            overload_shed = sum(
                1 for r in tenant_shed
                if (r.shed_reason or "").startswith((
                    f"{GATEWAY_SHED_PREFIX}overload",
                    f"{GATEWAY_SHED_PREFIX}admission-timeout",
                ))
            )
            tenant_ttfts = sorted(r.ttft for r in tenant_finished)
            tenant_reports.append(TenantReport(
                name=spec.name,
                tier=spec.tier,
                admitted=len(mine),
                finished=len(tenant_finished),
                shed=len(tenant_shed),
                quota_shed=quota_shed,
                overload_shed=overload_shed,
                unfinished=len(mine) - len(tenant_finished) - len(tenant_shed),
                mean_ttft=(
                    sum(tenant_ttfts) / len(tenant_ttfts) if tenant_ttfts else 0.0
                ),
                p99_ttft=percentile(tenant_ttfts, 99) if tenant_ttfts else 0.0,
                ttft_slo=spec.ttft_slo if spec.ttft_slo is not None else 0.0,
                slo_violations=(
                    sum(1 for ttft in tenant_ttfts if ttft > spec.ttft_slo)
                    if spec.ttft_slo is not None else 0
                ),
            ))
        total_tokens = sum(r.winner.output_tokens for r in finished)
        total_time = self.now
        stats = self.gateway.stats
        report = FleetResilienceReport(
            nodes_spec=config.nodes_spec,
            policy=config.policy,
            seed=config.seed,
            admitted=len(self.requests),
            finished=len(finished),
            shed=len(shed),
            unfinished=unfinished,
            attempts=stats.dispatches,
            attempt_finished=attempt_finished,
            attempt_shed_engine=attempt_shed_engine,
            attempt_shed_gateway=attempt_shed_gateway,
            attempt_failed=attempt_failed,
            retries=stats.retries,
            failovers=stats.failovers,
            timeouts=stats.timeouts,
            hedges=stats.hedges,
            hedge_wasted=stats.hedge_wasted,
            probes=stats.probes,
            node_crashes=self.node_crashes,
            scale_ups=self.autoscaler.scale_ups if self.autoscaler else 0,
            scale_downs=self.autoscaler.scale_downs if self.autoscaler else 0,
            total_time=total_time,
            total_output_tokens=total_tokens,
            throughput_tokens_per_s=(
                total_tokens / total_time if total_time > 0 else 0.0
            ),
            mean_ttft=sum(ttfts) / len(ttfts) if ttfts else 0.0,
            p99_ttft=percentile(ttfts, 99) if ttfts else 0.0,
            mean_tpot=sum(tpots) / len(tpots) if tpots else 0.0,
            p99_tpot=percentile(tpots, 99) if tpots else 0.0,
            shed_reasons_gateway=tuple(sorted(gateway_shed_reasons.items())),
            shed_reasons_engine=tuple(sorted(engine_shed_reasons.items())),
            node_reports=tuple(node_reports),
            fault_log=tuple(self.fault_log),
            autoscale_log=tuple(self.autoscaler.log) if self.autoscaler else (),
            watchdog_reason=watchdog_reason,
            tenant_reports=tuple(tenant_reports),
            quota_sheds=self.admission.quota_denied if self.admission else 0,
            overload_sheds=self.admission.overload_sheds if self.admission else 0,
            brownout_entries=(
                self.admission.brownout_entries if self.admission else 0
            ),
            admission_mode_log=(
                tuple(self.admission.mode_log) if self.admission else ()
            ),
            breaker_opens=sum(b.opens for b in self.breakers.values()),
            breaker_probes=sum(b.probes for b in self.breakers.values()),
            breaker_closes=sum(b.closes for b in self.breakers.values()),
            breaker_short_circuits=self.breaker_short_circuits,
            upgrades_started=self.upgrades_started,
            upgrades_completed=self.upgrades_completed,
            upgrade_log=tuple(self.upgrade_log),
        )
        # Fleet invariants: every admitted request accounted for, no
        # request both finished and shed, attempts partitioned.
        self.check(
            len(finished) + len(shed) + unfinished == len(self.requests),
            FleetConservationError,
            f"fleet ledger does not partition: {len(finished)} finished + "
            f"{len(shed)} shed + {unfinished} unfinished != "
            f"{len(self.requests)} admitted",
        )
        if not watchdog_reason:
            self.check(
                unfinished == 0,
                FleetConservationError,
                f"{unfinished} fleet requests still in flight after a "
                "complete (non-watchdog) run",
            )
        self.check(
            all(r.winner is not None for r in finished),
            FleetConservationError,
            "a finished fleet request has no winning attempt",
        )
        live_attempts = stats.dispatches - attempt_finished - attempt_shed_engine \
            - attempt_shed_gateway - attempt_failed
        hedge_late = sum(
            1 for r in finished for a in r.attempts
            if a is not r.winner and a.state is RequestState.FINISHED
        )
        self.check(
            attempt_finished == len(finished) + hedge_late,
            FleetConservationError,
            f"attempt ledger double-serves: {attempt_finished} attempts "
            f"finished but only {len(finished)} fleet requests finished "
            f"(+{hedge_late} late hedge finishes)",
        )
        if not watchdog_reason:
            self.check(
                live_attempts == 0,
                FleetConservationError,
                f"{live_attempts} attempts unaccounted for at end of run",
            )
        if config.tenants:
            self.check(
                sum(t.admitted for t in tenant_reports) == len(self.requests),
                FleetConservationError,
                "tenant ledgers do not partition the fleet workload",
            )
            self.check(
                not any(
                    r.tier == 0 and (r.shed_reason or "").startswith(
                        f"{GATEWAY_SHED_PREFIX}overload"
                    )
                    for r in shed
                ),
                FleetConservationError,
                "overload shedding dropped tier-0 (premium) work",
            )
        if config.upgrade is not None and not watchdog_reason:
            self.check(
                self.upgrades_started == self.upgrades_completed,
                FleetDrainError,
                f"rolling upgrade incomplete: {self.upgrades_started} drains "
                f"started but only {self.upgrades_completed} completed",
            )
            self.check(
                unfinished == 0,
                FleetDrainError,
                f"rolling upgrade lost work: {unfinished} fleet requests "
                "neither finished nor shed after the drain schedule",
            )
        if self.tracer is not None:
            self.tracer.instant(
                "fleet.done", "fleet", self.now,
                finished=len(finished), shed=len(shed),
            )
        if self.audit is not None:
            self.audit.observe_clock(self.now)
        return report


def run_fleet(
    config: FleetConfig, journal=None, ctx=None
) -> FleetResilienceReport:
    """Run one multi-node fleet-resilience experiment end to end.

    With ``journal`` set (a :class:`~repro.core.journal.RunJournal` or
    a path), the run's config is pinned in the journal header, each
    node's report is appended node-tagged as the run closes, and the
    fleet report itself is the final point -- ``repro resume`` on the
    run directory then rebuilds the byte-identical report without
    recomputing (or re-runs deterministically if the run died before
    the final point landed).  With a :class:`~repro.api.RunContext`
    passed as ``ctx``, the run emits node-tagged spans, fleet counters,
    and per-request async events through its tracer/metrics.
    """
    if journal is not None:
        if not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        journal.write_header({"tool": "fleet", "config": config.to_dict()})
        done = journal.completed_keys().get("fleet")
        if done is not None:
            return FleetResilienceReport.from_payload(done)
    run = _FleetRun(config, ctx=ctx)
    run.seed_workload()
    watchdog_reason = run.run()
    report = run.build_report(watchdog_reason)
    if journal is not None:
        for node_report in report.node_reports:
            journal.append(f"node-{node_report.name}", node_report.to_payload())
        journal.append("fleet", report.to_payload())
    return report


def resume_fleet(run_dir) -> FleetResilienceReport:
    """Rebuild (or deterministically re-run) a journaled fleet run."""
    journal = RunJournal(run_dir)
    header = journal.load_header()
    if header is None:
        raise JournalError(f"no readable journal header under {journal.path}")
    if header.get("tool") != "fleet":
        raise JournalError(
            f"journal {journal.path} was written by tool "
            f"{header.get('tool')!r}, not a fleet run"
        )
    config = FleetConfig.from_dict(header["config"])
    return run_fleet(config, journal=journal)
