"""Gateway admission control and multi-tenant isolation.

Everything past the saturation point lives here: per-tenant traffic
classes (:class:`TenantSpec`, tier 0 = premium .. tier 2 =
best-effort), deterministic token-bucket quotas (:class:`TokenBucket`),
weighted-fair-queueing dequeue across tenants
(:class:`WeightedFairQueue`), a CoDel-style adaptive overload state
machine (:class:`AdmissionController`: NORMAL -> BROWNOUT ->
SHED, driven by sustained queue delay at deterministic evaluation
ticks), per-node circuit breakers (:class:`CircuitBreaker`:
CLOSED -> OPEN -> HALF_OPEN with deterministic reopen probes), and the
rolling-upgrade drain schedule (:class:`UpgradePlan`).

All state changes happen at fleet-event times on the shared virtual
clock -- no wall time, no unseeded randomness -- so fleet runs with
admission enabled stay byte-identical under journal resume.

Module-level counters mirror :mod:`repro.serving.engine_core`'s
``CORE_COUNTERS`` so ``repro top`` can surface tenant/admission/breaker
activity process-wide.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.audit import ConfigError

__all__ = [
    "ADMISSION_COUNTERS",
    "AdmissionController",
    "AdmissionMode",
    "AdmissionPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_TIER",
    "TenantSpec",
    "TokenBucket",
    "UpgradePlan",
    "WeightedFairQueue",
    "bump_counter",
    "parse_tenants_spec",
    "render_counters",
    "reset_counters",
    "snapshot_counters",
]

#: Tier assigned to requests that carry no tenant (standalone engine
#: runs, fleets without ``--tenants``).  Tier 0 outranks it; tier 2
#: yields to it.
DEFAULT_TIER = 1

#: Number of traffic classes (tier 0 .. NUM_TIERS - 1).
NUM_TIERS = 3


# -- process-wide counters (the ``repro top`` section) -----------------
ADMISSION_COUNTERS: Dict[str, int] = {
    "quota_denied": 0,
    "wfq_enqueues": 0,
    "wfq_dequeues": 0,
    "brownout_entries": 0,
    "overload_sheds": 0,
    "breaker_opens": 0,
    "breaker_probes": 0,
    "breaker_closes": 0,
    "breaker_short_circuits": 0,
    "upgrade_drains": 0,
}


def bump_counter(name: str, amount: int = 1) -> None:
    ADMISSION_COUNTERS[name] += amount


def snapshot_counters() -> Dict[str, int]:
    return dict(ADMISSION_COUNTERS)


def reset_counters() -> None:
    for key in ADMISSION_COUNTERS:
        ADMISSION_COUNTERS[key] = 0


def render_counters() -> str:
    """Fixed-format counter block for ``repro top``."""
    c = ADMISSION_COUNTERS
    return "\n".join([
        f"  quota      : {c['quota_denied']} denied by token buckets",
        f"  fair queue : {c['wfq_enqueues']} enqueued | "
        f"{c['wfq_dequeues']} dequeued",
        f"  overload   : {c['brownout_entries']} brownout entries | "
        f"{c['overload_sheds']} shed",
        f"  breakers   : {c['breaker_opens']} opened | "
        f"{c['breaker_probes']} probes | {c['breaker_closes']} closed | "
        f"{c['breaker_short_circuits']} short-circuits",
        f"  upgrades   : {c['upgrade_drains']} node drains",
    ])


# -- tenants -----------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic class, fairness weight, and quota."""

    name: str
    #: Traffic class: 0 = premium, 1 = standard, 2 = best-effort.
    tier: int = DEFAULT_TIER
    #: Fraction of the synthetic workload attributed to this tenant
    #: (normalized across the fleet's tenants).
    share: float = 1.0
    #: Weighted-fair-queueing weight (relative service rate).
    weight: float = 1.0
    #: Token-bucket refill in requests/second (None = unmetered).
    quota_rate: Optional[float] = None
    #: Token-bucket burst capacity in requests.
    quota_burst: float = 4.0
    #: Per-attempt TTFT SLO in seconds (None = no tenant deadline).
    ttft_slo: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a non-empty name")
        if not 0 <= self.tier < NUM_TIERS:
            raise ConfigError(
                f"tenant {self.name!r} tier must be in 0..{NUM_TIERS - 1}, "
                f"got {self.tier}"
            )
        if self.share <= 0:
            raise ConfigError(
                f"tenant {self.name!r} share must be positive, got {self.share!r}"
            )
        if self.weight <= 0:
            raise ConfigError(
                f"tenant {self.name!r} weight must be positive, got {self.weight!r}"
            )
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ConfigError(
                f"tenant {self.name!r} quota_rate must be positive, "
                f"got {self.quota_rate!r}"
            )
        if self.quota_burst < 1:
            raise ConfigError(
                f"tenant {self.name!r} quota_burst must be >= 1, "
                f"got {self.quota_burst!r}"
            )
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ConfigError(
                f"tenant {self.name!r} ttft_slo must be positive, "
                f"got {self.ttft_slo!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "tier": self.tier,
            "share": self.share,
            "weight": self.weight,
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
            "ttft_slo": self.ttft_slo,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantSpec":
        return cls(
            name=str(data["name"]),
            tier=int(data.get("tier", DEFAULT_TIER)),
            share=float(data.get("share", 1.0)),
            weight=float(data.get("weight", 1.0)),
            quota_rate=(
                None if data.get("quota_rate") is None
                else float(data["quota_rate"])
            ),
            quota_burst=float(data.get("quota_burst", 4.0)),
            ttft_slo=(
                None if data.get("ttft_slo") is None
                else float(data["ttft_slo"])
            ),
        )


def parse_tenants_spec(spec: str) -> Tuple[TenantSpec, ...]:
    """Parse the ``--tenants`` CLI spec.

    ``;``-separated tenants of the form
    ``name:key=value[,key=value...]``, e.g.::

        gold:tier=0,share=0.25,weight=4,slo=2
        bronze:tier=2,share=0.5,weight=1,rate=4,burst=8
    """
    tenants: List[TenantSpec] = []
    seen: set = set()
    for item in spec.split(";"):
        item = item.strip()
        if not item:
            continue
        name, sep, rest = item.partition(":")
        name = name.strip()
        if not sep or not name:
            raise ConfigError(
                f"bad tenant spec {item!r}: expected name:key=value[,...]"
            )
        kwargs: Dict[str, float] = {}
        for pair in filter(None, (p.strip() for p in rest.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise ConfigError(
                    f"bad tenant spec {item!r}: expected key=value, got {pair!r}"
                )
            try:
                kwargs[key.strip()] = float(value)
            except ValueError:
                raise ConfigError(
                    f"bad tenant spec {item!r}: {value!r} is not a number"
                ) from None
        known = {"tier", "share", "weight", "rate", "burst", "slo"}
        unknown = set(kwargs) - known
        if unknown:
            raise ConfigError(
                f"bad tenant spec {item!r}: unknown keys "
                f"{', '.join(sorted(unknown))} (expected {', '.join(sorted(known))})"
            )
        if name in seen:
            raise ConfigError(f"duplicate tenant name {name!r}")
        seen.add(name)
        tenants.append(TenantSpec(
            name=name,
            tier=int(kwargs.get("tier", DEFAULT_TIER)),
            share=kwargs.get("share", 1.0),
            weight=kwargs.get("weight", 1.0),
            quota_rate=kwargs.get("rate"),
            quota_burst=kwargs.get("burst", 4.0),
            ttft_slo=kwargs.get("slo"),
        ))
    if not tenants:
        raise ConfigError("tenants spec names no tenants")
    return tuple(tenants)


# -- token bucket ------------------------------------------------------
class TokenBucket:
    """Deterministic token bucket: refill-on-demand, one token/request.

    At any probe time ``now`` the bucket holds
    ``min(burst, tokens + (now - last) * rate)`` tokens, so over any
    window ``w`` it admits at most ``rate * w + burst`` requests --
    the property test pins exactly that bound.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigError(f"token-bucket rate must be positive, got {rate!r}")
        if burst < 1:
            raise ConfigError(f"token-bucket burst must be >= 1, got {burst!r}")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def admit(self, now: float) -> bool:
        """Spend one token if available; monotone ``now`` assumed."""
        elapsed = max(0.0, now - self._last)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last = max(self._last, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


# -- weighted fair queueing --------------------------------------------
class WeightedFairQueue:
    """Start-time-fair queueing across per-tenant FIFO queues.

    Each tenant carries a virtual finish tag advanced by ``1 / weight``
    per dequeued item; :meth:`pop` serves the smallest tag (ties break
    by registration order).  A tenant with queued work is therefore
    served at least once every ``sum(weights) / weight`` dequeues --
    weighted fairness with no starvation.
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._weights: Dict[str, float] = {}
        self._queues: Dict[str, Deque[object]] = {}
        self._finish: Dict[str, float] = {}
        self._vtime = 0.0

    def register(self, name: str, weight: float) -> None:
        if weight <= 0:
            raise ConfigError(f"WFQ weight must be positive, got {weight!r}")
        if name in self._weights:
            raise ConfigError(f"duplicate WFQ tenant {name!r}")
        self._order.append(name)
        self._weights[name] = weight
        self._queues[name] = deque()
        self._finish[name] = 0.0

    def push(self, name: str, item: object) -> None:
        queue = self._queues[name]
        if not queue:
            # A tenant re-entering service restarts from the current
            # virtual time, so idle periods are not banked as credit.
            self._finish[name] = (
                max(self._vtime, self._finish[name]) + 1.0 / self._weights[name]
            )
        queue.append(item)
        bump_counter("wfq_enqueues")

    def pop(self) -> Optional[Tuple[str, object]]:
        """Dequeue from the backlogged tenant with the smallest tag."""
        best: Optional[str] = None
        for name in self._order:
            if not self._queues[name]:
                continue
            if best is None or self._finish[name] < self._finish[best]:
                best = name
        if best is None:
            return None
        item = self._queues[best].popleft()
        self._vtime = self._finish[best]
        if self._queues[best]:
            self._finish[best] += 1.0 / self._weights[best]
        bump_counter("wfq_dequeues")
        return best, item

    def peek_items(self) -> List[Tuple[str, object]]:
        """Every queued (tenant, item), registration-then-FIFO order."""
        out: List[Tuple[str, object]] = []
        for name in self._order:
            out.extend((name, item) for item in self._queues[name])
        return out

    def remove(self, name: str, item: object) -> None:
        self._queues[name].remove(item)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())


# -- circuit breakers --------------------------------------------------
class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When a node's breaker opens and how it probes back closed."""

    #: Consecutive timeouts/failures that open the breaker.
    failure_threshold: int = 3
    #: Seconds the breaker stays OPEN before a half-open probe.
    cooldown: float = 2.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown <= 0:
            raise ConfigError(f"cooldown must be positive, got {self.cooldown!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BreakerPolicy":
        return cls(
            failure_threshold=int(data.get("failure_threshold", 3)),
            cooldown=float(data.get("cooldown", 2.0)),
        )


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN per-node failure isolation.

    ``failure_threshold`` consecutive timeouts/failures open the
    breaker; after ``cooldown`` the next dispatch becomes a single
    deterministic probe (HALF_OPEN).  The probe's outcome closes the
    breaker or reopens it for another cooldown.  This replaces the
    naive behavior of hammering a sick node with the full retry storm.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_inflight = False
        self.opens = 0
        self.closes = 0
        self.probes = 0

    def blocked(self, now: float) -> bool:
        """Should the gateway avoid this node right now?  Pure query."""
        if self.state is BreakerState.CLOSED:
            return False
        if self.state is BreakerState.OPEN:
            return now < self.opened_at + self.policy.cooldown
        return self.probe_inflight  # HALF_OPEN admits exactly one probe

    def on_dispatch(self, now: float) -> None:
        """An attempt was routed here; an eligible OPEN breaker turns
        this dispatch into its half-open probe."""
        if (
            self.state is BreakerState.OPEN
            and now >= self.opened_at + self.policy.cooldown
        ):
            self.state = BreakerState.HALF_OPEN
            self.probe_inflight = True
            self.probes += 1
            bump_counter("breaker_probes")
        elif self.state is BreakerState.HALF_OPEN:
            self.probe_inflight = True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.probe_inflight = False
            self.closes += 1
            bump_counter("breaker_closes")

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # Failed probe: reopen for another cooldown.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.probe_inflight = False
            self.opens += 1
            bump_counter("breaker_opens")
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opens += 1
            bump_counter("breaker_opens")


# -- adaptive admission ------------------------------------------------
class AdmissionMode(enum.Enum):
    NORMAL = "normal"
    #: Degraded service: cap new-token budgets, disable hedging.
    BROWNOUT = "brownout"
    #: Hard overload: shed queued lowest-tier work.
    SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-delay targets for the CoDel-style overload response."""

    #: Sustained queue delay above this enters BROWNOUT.
    target_queue_delay: float = 0.5
    #: Sustained queue delay above this enters SHED.
    shed_queue_delay: float = 2.0
    #: Evaluation-tick period on the fleet clock.
    evaluate_interval: float = 0.25
    #: BROWNOUT caps each dispatched attempt to this many new tokens.
    brownout_max_new_tokens: int = 64
    #: Gateway concurrency cap per routable node (None = the fleet's
    #: ``max_decode_batch``); dispatch waits in the fair queue past it.
    max_inflight_per_node: Optional[int] = None
    #: Hard bound on time queued at the gateway: any request waiting
    #: longer is shed regardless of tier (keeps dead fleets finite).
    max_queue_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.target_queue_delay <= 0:
            raise ConfigError(
                f"target_queue_delay must be positive, "
                f"got {self.target_queue_delay!r}"
            )
        if self.shed_queue_delay <= self.target_queue_delay:
            raise ConfigError(
                f"shed_queue_delay ({self.shed_queue_delay!r}) must exceed "
                f"target_queue_delay ({self.target_queue_delay!r})"
            )
        if self.evaluate_interval <= 0:
            raise ConfigError(
                f"evaluate_interval must be positive, "
                f"got {self.evaluate_interval!r}"
            )
        if self.brownout_max_new_tokens < 1:
            raise ConfigError(
                f"brownout_max_new_tokens must be >= 1, "
                f"got {self.brownout_max_new_tokens}"
            )
        if self.max_inflight_per_node is not None and self.max_inflight_per_node < 1:
            raise ConfigError(
                f"max_inflight_per_node must be >= 1, "
                f"got {self.max_inflight_per_node}"
            )
        if self.max_queue_delay <= self.shed_queue_delay:
            raise ConfigError(
                f"max_queue_delay ({self.max_queue_delay!r}) must exceed "
                f"shed_queue_delay ({self.shed_queue_delay!r})"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_queue_delay": self.target_queue_delay,
            "shed_queue_delay": self.shed_queue_delay,
            "evaluate_interval": self.evaluate_interval,
            "brownout_max_new_tokens": self.brownout_max_new_tokens,
            "max_inflight_per_node": self.max_inflight_per_node,
            "max_queue_delay": self.max_queue_delay,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdmissionPolicy":
        return cls(
            target_queue_delay=float(data.get("target_queue_delay", 0.5)),
            shed_queue_delay=float(data.get("shed_queue_delay", 2.0)),
            evaluate_interval=float(data.get("evaluate_interval", 0.25)),
            brownout_max_new_tokens=int(data.get("brownout_max_new_tokens", 64)),
            max_inflight_per_node=(
                None if data.get("max_inflight_per_node") is None
                else int(data["max_inflight_per_node"])
            ),
            max_queue_delay=float(data.get("max_queue_delay", 30.0)),
        )


@dataclass
class _QueueEntry:
    """One fleet request waiting at the gateway."""

    fleet_id: int
    tenant: str
    tier: int
    enqueued_at: float


class AdmissionController:
    """Per-tenant quotas + WFQ + CoDel-style overload state machine.

    The fleet pushes every arriving request through :meth:`offer`
    (token-bucket gate, then fair-queue), pumps the queue with
    :meth:`pop_dispatchable` whenever capacity frees, and calls
    :meth:`evaluate` at deterministic ticks to move between NORMAL,
    BROWNOUT, and SHED based on the oldest queued request's delay --
    the CoDel signal: *sojourn time*, not queue length.
    """

    def __init__(
        self, tenants: Tuple[TenantSpec, ...], policy: AdmissionPolicy
    ) -> None:
        if not tenants:
            raise ConfigError("admission control needs at least one tenant")
        self.policy = policy
        self.tenants: Dict[str, TenantSpec] = {}
        self.wfq = WeightedFairQueue()
        self.buckets: Dict[str, TokenBucket] = {}
        for spec in tenants:
            if spec.name in self.tenants:
                raise ConfigError(f"duplicate tenant name {spec.name!r}")
            self.tenants[spec.name] = spec
            self.wfq.register(spec.name, spec.weight)
            if spec.quota_rate is not None:
                self.buckets[spec.name] = TokenBucket(
                    spec.quota_rate, spec.quota_burst
                )
        self.mode = AdmissionMode.NORMAL
        self.quota_denied = 0
        self.brownout_entries = 0
        self.overload_sheds = 0
        self.queue_sheds_by_tier = [0] * NUM_TIERS
        self.mode_log: List[str] = []

    # -- intake --------------------------------------------------------
    def offer(self, fleet_id: int, tenant: str, now: float) -> Optional[str]:
        """Gate one arrival; returns a shed reason or None (queued)."""
        spec = self.tenants.get(tenant)
        if spec is None:
            raise ConfigError(f"arrival names unknown tenant {tenant!r}")
        bucket = self.buckets.get(tenant)
        if bucket is not None and not bucket.admit(now):
            self.quota_denied += 1
            bump_counter("quota_denied")
            return (
                f"quota: tenant {tenant} over "
                f"{bucket.rate:g} req/s (burst {bucket.burst:g})"
            )
        self.wfq.push(
            tenant, _QueueEntry(fleet_id, tenant, spec.tier, now)
        )
        return None

    # -- dequeue -------------------------------------------------------
    def pop_dispatchable(self) -> Optional[_QueueEntry]:
        popped = self.wfq.pop()
        if popped is None:
            return None
        _, entry = popped
        return entry

    @property
    def queued(self) -> int:
        return len(self.wfq)

    def oldest_delay(self, now: float) -> float:
        """Sojourn time of the oldest queued request (0 when empty)."""
        entries = self.wfq.peek_items()
        if not entries:
            return 0.0
        return max(now - entry.enqueued_at for _, entry in entries)

    # -- the CoDel-style state machine ---------------------------------
    def evaluate(self, now: float) -> List[Tuple[_QueueEntry, str]]:
        """One deterministic tick; returns (entry, reason) sheds.

        Mode transitions follow the oldest queued sojourn time:
        above ``shed_queue_delay`` -> SHED (drop queued work lowest
        tier first, never tier 0), above ``target_queue_delay`` ->
        BROWNOUT, else NORMAL.  Requests queued past
        ``max_queue_delay`` are shed regardless of tier.
        """
        delay = self.oldest_delay(now)
        previous = self.mode
        if delay > self.policy.shed_queue_delay:
            self.mode = AdmissionMode.SHED
        elif delay > self.policy.target_queue_delay:
            self.mode = AdmissionMode.BROWNOUT
        else:
            self.mode = AdmissionMode.NORMAL
        if self.mode is not previous:
            self.mode_log.append(
                f"t={now:g} {previous.value} -> {self.mode.value} "
                f"(queue delay {delay:.3f}s)"
            )
            if self.mode is AdmissionMode.BROWNOUT:
                self.brownout_entries += 1
                bump_counter("brownout_entries")
        sheds: List[Tuple[_QueueEntry, str]] = []
        for tenant, entry in self.wfq.peek_items():
            if now - entry.enqueued_at > self.policy.max_queue_delay:
                sheds.append((entry, (
                    f"admission-timeout: queued "
                    f"{now - entry.enqueued_at:.3f}s > "
                    f"{self.policy.max_queue_delay:g}s hard bound"
                )))
        if self.mode is AdmissionMode.SHED:
            # Shed lowest tier first; tier 0 is never overload-shed.
            already = {id(entry) for entry, _ in sheds}
            for tier in range(NUM_TIERS - 1, 0, -1):
                if self.oldest_surviving_delay(now, sheds) \
                        <= self.policy.shed_queue_delay:
                    break
                for tenant, entry in self.wfq.peek_items():
                    if entry.tier == tier and id(entry) not in already:
                        sheds.append((entry, (
                            f"overload: queue delay {delay:.3f}s > "
                            f"{self.policy.shed_queue_delay:g}s, "
                            f"tier {tier} shed first"
                        )))
                        already.add(id(entry))
        for entry, _ in sheds:
            self.wfq.remove(entry.tenant, entry)
            self.overload_sheds += 1
            self.queue_sheds_by_tier[entry.tier] += 1
            bump_counter("overload_sheds")
        return sheds

    def oldest_surviving_delay(
        self, now: float, sheds: List[Tuple[_QueueEntry, str]]
    ) -> float:
        doomed = {id(entry) for entry, _ in sheds}
        delays = [
            now - entry.enqueued_at
            for _, entry in self.wfq.peek_items()
            if id(entry) not in doomed
        ]
        return max(delays) if delays else 0.0

    # -- brownout effects ----------------------------------------------
    @property
    def brownout_active(self) -> bool:
        return self.mode is not AdmissionMode.NORMAL

    def cap_output_tokens(self, requested: int) -> int:
        """BROWNOUT/SHED cap on an attempt's new-token budget."""
        if self.brownout_active:
            return min(requested, self.policy.brownout_max_new_tokens)
        return requested


# -- rolling upgrades --------------------------------------------------
@dataclass(frozen=True)
class UpgradePlan:
    """A sequential zero-loss rolling upgrade across the fleet.

    Starting at ``start``, nodes are upgraded one at a time in
    registration order: mark DRAINING (no new routes), poll every
    ``poll_interval`` until in-flight work finishes, hold the node
    down (UPGRADING) for ``restart_delay``, rejoin, move on.  The
    :class:`~repro.audit.FleetDrainError` audit pass asserts no
    in-flight request was lost across any drain.
    """

    start: float = 0.0
    #: Node-offline time between drain completion and rejoin.
    restart_delay: float = 0.5
    #: Drain-completion polling period on the fleet clock.
    poll_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"upgrade start must be >= 0, got {self.start!r}")
        if self.restart_delay < 0:
            raise ConfigError(
                f"restart_delay must be >= 0, got {self.restart_delay!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigError(
                f"poll_interval must be positive, got {self.poll_interval!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "restart_delay": self.restart_delay,
            "poll_interval": self.poll_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "UpgradePlan":
        return cls(
            start=float(data.get("start", 0.0)),
            restart_delay=float(data.get("restart_delay", 0.5)),
            poll_interval=float(data.get("poll_interval", 0.25)),
        )

    @classmethod
    def from_spec(cls, spec: str) -> "UpgradePlan":
        """Parse the ``--upgrade`` CLI spec:
        ``start=T[,restart=D][,poll=P]``."""
        kwargs: Dict[str, float] = {}
        for pair in filter(None, (p.strip() for p in spec.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise ConfigError(
                    f"bad upgrade spec {spec!r}: expected key=value, got {pair!r}"
                )
            try:
                kwargs[key.strip()] = float(value)
            except ValueError:
                raise ConfigError(
                    f"bad upgrade spec {spec!r}: {value!r} is not a number"
                ) from None
        unknown = set(kwargs) - {"start", "restart", "poll"}
        if unknown:
            raise ConfigError(
                f"bad upgrade spec {spec!r}: unknown keys "
                f"{', '.join(sorted(unknown))} (expected start, restart, poll)"
            )
        return cls(
            start=kwargs.get("start", 0.0),
            restart_delay=kwargs.get("restart", 0.5),
            poll_interval=kwargs.get("poll", 0.25),
        )
