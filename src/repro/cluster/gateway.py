"""Fleet gateway: health-checked routing and the resilience pipeline.

The gateway owns the *logical* request ledger.  A
:class:`FleetRequest` is the client-visible unit; every dispatch clones
it into a fresh per-attempt engine
:class:`~repro.serving.request.Request` (attempt ids are fleet-unique),
so node-local restarts, sheds, and failures never mutate the logical
request's identity, and a request that fails over is *re-attempted*,
never re-served: the first attempt to finish wins, and every other
outstanding attempt is cancelled.

Routing policies (``round-robin``, ``least-loaded``,
``latency-aware``) only ever see *routable* nodes -- never DEAD,
RECOVERING, UNAVAILABLE, DRAINING, or RETIRED ones; the fleet audit
(:class:`~repro.audit.FleetRoutingError`) enforces that invariant on
every dispatch.  The resilience pipeline layered on top is per-request
timeout -> jittered-exponential-backoff retry (excluding already-tried
nodes while alternatives remain) -> failover -> shed, plus optional
hedging: a second attempt raced on another node when the first is
quiet past ``hedge_after``.

Gateway-decided sheds carry the
:data:`~repro.faults.report.GATEWAY_SHED_PREFIX` reason prefix so node
reports (engine-decided sheds) and the fleet report never double-count
a rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.audit import ConfigError
from repro.cluster.node import Node
from repro.serving.request import DEFAULT_TIER, Request, RequestState

__all__ = ["FleetRequest", "Gateway", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("round-robin", "least-loaded", "latency-aware")


@dataclass
class FleetRequest:
    """One client-visible request and its attempt ledger."""

    fleet_id: int
    input_tokens: int
    output_tokens: int
    arrival_time: float
    #: Owning tenant ("" = untenanted traffic).
    tenant: str = ""
    #: Traffic class (0 = premium .. 2 = best-effort); cloned onto
    #: every attempt so node schedulers admit premium work first.
    tier: int = DEFAULT_TIER
    #: Tenant TTFT SLO in seconds; becomes each attempt's deadline.
    ttft_slo: Optional[float] = None
    #: Live (non-terminal) attempts, newest last.
    attempts: List[Request] = field(default_factory=list)
    #: Names of nodes this request has been dispatched to.
    tried_nodes: Set[str] = field(default_factory=set)
    retries: int = 0
    hedged: bool = False
    state: RequestState = RequestState.WAITING
    shed_reason: Optional[str] = None
    #: The attempt that finished first (None until served).
    winner: Optional[Request] = None

    @property
    def terminal(self) -> bool:
        return self.state in (RequestState.FINISHED, RequestState.SHED)

    @property
    def ttft(self) -> float:
        """Client-observed TTFT: winning first token vs fleet arrival."""
        if self.winner is None or self.winner.first_token_time is None:
            raise RuntimeError(f"fleet request {self.fleet_id} has no first token")
        return self.winner.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        if self.winner is None:
            raise RuntimeError(f"fleet request {self.fleet_id} is not finished")
        return self.winner.tpot

    def finish(self, winner: Request) -> None:
        self.state = RequestState.FINISHED
        self.winner = winner

    def shed(self, reason: str) -> None:
        self.state = RequestState.SHED
        self.shed_reason = reason


@dataclass
class GatewayStats:
    """Counters of gateway decisions during one fleet run."""

    dispatches: int = 0
    retries: int = 0
    failovers: int = 0
    timeouts: int = 0
    hedges: int = 0
    hedge_wasted: int = 0
    probes: int = 0


class Gateway:
    """Routes fleet requests across heterogeneous node pools."""

    def __init__(self, policy: str = "round-robin") -> None:
        if policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {policy!r} (expected one of "
                f"{', '.join(ROUTING_POLICIES)})"
            )
        self.policy = policy
        #: Name -> Node, in deterministic registration order.
        self.nodes: Dict[str, Node] = {}
        self.stats = GatewayStats()
        self._rr_cursor = 0
        self._next_attempt_id = 0

    # -- pool membership -----------------------------------------------
    def register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ConfigError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def routable_nodes(self) -> List[Node]:
        """Nodes eligible for new work, in registration order."""
        return [node for node in self.nodes.values() if node.routable]

    # -- routing -------------------------------------------------------
    def pick(
        self,
        exclude: Set[str] = frozenset(),
        avoid: Set[str] = frozenset(),
        require_untried: bool = False,
    ) -> Optional[Node]:
        """Choose a routable node under the configured policy.

        ``exclude`` removes already-tried nodes from consideration --
        unless that would leave no candidate, in which case a retry may
        return to a previously tried (now routable) node rather than
        shed a servable request.  ``require_untried`` disables that
        fallback (hedging onto a tried node buys nothing).  ``avoid``
        removes nodes unconditionally (open circuit breakers).

        Returning None never advances the round-robin cursor, so a
        fully-excluded or fully-unhealthy pool cannot perturb routing
        for subsequent requests.
        """
        candidates = [
            node for node in self.routable_nodes() if node.name not in avoid
        ]
        if not candidates:
            return None
        preferred = [node for node in candidates if node.name not in exclude]
        if not preferred and require_untried:
            return None
        pool = preferred or candidates
        if self.policy == "round-robin":
            choice = pool[self._rr_cursor % len(pool)]
            self._rr_cursor += 1
            return choice
        if self.policy == "least-loaded":
            return min(pool, key=lambda node: (node.load, node.name))
        # latency-aware: lowest recent TTFT estimate, then load, then name.
        return min(
            pool, key=lambda node: (node.latency_estimate, node.load, node.name)
        )

    def dispatch(
        self,
        fleet_request: FleetRequest,
        node: Node,
        now: float,
        max_new_tokens: Optional[int] = None,
    ) -> Request:
        """Clone a fresh attempt onto ``node`` at fleet time ``now``.

        ``max_new_tokens`` caps the attempt's output budget (the
        admission layer's brownout response); the tenant's TTFT SLO
        becomes the attempt's engine-level deadline.
        """
        output_tokens = fleet_request.output_tokens
        if max_new_tokens is not None:
            output_tokens = min(output_tokens, max_new_tokens)
        attempt = Request(
            request_id=self._next_attempt_id,
            input_tokens=fleet_request.input_tokens,
            output_tokens=output_tokens,
            arrival_time=now,
            tenant=fleet_request.tenant,
            tier=fleet_request.tier,
            deadline=fleet_request.ttft_slo,
        )
        self._next_attempt_id += 1
        fleet_request.attempts.append(attempt)
        fleet_request.tried_nodes.add(node.name)
        node.feed(attempt)
        self.stats.dispatches += 1
        return attempt

    def probe(self) -> Dict[str, str]:
        """One health-check sweep: every node's current state."""
        self.stats.probes += 1
        return {name: node.state.value for name, node in self.nodes.items()}
