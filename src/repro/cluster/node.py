"""One fleet node: a serving engine plus a health state machine.

A :class:`Node` wraps a :class:`~repro.serving.engine.LlmServingEngine`
(embedded through its streaming ``begin`` / ``feed`` / ``advance`` /
``finish`` API) behind the health states the gateway routes on::

    HEALTHY -> DEGRADED -> DEAD -> RECOVERING -> HEALTHY
                  |                                 |
              UNAVAILABLE (blip)          DRAINING -> RETIRED

Health is derived, not stored: crashes, brownouts, fabric degradation,
and blips each set one flag, and :meth:`Node.state` folds them in
priority order, so overlapping faults resolve deterministically.
Brownouts scale every engine step by ``1 / factor`` through a
node-local fault-injector shim; fabric degradation mutates the node's
own :class:`~repro.comm.FabricHealth`, which the engine's degraded
collective library reads when pricing each AllReduce (the Figure 10
port-count cliff).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.audit import ConfigError
from repro.comm.topology import FabricHealth
from repro.faults.chaos import build_degraded_collectives
from repro.hw.backend import resolve_backend
from repro.hw.device import get_device
from repro.models.llama import (
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    LlamaCostModel,
    default_decode_attention,
)
from repro.serving.engine import LlmServingEngine, ResiliencePolicy, ServingReport
from repro.serving.request import Request, RequestState

__all__ = ["Node", "NodeClass", "NodeState"]

#: Intra-node fabric link degraded by FABRIC_DEGRADE events (the
#: concrete pair is arbitrary -- any degraded link slows the ring).
_DEGRADED_LINK = (0, 1)


@dataclass(frozen=True)
class NodeClass:
    """One homogeneous pool's hardware/engine template."""

    name: str                       # pool name, e.g. "gaudi2"
    device: str                     # repro.hw device name
    model: str = "8b"               # "8b" | "70b"
    tp: int = 8
    max_decode_batch: int = 32
    num_kv_blocks: Optional[int] = None

    def __post_init__(self) -> None:
        # Canonicalize through the backend registry (typed ConfigError
        # listing registered backends on unknown device names).
        object.__setattr__(self, "device", resolve_backend(self.device))
        if self.model not in ("8b", "70b"):
            raise ConfigError(f"model must be '8b' or '70b', got {self.model!r}")
        if self.tp < 1:
            raise ConfigError(f"tp must be >= 1, got {self.tp}")
        if self.max_decode_batch < 1:
            raise ConfigError(
                f"max_decode_batch must be >= 1, got {self.max_decode_batch}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "device": self.device,
            "model": self.model,
            "tp": self.tp,
            "max_decode_batch": self.max_decode_batch,
            "num_kv_blocks": self.num_kv_blocks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeClass":
        return cls(
            name=str(data["name"]),
            device=str(data["device"]),
            model=str(data.get("model", "8b")),
            tp=int(data.get("tp", 8)),
            max_decode_batch=int(data.get("max_decode_batch", 32)),
            num_kv_blocks=(
                None if data.get("num_kv_blocks") is None
                else int(data["num_kv_blocks"])
            ),
        )


class NodeState(enum.Enum):
    HEALTHY = "healthy"
    #: Serving, but slowed (brownout) or on a degraded fabric.
    DEGRADED = "degraded"
    #: Transiently unroutable; in-flight work keeps running.
    UNAVAILABLE = "unavailable"
    #: Crashed: every in-flight request failed over; unroutable.
    DEAD = "dead"
    #: Coming back after a crash; unroutable until warmed.
    RECOVERING = "recovering"
    #: Scale-down: no new routes, existing work finishes.
    DRAINING = "draining"
    #: Rolling upgrade: drained and restarting; rejoins afterwards.
    UPGRADING = "upgrading"
    #: Drained and removed from the pool.
    RETIRED = "retired"


class _NodeComputeState:
    """Fault-injector shim scaling a node's engine by its brownout.

    Duck-types the :class:`~repro.faults.injector.FaultInjector`
    surface the engine polls; node-level events mutate
    ``brownout_factor`` directly instead of replaying a device plan.
    """

    def __init__(self) -> None:
        self.brownout_factor = 1.0
        self._summary = _EMPTY_SUMMARY

    def advance(self, now: float):
        return self._summary

    def alive_devices(self) -> int:
        return 1  # node-level liveness is handled by Node.state

    def compute_slowdown(self) -> float:
        return 1.0 / self.brownout_factor

    def kernel_fault(self) -> bool:
        return False

    @property
    def next_event_time(self) -> Optional[float]:
        return None


class _EmptyAdvanceSummary:
    device_failures = 0
    device_recoveries = 0
    events = ()


_EMPTY_SUMMARY = _EmptyAdvanceSummary()


class Node:
    """One serving node on the shared fleet clock."""

    def __init__(
        self,
        name: str,
        node_class: NodeClass,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.name = name
        self.node_class = node_class
        self.fabric_health = FabricHealth()
        tp_config, _, _ = build_degraded_collectives(
            node_class.device, node_class.tp, self.fabric_health
        )
        device = get_device(node_class.device)
        llama = LLAMA_3_1_8B if node_class.model == "8b" else LLAMA_3_1_70B
        attention = default_decode_attention(device)
        self.compute = _NodeComputeState()
        self.engine = LlmServingEngine(
            LlamaCostModel(llama, device, tp=tp_config),
            attention,
            max_decode_batch=node_class.max_decode_batch,
            num_kv_blocks=node_class.num_kv_blocks,
            policy=policy or ResiliencePolicy(),
            injector=self.compute,
        )
        # Health flags (folded by `state` in priority order).
        self.dead = False
        self.recovering = False
        self.blipped = False
        self.draining = False
        #: Drain destination: True = rolling upgrade (rejoin after
        #: restart), False = scale-down (retire when idle).
        self.upgrade_pending = False
        #: Upgrade restart in progress (down, but coming back).
        self.upgrading = False
        self.retired = False
        # Bookkeeping the gateway/report read.
        self.crashes = 0
        self.upgrades = 0
        self.attempts_fed = 0
        self.inflight: List[Request] = []
        #: EWMA of recent attempt TTFTs (latency-aware routing input).
        self.latency_estimate = 0.0
        self._began = False

    # -- health --------------------------------------------------------
    @property
    def state(self) -> NodeState:
        if self.retired:
            return NodeState.RETIRED
        if self.dead:
            return NodeState.DEAD
        if self.recovering:
            return NodeState.RECOVERING
        if self.upgrading:
            return NodeState.UPGRADING
        if self.draining:
            return NodeState.DRAINING
        if self.blipped:
            return NodeState.UNAVAILABLE
        if self.compute.brownout_factor < 1.0 or not self.fabric_health.healthy:
            return NodeState.DEGRADED
        return NodeState.HEALTHY

    @property
    def routable(self) -> bool:
        """May the gateway send *new* work here?"""
        return self.state in (NodeState.HEALTHY, NodeState.DEGRADED)

    # -- fault transitions ---------------------------------------------
    def crash(self) -> List[Request]:
        """Hard node loss: fail every in-flight attempt; returns them
        so the gateway can fail them over."""
        self.dead = True
        self.crashes += 1
        victims = self.engine.fail_all(f"outage: node {self.name} crashed")
        self.inflight = []
        return victims

    def begin_recovery(self) -> None:
        self.dead = False
        self.recovering = True

    def warm(self) -> None:
        """Recovery warmup elapsed: the node rejoins the pool."""
        self.recovering = False

    def set_brownout(self, factor: float) -> None:
        self.compute.brownout_factor = factor

    def clear_brownout(self) -> None:
        self.compute.brownout_factor = 1.0

    def degrade_fabric(self, factor: float) -> None:
        self.fabric_health.set_link_factor(*_DEGRADED_LINK, factor)

    def restore_fabric(self) -> None:
        self.fabric_health.restore_link(*_DEGRADED_LINK)

    def set_blip(self, active: bool) -> None:
        self.blipped = active

    def drain(self) -> None:
        self.draining = True

    # -- rolling upgrades ----------------------------------------------
    def start_upgrade_drain(self) -> None:
        """Stop dispatch but keep serving: in-flight work finishes,
        and the node restarts (instead of retiring) once idle."""
        self.draining = True
        self.upgrade_pending = True

    @property
    def drained(self) -> bool:
        """No in-flight attempts and nothing queued in the engine."""
        return not self.inflight and not self.engine.has_unfinished

    def begin_upgrade_restart(self) -> None:
        """Drain complete: take the node down for its restart."""
        self.draining = False
        self.upgrade_pending = False
        self.upgrading = True

    def finish_upgrade(self) -> None:
        """Restart delay elapsed: rejoin the pool."""
        self.upgrading = False
        self.upgrades += 1

    # -- serving -------------------------------------------------------
    def begin(self) -> None:
        """Open the node's engine run (at fleet time zero or, for an
        autoscaled node, its provision time)."""
        self.engine.begin()
        self._began = True

    def feed(self, request: Request) -> None:
        """Route one attempt onto this node."""
        self.engine.feed(request)
        self.inflight.append(request)
        self.attempts_fed += 1

    def cancel(self, request: Request, reason: str) -> bool:
        """Gateway-side cancellation (timeout, lost hedge).

        Returns False when the attempt already reached a terminal
        state -- the race where a completion outran the cancel.
        """
        if request.state in (
            RequestState.FINISHED, RequestState.SHED, RequestState.FAILED
        ):
            return False
        self.engine.cancel(request, reason)
        return True

    def advance_to(self, horizon: float) -> float:
        """Advance the node's engine clock to ``horizon``.

        Batch-synchronous steps that start at or before the horizon run
        to completion, so the returned clock may overrun it; a dead or
        idle node simply holds its clock.
        """
        if self.dead or not self._began:
            return self.engine.now
        return self.engine.advance(horizon)

    def reap(self) -> List[Request]:
        """Pop attempts that reached a terminal state since last reap."""
        done: List[Request] = []
        still: List[Request] = []
        for request in self.inflight:
            if request.state in (
                RequestState.FINISHED, RequestState.SHED, RequestState.FAILED
            ):
                done.append(request)
            else:
                still.append(request)
        self.inflight = still
        if (
            self.draining and not self.upgrade_pending
            and not still and not self.engine.has_unfinished
        ):
            self.retired = True
        return done

    @property
    def load(self) -> int:
        """In-flight attempt count (least-loaded routing input)."""
        return len(self.inflight)

    def observe_latency(self, ttft: float) -> None:
        """Fold one finished attempt's TTFT into the routing estimate."""
        if self.latency_estimate == 0.0:
            self.latency_estimate = ttft
        else:
            self.latency_estimate = 0.5 * self.latency_estimate + 0.5 * ttft

    def finish(self, watchdog_reason: str = "") -> ServingReport:
        """Close the engine run and return its per-node report."""
        if not self._began:
            self.engine.begin()
        return self.engine.finish(watchdog_reason)
