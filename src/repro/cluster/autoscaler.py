"""SLO-driven pool autoscaling on the fleet clock.

The autoscaler evaluates each pool every ``evaluate_interval`` seconds
against p99-TTFT / p99-TPOT SLO targets computed over the fleet
requests finished since the previous evaluation.  Breaching a target
provisions one node (it joins the pool ``provision_delay`` seconds
later, passing through RECOVERING); comfortably clearing both targets
(below ``scale_down_factor`` of each) drains the pool's newest node.
``cooldown`` seconds must elapse between scaling actions per pool, so
a single latency spike cannot thrash the pool size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.audit import ConfigError
from repro.core.metrics import percentile

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """SLO targets and pool bounds for one fleet run."""

    target_p99_ttft: float = 5.0
    target_p99_tpot: Optional[float] = None
    evaluate_interval: float = 2.0
    cooldown: float = 4.0
    #: Scale down only when p99s sit below this fraction of target.
    scale_down_factor: float = 0.3
    min_nodes: int = 1
    max_nodes: int = 8
    provision_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.target_p99_ttft <= 0:
            raise ConfigError(
                f"target_p99_ttft must be positive, got {self.target_p99_ttft!r}"
            )
        if self.target_p99_tpot is not None and self.target_p99_tpot <= 0:
            raise ConfigError(
                f"target_p99_tpot must be positive, got {self.target_p99_tpot!r}"
            )
        if self.evaluate_interval <= 0:
            raise ConfigError(
                f"evaluate_interval must be positive, got {self.evaluate_interval!r}"
            )
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {self.cooldown!r}")
        if not 0.0 < self.scale_down_factor < 1.0:
            raise ConfigError(
                f"scale_down_factor must be in (0, 1), got {self.scale_down_factor!r}"
            )
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ConfigError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes}..{self.max_nodes}"
            )
        if self.provision_delay < 0:
            raise ConfigError(
                f"provision_delay must be >= 0, got {self.provision_delay!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_p99_ttft": self.target_p99_ttft,
            "target_p99_tpot": self.target_p99_tpot,
            "evaluate_interval": self.evaluate_interval,
            "cooldown": self.cooldown,
            "scale_down_factor": self.scale_down_factor,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "provision_delay": self.provision_delay,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AutoscalePolicy":
        return cls(
            target_p99_ttft=float(data["target_p99_ttft"]),
            target_p99_tpot=(
                None if data.get("target_p99_tpot") is None
                else float(data["target_p99_tpot"])
            ),
            evaluate_interval=float(data["evaluate_interval"]),
            cooldown=float(data["cooldown"]),
            scale_down_factor=float(data["scale_down_factor"]),
            min_nodes=int(data["min_nodes"]),
            max_nodes=int(data["max_nodes"]),
            provision_delay=float(data["provision_delay"]),
        )


class Autoscaler:
    """Per-pool scale decisions against the policy's SLO targets."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self._last_action: Dict[str, float] = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self.log: List[str] = []

    def evaluate(
        self,
        pool: str,
        now: float,
        pool_size: int,
        ttfts: List[float],
        tpots: List[float],
    ) -> Optional[str]:
        """One evaluation tick for ``pool``; returns ``"up"``, ``"down"``
        or None.

        ``pool_size`` counts live (non-retired, non-draining) nodes;
        ``ttfts`` / ``tpots`` are the window's finished-request samples.
        An empty window takes no action: no traffic is not evidence of
        an oversized pool when requests may simply be queued elsewhere.
        """
        policy = self.policy
        last = self._last_action.get(pool)
        if last is not None and now - last < policy.cooldown:
            return None
        if not ttfts:
            return None
        p99_ttft = percentile(ttfts, 99)
        p99_tpot = percentile(tpots, 99) if tpots else 0.0
        breach = p99_ttft > policy.target_p99_ttft or (
            policy.target_p99_tpot is not None and p99_tpot > policy.target_p99_tpot
        )
        if breach and pool_size < policy.max_nodes:
            self._last_action[pool] = now
            self.scale_ups += 1
            self.log.append(
                f"t={now:.3f} pool={pool} scale-up (p99 TTFT {p99_ttft:.3f}s)"
            )
            return "up"
        clear = p99_ttft < policy.scale_down_factor * policy.target_p99_ttft and (
            policy.target_p99_tpot is None
            or p99_tpot < policy.scale_down_factor * policy.target_p99_tpot
        )
        if clear and pool_size > policy.min_nodes:
            self._last_action[pool] = now
            self.scale_downs += 1
            self.log.append(
                f"t={now:.3f} pool={pool} scale-down (p99 TTFT {p99_ttft:.3f}s)"
            )
            return "down"
        return None
