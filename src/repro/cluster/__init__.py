"""Fleet-level resilience: multi-node cluster simulation.

This package scales the single-engine serving simulator up to a
*fleet*: heterogeneous Gaudi-2 / A100 node pools on one shared virtual
clock, a health-checked gateway routing across them (with timeouts,
jittered-backoff retries, failover, and optional hedging), node-level
chaos (crashes, brownouts, fabric degradation, blips), and SLO-driven
autoscaling.  Entry point: :func:`run_fleet` over a
:class:`FleetConfig`; the ``repro fleet`` CLI verb wraps it.
"""

from repro.cluster.autoscaler import AutoscalePolicy, Autoscaler
from repro.cluster.faults import NodeFaultEvent, NodeFaultKind, NodeFaultPlan
from repro.cluster.fleet import FleetConfig, resume_fleet, run_fleet
from repro.cluster.gateway import ROUTING_POLICIES, FleetRequest, Gateway, GatewayStats
from repro.cluster.node import Node, NodeClass, NodeState
from repro.cluster.report import FleetResilienceReport, NodeReport

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "FleetConfig",
    "FleetRequest",
    "FleetResilienceReport",
    "Gateway",
    "GatewayStats",
    "Node",
    "NodeClass",
    "NodeFaultEvent",
    "NodeFaultKind",
    "NodeFaultPlan",
    "NodeReport",
    "NodeState",
    "ROUTING_POLICIES",
    "resume_fleet",
    "run_fleet",
]
