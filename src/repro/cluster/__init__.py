"""Fleet-level resilience: multi-node cluster simulation.

This package scales the single-engine serving simulator up to a
*fleet*: heterogeneous Gaudi-2 / A100 node pools on one shared virtual
clock, a health-checked gateway routing across them (with timeouts,
jittered-backoff retries, failover, and optional hedging), node-level
chaos (crashes, brownouts, fabric degradation, blips), and SLO-driven
autoscaling.  Entry point: :func:`run_fleet` over a
:class:`FleetConfig`; the ``repro fleet`` CLI verb wraps it.

Overload protection and multi-tenant isolation live in
:mod:`repro.cluster.admission`: tenant traffic classes
(:class:`TenantSpec`), token-bucket quotas, weighted-fair queueing, the
CoDel-style brownout/shed state machine (:class:`AdmissionPolicy`),
per-node circuit breakers (:class:`BreakerPolicy`), and zero-loss
rolling upgrades (:class:`UpgradePlan`).
"""

from repro.cluster.admission import (
    AdmissionController,
    AdmissionMode,
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    TenantSpec,
    TokenBucket,
    UpgradePlan,
    WeightedFairQueue,
    parse_tenants_spec,
)
from repro.cluster.autoscaler import AutoscalePolicy, Autoscaler
from repro.cluster.faults import NodeFaultEvent, NodeFaultKind, NodeFaultPlan
from repro.cluster.fleet import FleetConfig, resume_fleet, run_fleet
from repro.cluster.gateway import ROUTING_POLICIES, FleetRequest, Gateway, GatewayStats
from repro.cluster.node import Node, NodeClass, NodeState
from repro.cluster.report import FleetResilienceReport, NodeReport, TenantReport

__all__ = [
    "AdmissionController",
    "AdmissionMode",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "Autoscaler",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "FleetConfig",
    "FleetRequest",
    "FleetResilienceReport",
    "Gateway",
    "GatewayStats",
    "Node",
    "NodeClass",
    "NodeFaultEvent",
    "NodeFaultKind",
    "NodeFaultPlan",
    "NodeReport",
    "NodeState",
    "ROUTING_POLICIES",
    "TenantReport",
    "TenantSpec",
    "TokenBucket",
    "UpgradePlan",
    "WeightedFairQueue",
    "parse_tenants_spec",
    "resume_fleet",
    "run_fleet",
]
