"""The :class:`ResilienceReport` of one chaos run.

Summarizes how the serving stack degraded: what was shed, retried, and
recovered, the SLO-violation rate, goodput against raw throughput, and
the interconnect-bandwidth retention the Figure 10 port-loss model
predicts for the surviving mesh.  Rendering uses fixed formats only,
so the same seed produces a byte-identical report.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Shed-reason categories beginning with this prefix were decided by a
#: cluster gateway (routing/timeout/failover), not by a node's engine.
GATEWAY_SHED_PREFIX = "gateway-"


def shed_reason_counts(
    requests: Iterable, scope: Optional[str] = None
) -> Counter:
    """Shed/fail reasons aggregated by their leading category.

    ``scope`` partitions the ledger so fleet-level and node-level
    reports never double-count the same rejection:

    * ``None`` -- every reason (the single-box chaos harness).
    * ``"gateway"`` -- only categories carrying the
      :data:`GATEWAY_SHED_PREFIX` (sheds decided by the routing layer).
    * ``"engine"`` -- only categories without it (sheds decided inside
      a serving engine: KV exhaustion, deadlines, outages).
    """
    if scope not in (None, "gateway", "engine"):
        raise ValueError(f"scope must be None, 'gateway', or 'engine', got {scope!r}")
    counts: Counter = Counter()
    for request in requests:
        reason = getattr(request, "shed_reason", None)
        if reason is None:
            continue
        category = reason.split(":", 1)[0]
        is_gateway = category.startswith(GATEWAY_SHED_PREFIX)
        if scope == "gateway" and not is_gateway:
            continue
        if scope == "engine" and is_gateway:
            continue
        counts[category] += 1
    return counts


@dataclass(frozen=True)
class ResilienceReport:
    """Aggregate outcome of one fault-injected serving run."""

    device: str
    model: str
    tp_degree: int
    seed: int
    # -- request ledger ------------------------------------------------
    num_requests: int
    finished_requests: int
    shed_requests: int
    failed_requests: int
    unfinished_requests: int
    retried_requests: int
    recovered_requests: int
    preemptions: int
    fault_preemptions: int
    kernel_retries: int
    device_failures: int
    device_recoveries: int
    # -- service quality ----------------------------------------------
    total_time: float
    total_output_tokens: int
    throughput_tokens_per_s: float
    goodput_tokens_per_s: float
    slo_violation_rate: float
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    # -- fabric (Figure 10 port-loss model) ----------------------------
    alive_devices: int
    healthy_allreduce_bw: float
    degraded_allreduce_bw: float
    shed_reasons: Tuple[Tuple[str, int], ...] = ()
    fault_log: Tuple[str, ...] = field(default=(), repr=False)

    @property
    def completion_rate(self) -> float:
        return self.finished_requests / self.num_requests if self.num_requests else 0.0

    @property
    def goodput_fraction(self) -> float:
        if self.throughput_tokens_per_s <= 0:
            return 0.0
        return self.goodput_tokens_per_s / self.throughput_tokens_per_s

    @property
    def bandwidth_retention(self) -> float:
        """Degraded / healthy AllReduce bus bandwidth.

        On the P2P mesh with ``d`` of ``n`` devices down this is the
        paper's port cliff, ``(n - d - 1) / (n - 1)``."""
        if self.healthy_allreduce_bw <= 0:
            return 0.0
        return self.degraded_allreduce_bw / self.healthy_allreduce_bw

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "model": self.model,
            "tp_degree": self.tp_degree,
            "seed": self.seed,
            "num_requests": self.num_requests,
            "finished_requests": self.finished_requests,
            "shed_requests": self.shed_requests,
            "failed_requests": self.failed_requests,
            "unfinished_requests": self.unfinished_requests,
            "retried_requests": self.retried_requests,
            "recovered_requests": self.recovered_requests,
            "preemptions": self.preemptions,
            "fault_preemptions": self.fault_preemptions,
            "kernel_retries": self.kernel_retries,
            "device_failures": self.device_failures,
            "device_recoveries": self.device_recoveries,
            "total_time": round(self.total_time, 9),
            "total_output_tokens": self.total_output_tokens,
            "throughput_tokens_per_s": round(self.throughput_tokens_per_s, 6),
            "goodput_tokens_per_s": round(self.goodput_tokens_per_s, 6),
            "goodput_fraction": round(self.goodput_fraction, 6),
            "slo_violation_rate": round(self.slo_violation_rate, 6),
            "mean_ttft": round(self.mean_ttft, 9),
            "p99_ttft": round(self.p99_ttft, 9),
            "mean_tpot": round(self.mean_tpot, 9),
            "alive_devices": self.alive_devices,
            "healthy_allreduce_bw": round(self.healthy_allreduce_bw, 3),
            "degraded_allreduce_bw": round(self.degraded_allreduce_bw, 3),
            "bandwidth_retention": round(self.bandwidth_retention, 6),
            "shed_reasons": dict(self.shed_reasons),
            "fault_log": list(self.fault_log),
        }

    def to_json(self) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """The report as one CSV row (nested fields JSON-encoded)."""
        from repro.api.report import rows_to_csv

        row = self.to_dict()
        row["shed_reasons"] = json.dumps(row["shed_reasons"], sort_keys=True)
        row["fault_log"] = json.dumps(row["fault_log"])
        return rows_to_csv([row])

    def render(self) -> str:
        """Fixed-format text report (byte-identical per seed)."""
        lines: List[str] = []
        lines.append(
            f"Resilience report: {self.model} on {self.device} "
            f"(TP={self.tp_degree}, seed={self.seed})"
        )
        lines.append(
            f"  requests   : {self.num_requests} submitted | "
            f"{self.finished_requests} finished | {self.shed_requests} shed | "
            f"{self.failed_requests} failed | {self.unfinished_requests} unfinished"
        )
        lines.append(
            f"  recovery   : {self.retried_requests} retried | "
            f"{self.recovered_requests} recovered | "
            f"{self.preemptions} capacity preemptions | "
            f"{self.fault_preemptions} fault preemptions | "
            f"{self.kernel_retries} kernel retries"
        )
        lines.append(
            f"  faults     : {self.device_failures} device failures | "
            f"{self.device_recoveries} recoveries | "
            f"{self.alive_devices}/{self.tp_degree} devices alive at end"
        )
        if self.finished_requests > 0:
            lines.append(
                f"  latency    : mean TTFT {self.mean_ttft:.4f} s | "
                f"p99 TTFT {self.p99_ttft:.4f} s | mean TPOT {self.mean_tpot * 1e3:.3f} ms"
            )
        else:
            lines.append("  latency    : no finished requests")
        lines.append(
            f"  throughput : {self.throughput_tokens_per_s:.2f} tokens/s over "
            f"{self.total_time:.4f} s ({self.total_output_tokens} tokens)"
        )
        lines.append(
            f"  goodput    : {self.goodput_tokens_per_s:.2f} tokens/s "
            f"({self.goodput_fraction:.1%} of throughput) | "
            f"SLO violations {self.slo_violation_rate:.1%}"
        )
        lines.append(
            f"  fabric     : AllReduce {self.degraded_allreduce_bw / 1e9:.2f} GB/s "
            f"vs healthy {self.healthy_allreduce_bw / 1e9:.2f} GB/s "
            f"({self.bandwidth_retention:.1%} retained; Fig. 10 port model)"
        )
        if self.shed_reasons:
            lines.append("  shed       : " + "; ".join(
                f"{count}x {reason}" for reason, count in self.shed_reasons
            ))
        for entry in self.fault_log:
            lines.append(f"  event      : {entry}")
        return "\n".join(lines)
