"""Replays a :class:`~repro.faults.plan.FaultPlan` against the clock.

The injector owns (or is handed) a shared
:class:`~repro.comm.FabricHealth`: as the engine's virtual clock passes
each event's fire time, the injector mutates the health record -- which
degraded topology views read live when pricing collectives -- and keeps
the compute-side fault state (HBM throttle, stragglers, pending kernel
faults) that the engine polls every step.  Everything is seeded, so the
same plan replays byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.comm.topology import FabricHealth
from repro.faults.events import FaultEvent, FaultKind
from repro.faults.plan import FaultPlan


@dataclass
class AdvanceSummary:
    """What changed during one :meth:`FaultInjector.advance` call.

    The serving engine consumes these counts (duck-typed) instead of
    inspecting raw events, keeping :mod:`repro.serving` import-free of
    this package.
    """

    device_failures: int = 0
    device_recoveries: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return bool(self.events)


class FaultInjector:
    """Deterministic fault-state machine for one serving run."""

    def __init__(
        self,
        plan: FaultPlan,
        num_devices: int = 8,
        health: Optional[FabricHealth] = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.plan = plan
        self.num_devices = num_devices
        self.health = health if health is not None else FabricHealth()
        self._queue = plan.scheduled()
        self._cursor = 0
        self._rng = random.Random(plan.seed)
        self._pending_kernel_fault = False
        self.hbm_factor = 1.0
        self.stragglers: Dict[int, float] = {}
        self.fired: List[FaultEvent] = []

    # -- clock ---------------------------------------------------------
    def advance(self, now: float) -> AdvanceSummary:
        """Apply every event with ``time <= now``; returns what fired."""
        summary = AdvanceSummary()
        while self._cursor < len(self._queue) and self._queue[self._cursor].time <= now:
            event = self._queue[self._cursor]
            self._cursor += 1
            self._apply(event, summary)
            summary.events.append(event)
            self.fired.append(event)
        return summary

    def _apply(self, event: FaultEvent, summary: AdvanceSummary) -> None:
        kind = event.kind
        if kind is FaultKind.DEVICE_FAIL:
            # A device outside this run's fault domain (e.g. dev 12 at
            # TP=8) cannot hurt the serving group: record nothing.
            if event.device >= self.num_devices:
                return
            if event.device not in self.health.down_devices:
                summary.device_failures += 1
            self.health.fail_device(event.device)
        elif kind is FaultKind.DEVICE_RECOVER:
            if event.device >= self.num_devices:
                return
            if event.device in self.health.down_devices:
                summary.device_recoveries += 1
            self.health.recover_device(event.device)
        elif kind is FaultKind.LINK_DEGRADE:
            self.health.set_link_factor(event.device, event.peer, event.factor)
        elif kind is FaultKind.LINK_RESTORE:
            self.health.restore_link(event.device, event.peer)
        elif kind is FaultKind.HBM_THROTTLE:
            if event.factor <= 0:
                raise ValueError("HBM throttle factor must be > 0")
            self.hbm_factor = event.factor
        elif kind is FaultKind.HBM_RESTORE:
            self.hbm_factor = 1.0
        elif kind is FaultKind.TPC_STRAGGLER:
            if event.factor <= 0:
                raise ValueError("straggler factor must be > 0")
            self.stragglers[event.device] = event.factor
        elif kind is FaultKind.STRAGGLER_CLEAR:
            self.stragglers.pop(event.device, None)
        elif kind is FaultKind.KERNEL_FAULT:
            self._pending_kernel_fault = True
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown fault kind {kind!r}")

    # -- engine-facing queries -----------------------------------------
    def device_up(self, device: int) -> bool:
        return device not in self.health.down_devices

    def alive_devices(self) -> int:
        return self.health.alive(self.num_devices)

    def compute_slowdown(self) -> float:
        """Multiplier on step time from HBM throttling and stragglers.

        Engine steps are batch-synchronous, so the slowest alive device
        (or the throttled memory system) paces everyone.
        """
        factor = self.hbm_factor
        for device, speed in self.stragglers.items():
            if device in self.health.down_devices:
                continue  # a dead device can't straggle
            factor = min(factor, speed)
        return 1.0 / factor

    def kernel_fault(self) -> bool:
        """Whether the decode step that just ran hit a transient kernel
        failure (scheduled one-shots first, then the seeded rate)."""
        if self._pending_kernel_fault:
            self._pending_kernel_fault = False
            return True
        rate = self.plan.kernel_fault_rate
        return rate > 0 and self._rng.random() < rate

    @property
    def exhausted(self) -> bool:
        """True when every scheduled event has fired."""
        return self._cursor >= len(self._queue)

    @property
    def next_event_time(self) -> Optional[float]:
        """Fire time of the next pending event (None when exhausted).

        During a total outage the engine stalls the clock to this time:
        the only thing that can change the world is the next event."""
        if self.exhausted:
            return None
        return self._queue[self._cursor].time
