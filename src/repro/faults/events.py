"""Timed fault events against the serving engine's virtual clock."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """What goes wrong (or comes back) at an event's fire time."""

    DEVICE_FAIL = "device-fail"
    DEVICE_RECOVER = "device-recover"
    LINK_DEGRADE = "link-degrade"
    LINK_RESTORE = "link-restore"
    HBM_THROTTLE = "hbm-throttle"
    HBM_RESTORE = "hbm-restore"
    TPC_STRAGGLER = "tpc-straggler"
    STRAGGLER_CLEAR = "straggler-clear"
    KERNEL_FAULT = "kernel-fault"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition.

    ``device``/``peer`` identify the affected device or link endpoints
    (-1 = not applicable).  ``factor`` is the remaining-capacity
    fraction for degradations (link bandwidth, HBM bandwidth, TPC
    speed): 1.0 is healthy, 0.0 is fully down.
    """

    time: float
    kind: FaultKind
    device: int = -1
    peer: int = -1
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError("factor must be in [0, 1]")

    def describe(self) -> str:
        """Stable one-line rendering (used by the resilience report)."""
        parts = [f"t={self.time:g}", self.kind.value]
        if self.device >= 0:
            target = f"dev{self.device}"
            if self.peer >= 0:
                target += f"-dev{self.peer}"
            parts.append(target)
        if self.kind in (
            FaultKind.LINK_DEGRADE,
            FaultKind.HBM_THROTTLE,
            FaultKind.TPC_STRAGGLER,
        ):
            parts.append(f"factor={self.factor:g}")
        return " ".join(parts)
