"""Seeded, declarative schedules of fault events.

A :class:`FaultPlan` is built either programmatically (builder methods
chain) or from the compact CLI specs used by ``python -m repro chaos``::

    --fail-device  3@t=2.0            # kill device 3 at t=2s
    --fail-device  3@t=2.0,recover=5  # ...and bring it back at t=5s
    --degrade-link 0-1@t=1.0,factor=0.5,until=3.0
    --flap-link    0-1@t=1.0,period=0.5,cycles=4
    --throttle-hbm 0.7@t=1.5,until=4.0
    --straggler    2@t=1.0,factor=0.5

Everything is deterministic: the plan's ``seed`` drives the transient
kernel-fault RNG, and events replay in (time, insertion) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit import ConfigError
from repro.faults.events import FaultEvent, FaultKind


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of fault events."""

    seed: int = 0
    #: Per-decode-step probability of a transient kernel failure.
    kernel_fault_rate: float = 0.0
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.kernel_fault_rate < 1.0:
            raise ConfigError(
                f"kernel_fault_rate must be in [0, 1), got {self.kernel_fault_rate!r}"
            )

    # -- builders ------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def fail_device(
        self, device: int, at: float, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """Hard device failure, optionally followed by recovery."""
        if device < 0:
            raise ConfigError(f"device must be >= 0, got {device}")
        if at < 0:
            raise ConfigError(f"failure time must be >= 0, got {at!r}")
        self.add(FaultEvent(at, FaultKind.DEVICE_FAIL, device=device))
        if recover_at is not None:
            if recover_at <= at:
                raise ConfigError(
                    f"recovery (recover_at={recover_at!r}) must come after "
                    f"the failure (at={at!r})"
                )
            self.add(FaultEvent(recover_at, FaultKind.DEVICE_RECOVER, device=device))
        return self

    def degrade_link(
        self, a: int, b: int, factor: float, at: float, until: Optional[float] = None
    ) -> "FaultPlan":
        """Reduce one P2P link to ``factor`` of its bandwidth."""
        if a < 0 or b < 0:
            raise ConfigError(f"link devices must be >= 0, got {a}-{b}")
        if a == b:
            raise ConfigError(f"link endpoints must differ, got {a}-{b}")
        if not 0.0 <= factor <= 1.0:
            raise ConfigError(f"link factor must be in [0, 1], got {factor!r}")
        self.add(FaultEvent(at, FaultKind.LINK_DEGRADE, device=a, peer=b, factor=factor))
        if until is not None:
            if until <= at:
                raise ConfigError(
                    f"restore (until={until!r}) must come after the "
                    f"degradation (at={at!r})"
                )
            self.add(FaultEvent(until, FaultKind.LINK_RESTORE, device=a, peer=b))
        return self

    def flap_link(
        self, a: int, b: int, at: float, period: float, cycles: int
    ) -> "FaultPlan":
        """A flapping link: down for ``period / 2``, up for ``period / 2``."""
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period!r}")
        if cycles < 1:
            raise ConfigError(f"cycles must be >= 1, got {cycles}")
        for i in range(cycles):
            start = at + i * period
            self.degrade_link(a, b, 0.0, start, until=start + period / 2)
        return self

    def throttle_hbm(
        self, factor: float, at: float, until: Optional[float] = None
    ) -> "FaultPlan":
        """Thermal HBM throttling: memory bandwidth drops to ``factor``."""
        if not 0.0 < factor <= 1.0:
            raise ConfigError(f"HBM throttle factor must be in (0, 1], got {factor!r}")
        self.add(FaultEvent(at, FaultKind.HBM_THROTTLE, factor=factor))
        if until is not None:
            if until <= at:
                raise ConfigError(
                    f"restore (until={until!r}) must come after the "
                    f"throttle (at={at!r})"
                )
            self.add(FaultEvent(until, FaultKind.HBM_RESTORE))
        return self

    def straggler(
        self, device: int, factor: float, at: float, until: Optional[float] = None
    ) -> "FaultPlan":
        """One device's TPCs run at ``factor`` speed (batch-synchronous
        steps slow to the straggler's pace)."""
        if device < 0:
            raise ConfigError(f"device must be >= 0, got {device}")
        if not 0.0 < factor <= 1.0:
            raise ConfigError(f"straggler factor must be in (0, 1], got {factor!r}")
        self.add(FaultEvent(at, FaultKind.TPC_STRAGGLER, device=device, factor=factor))
        if until is not None:
            if until <= at:
                raise ConfigError(
                    f"clear (until={until!r}) must come after the "
                    f"slowdown (at={at!r})"
                )
            self.add(FaultEvent(until, FaultKind.STRAGGLER_CLEAR, device=device))
        return self

    def kernel_fault_at(self, at: float) -> "FaultPlan":
        """Force one transient kernel failure at a specific time."""
        self.add(FaultEvent(at, FaultKind.KERNEL_FAULT))
        return self

    # -- queries -------------------------------------------------------
    def scheduled(self) -> List[FaultEvent]:
        """Events in replay order (stable sort by fire time)."""
        return sorted(self.events, key=lambda e: e.time)

    @property
    def empty(self) -> bool:
        return not self.events and self.kernel_fault_rate == 0.0

    # -- CLI spec parsing ----------------------------------------------
    @classmethod
    def from_specs(
        cls,
        seed: int = 0,
        fail_device: Sequence[str] = (),
        degrade_link: Sequence[str] = (),
        flap_link: Sequence[str] = (),
        throttle_hbm: Sequence[str] = (),
        straggler: Sequence[str] = (),
        kernel_fault_rate: float = 0.0,
    ) -> "FaultPlan":
        plan = cls(seed=seed, kernel_fault_rate=kernel_fault_rate)
        for spec in fail_device:
            head, kv = _parse_spec(spec, required=("t",), optional=("recover",))
            plan.fail_device(int(head), kv["t"], recover_at=kv.get("recover"))
        for spec in degrade_link:
            head, kv = _parse_spec(spec, required=("t", "factor"), optional=("until",))
            a, b = _parse_link(head)
            plan.degrade_link(a, b, kv["factor"], kv["t"], until=kv.get("until"))
        for spec in flap_link:
            head, kv = _parse_spec(spec, required=("t", "period", "cycles"))
            a, b = _parse_link(head)
            plan.flap_link(a, b, kv["t"], kv["period"], int(kv["cycles"]))
        for spec in throttle_hbm:
            head, kv = _parse_spec(spec, required=("t",), optional=("until",))
            plan.throttle_hbm(float(head), kv["t"], until=kv.get("until"))
        for spec in straggler:
            head, kv = _parse_spec(spec, required=("t", "factor"), optional=("until",))
            plan.straggler(int(head), kv["factor"], kv["t"], until=kv.get("until"))
        return plan


def _parse_spec(
    spec: str,
    required: Tuple[str, ...] = (),
    optional: Tuple[str, ...] = (),
) -> Tuple[str, Dict[str, float]]:
    """Parse ``HEAD@key=value,key=value`` fault specs."""
    head, sep, rest = spec.partition("@")
    if not sep or not head:
        raise ValueError(f"bad fault spec {spec!r}: expected HEAD@t=TIME[,...]")
    kv: Dict[str, float] = {}
    for item in rest.split(","):
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"bad fault spec {spec!r}: {item!r} is not key=value")
        try:
            kv[key.strip()] = float(value)
        except ValueError:
            raise ValueError(f"bad fault spec {spec!r}: {value!r} is not a number") from None
    for key in required:
        if key not in kv:
            raise ValueError(f"bad fault spec {spec!r}: missing {key}=")
    allowed = set(required) | set(optional)
    extra = set(kv) - allowed
    if extra:
        raise ValueError(f"bad fault spec {spec!r}: unknown keys {sorted(extra)}")
    return head.strip(), kv


def _parse_link(head: str) -> Tuple[int, int]:
    a, sep, b = head.partition("-")
    if not sep:
        raise ValueError(f"bad link {head!r}: expected A-B device pair")
    return int(a), int(b)
