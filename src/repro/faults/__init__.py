"""Deterministic fault injection for the serving stack.

The paper's HLS-Gaudi-2 mesh loses interconnect bandwidth *linearly*
when devices drop out -- only ``3 * (alive - 1)`` of each survivor's 21
RoCE ports stay usable (Section 2, Figure 10).  This package lets the
simulators explore exactly that regime: a seeded
:class:`~repro.faults.plan.FaultPlan` schedules timed fault events
(device failure/recovery, link degradation and flaps, HBM thermal
throttling, straggler TPCs, transient kernel failures), a
:class:`~repro.faults.injector.FaultInjector` replays them against the
engine's virtual clock while mutating a shared
:class:`~repro.comm.FabricHealth`, and
:func:`~repro.faults.chaos.run_chaos` drives a full serving run under
the plan, summarized as a byte-identical-per-seed
:class:`~repro.faults.report.ResilienceReport`.
"""

from repro.faults.events import FaultEvent, FaultKind
from repro.faults.injector import AdvanceSummary, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import GATEWAY_SHED_PREFIX, ResilienceReport, shed_reason_counts
from repro.faults.chaos import ChaosConfig, build_degraded_collectives, run_chaos

__all__ = [
    "AdvanceSummary",
    "ChaosConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "GATEWAY_SHED_PREFIX",
    "ResilienceReport",
    "build_degraded_collectives",
    "run_chaos",
    "shed_reason_counts",
]
