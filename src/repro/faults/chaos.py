"""Chaos harness: one serving run under a fault plan.

Wires the whole degradation story together: a shared
:class:`~repro.comm.FabricHealth` sits between the
:class:`~repro.faults.injector.FaultInjector` (which mutates it as
events fire) and the degraded topology view bound into the model's
tensor-parallel collective library (which reads it when pricing every
AllReduce).  Killing a device mid-run therefore slows decode through
the exact Figure 10 port-count bandwidth cliff, while the engine sheds,
retries, and recomputes per its :class:`ResiliencePolicy`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.compat import positional_shim
from repro.audit import ConfigError, get_auditor
from repro.comm.api import HcclLibrary, NcclLibrary
from repro.comm.topology import (
    DegradedMeshTopology,
    DegradedSwitchTopology,
    FabricHealth,
    P2PMeshTopology,
    SwitchTopology,
)
from repro.core.metrics import percentile
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import ResilienceReport, shed_reason_counts
from repro.hw.backend import GAUDI2, resolve_backend
from repro.hw.device import get_device
from repro.hw.spec import get_spec
from repro.models.llama import (
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    LlamaCostModel,
    default_decode_attention,
)
from repro.models.tensor_parallel import TensorParallelConfig
from repro.serving.engine import LlmServingEngine, ResiliencePolicy
from repro.serving.loadgen import poisson_arrivals
from repro.serving.request import Request, RequestState, RetryPolicy
from repro.serving.dataset import dynamic_sonnet_requests

#: Probe size for the healthy-vs-degraded AllReduce comparison: large
#: enough that the per-step base latency is negligible, so the ratio is
#: purely the Figure 10 port-count model.
_BANDWIDTH_PROBE_BYTES = 64 * 2**20


@dataclass
class ChaosConfig:
    """One chaos experiment (all knobs surfaced by ``repro chaos``)."""

    model: str = "8b"
    device: str = GAUDI2
    tp: int = 8
    max_decode_batch: int = 32
    num_requests: int = 128
    rate: Optional[float] = None          # requests/s; None = backlog at t=0
    seed: int = 0
    deadline: Optional[float] = None      # TTFT SLO in seconds
    max_retries: int = 3
    checkpoint_interval: int = 32
    num_kv_blocks: Optional[int] = None
    admission_watermark: float = 1.0
    plan: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        """Reject impossible experiments at construction, naming the
        offending field (:class:`~repro.audit.ConfigError` is also a
        ``ValueError``, so older ``except ValueError`` callers hold)."""
        if self.model not in ("8b", "70b"):
            raise ConfigError(f"model must be '8b' or '70b', got {self.model!r}")
        # Normalize to the canonical registry key (raises ConfigError,
        # listing the registered backends, on unknown names).
        self.device = resolve_backend(self.device)
        if self.tp < 1:
            raise ConfigError(f"tp must be >= 1, got {self.tp}")
        if self.max_decode_batch < 1:
            raise ConfigError(
                f"max_decode_batch must be >= 1, got {self.max_decode_batch}"
            )
        if self.num_requests < 1:
            raise ConfigError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"deadline must be positive, got {self.deadline}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.checkpoint_interval < 1:
            raise ConfigError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.num_kv_blocks is not None and self.num_kv_blocks < 1:
            raise ConfigError(
                f"num_kv_blocks must be >= 1, got {self.num_kv_blocks}"
            )
        if not 0.0 < self.admission_watermark <= 1.0:
            raise ConfigError(
                f"admission_watermark must be in (0, 1], got {self.admission_watermark}"
            )


def build_degraded_collectives(device: str, tp: int, health: FabricHealth):
    """(tp_config, healthy_library, degraded_library) for one box.

    The degraded library prices every collective through a topology
    view of ``health``, so mutating the shared ``health`` mid-run
    (device deaths, link slowdowns) re-prices AllReduce on the Figure
    10 port-count cliff.  Shared by the single-box chaos harness and
    each cluster :class:`~repro.cluster.Node`.
    """
    if tp == 1:
        return TensorParallelConfig(degree=1), None, None
    num_devices = max(8, tp)
    spec = get_spec(device)
    if spec.interconnect.kind == "p2p-mesh":
        healthy = HcclLibrary(P2PMeshTopology(num_devices=num_devices))
        degraded_topology = DegradedMeshTopology(healthy.topology, health)
    else:
        healthy = NcclLibrary(SwitchTopology(num_devices=num_devices))
        degraded_topology = DegradedSwitchTopology(healthy.topology, health)
    degraded = healthy.with_topology(degraded_topology)
    tp_config = TensorParallelConfig(degree=tp, library=degraded)
    return tp_config, healthy, degraded


def _build_collectives(config: ChaosConfig, health: FabricHealth):
    """(tp_config, healthy_library, degraded_library) for the run."""
    return build_degraded_collectives(config.device, config.tp, health)


def _shed_reason_counts(requests: List[Request]) -> Counter:
    """Shed/fail reasons aggregated by their leading category.

    Kept as a thin alias of the public
    :func:`repro.faults.report.shed_reason_counts` (scope=None).
    """
    return shed_reason_counts(requests)


@positional_shim("config")
def run_chaos(*, config: ChaosConfig, ctx=None) -> ResilienceReport:
    """Run one fault-injected serving experiment end to end.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, the
    serving run records spans and metrics through it.
    """
    device = get_device(config.device)
    health = FabricHealth()
    tp_config, healthy_lib, degraded_lib = _build_collectives(config, health)
    llama = LLAMA_3_1_8B if config.model == "8b" else LLAMA_3_1_70B
    model = LlamaCostModel(llama, device, tp=tp_config)
    attention = default_decode_attention(device)
    injector = FaultInjector(config.plan, num_devices=max(config.tp, 1), health=health)
    policy = ResiliencePolicy(
        deadline=config.deadline,
        retry=RetryPolicy(max_retries=config.max_retries),
        checkpoint_interval=config.checkpoint_interval,
        admission_watermark=config.admission_watermark,
    )
    engine = LlmServingEngine(
        model,
        attention,
        max_decode_batch=config.max_decode_batch,
        num_kv_blocks=config.num_kv_blocks,
        policy=policy,
        injector=injector,
        ctx=ctx,
    )
    requests = dynamic_sonnet_requests(config.num_requests, seed=config.seed)
    if config.rate is not None:
        poisson_arrivals(requests, config.rate, seed=config.seed)
    report = engine.run(requests)

    finished = [r for r in requests if r.state is RequestState.FINISHED]
    ttfts = sorted(r.ttft for r in finished)
    if config.deadline is not None:
        good = [r for r in finished if r.ttft <= config.deadline]
        violations = len(requests) - len(good)
    else:
        good = finished
        violations = len(requests) - len(finished)
    good_tokens = sum(r.output_tokens for r in good)
    goodput = good_tokens / report.total_time if report.total_time > 0 else 0.0

    healthy_bw = degraded_bw = 0.0
    if healthy_lib is not None:
        healthy_bw = healthy_lib.all_reduce(
            _BANDWIDTH_PROBE_BYTES, config.tp
        ).bus_bandwidth
        alive = degraded_lib.alive_participants(config.tp)
        if alive >= 2:
            degraded_bw = degraded_lib.all_reduce(
                _BANDWIDTH_PROBE_BYTES, alive
            ).bus_bandwidth

    shed_reasons = _shed_reason_counts(list(requests))
    resilience = ResilienceReport(
        device=device.name,
        model=llama.name,
        tp_degree=config.tp,
        seed=config.seed,
        num_requests=report.num_requests,
        finished_requests=report.finished_requests,
        shed_requests=report.shed_requests,
        failed_requests=report.failed_requests,
        unfinished_requests=report.unfinished_requests,
        retried_requests=report.retried_requests,
        recovered_requests=engine.fault_stats.recovered_requests,
        preemptions=report.preemptions,
        fault_preemptions=engine.fault_stats.fault_preemptions,
        kernel_retries=engine.fault_stats.kernel_retries,
        device_failures=engine.fault_stats.device_failures,
        device_recoveries=engine.fault_stats.device_recoveries,
        total_time=report.total_time,
        total_output_tokens=report.total_output_tokens,
        throughput_tokens_per_s=report.throughput_tokens_per_s,
        goodput_tokens_per_s=goodput,
        slo_violation_rate=violations / len(requests),
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99) if ttfts else 0.0,
        mean_tpot=report.mean_tpot,
        alive_devices=injector.alive_devices(),
        healthy_allreduce_bw=healthy_bw,
        degraded_allreduce_bw=degraded_bw,
        shed_reasons=tuple(sorted(shed_reasons.items())),
        fault_log=tuple(event.describe() for event in injector.fired),
    )
    auditor = get_auditor()
    if auditor is not None:
        # The engine audited its own ServingReport; this re-checks the
        # chaos-level aggregation (partition, latency signs, p50<=p99).
        auditor.begin_run("chaos.report").check_report(resilience, ttfts)
    return resilience
