"""The common :class:`Report` protocol all result objects speak.

Every report the stack produces -- a serving run
(:class:`~repro.serving.engine.ServingReport`), a chaos run
(:class:`~repro.faults.report.ResilienceReport`), a sweep
(:class:`~repro.core.experiment.ExperimentResult`), a profile
(:class:`~repro.tools.profiler.ProfileReport`) -- exposes the same
three exports: ``to_json()``, ``to_csv()``, ``render()``.  The CLI
then prints any of them through one code path,
:func:`render_report`, instead of per-command formatting.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Protocol, Sequence, runtime_checkable


@runtime_checkable
class Report(Protocol):
    """Structural type of every exportable result object."""

    def to_json(self) -> str:
        """The report as a JSON document."""
        ...

    def to_csv(self) -> str:
        """The report as CSV text (one or more rows)."""
        ...

    def render(self) -> str:
        """The report as fixed-format human-readable text."""
        ...


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialize row dicts as CSV, with the header being the union of
    keys in first-seen order (missing cells left empty)."""
    if not rows:
        raise ValueError("no rows to export")
    fieldnames: list = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_report(report: Report, fmt: str = "text") -> str:
    """One report, any format: ``text`` / ``json`` / ``csv``.

    This is the CLI's single rendering path; anything conforming to
    :class:`Report` plugs in without new per-command code.
    """
    if not isinstance(report, Report):
        raise TypeError(
            f"{type(report).__name__} does not implement the Report protocol "
            "(to_json/to_csv/render)"
        )
    if fmt == "text":
        return report.render()
    if fmt == "json":
        return report.to_json()
    if fmt == "csv":
        return report.to_csv()
    raise ValueError(f"unknown report format {fmt!r}; use text, json, or csv")
