"""Backward-compatibility shims for the ``run_*`` API redesign.

The redesigned entry points take keyword-only parameters (so every
call names what it passes, and ``ctx=RunContext(...)`` slots in
anywhere).  Old positional call sites keep working through
:func:`positional_shim`, which maps leading positional arguments onto
their historical parameter names and emits a :class:`DeprecationWarning`
pointing at the caller.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable


def positional_shim(*names: str) -> Callable:
    """Wrap a keyword-only function to accept legacy positional args.

    ``names`` lists the historical positional-parameter order.  A call
    with positional arguments maps them onto those names, warns with
    ``DeprecationWarning`` (attributed to the caller), and forwards
    everything as keywords; keyword-only calls pass through untouched.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{fn.__name__}() takes at most {len(names)} legacy "
                        f"positional arguments ({len(args)} given)"
                    )
                warnings.warn(
                    f"calling {fn.__name__}() with positional arguments is "
                    f"deprecated; use keyword arguments "
                    f"({', '.join(names[: len(args)])}=...) and pass shared "
                    f"state via ctx=RunContext(...)",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for name, value in zip(names, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got multiple values for argument {name!r}"
                        )
                    kwargs[name] = value
            return fn(**kwargs)

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
