"""Redesigned run API: shared context, common report protocol, shims.

* :class:`RunContext` -- one object carrying tracer + metrics + seed +
  device, accepted by every ``run_*`` entry point as ``ctx=``;
* :class:`Report` / :func:`render_report` -- the ``to_json`` /
  ``to_csv`` / ``render`` protocol all result objects conform to, and
  the CLI's single rendering path over it;
* :func:`positional_shim` -- the deprecation shim keeping legacy
  positional call sites working (with a :class:`DeprecationWarning`)
  while the signatures are keyword-only.
"""

from repro.api.compat import positional_shim
from repro.api.context import RunContext
from repro.api.report import Report, render_report, rows_to_csv

__all__ = [
    "Report",
    "RunContext",
    "positional_shim",
    "render_report",
    "rows_to_csv",
]
