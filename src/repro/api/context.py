"""The shared :class:`RunContext` every ``run_*`` entry point accepts.

Before this redesign each entry point grew its own ad-hoc positional
signature (a device here, a seed there, no way to observe anything).
A :class:`RunContext` bundles the cross-cutting run state -- tracer,
metrics registry, seed, and default device -- so callers configure one
object and thread it through any entry point with ``ctx=``:

    from repro.api import RunContext
    ctx = RunContext.create(seed=7, device="gaudi2")
    report = run_chaos(config=config, ctx=ctx)
    print(ctx.tracer_summary())

Unbound fields degrade gracefully: with no tracer/metrics the
instrumentation hooks are no-ops, and entry points fall back to their
own seed/device defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.exporters import chrome_trace_json, text_summary
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@dataclass
class RunContext:
    """Cross-cutting state shared by one run (or one batch of runs)."""

    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    seed: int = 0
    #: Default device *name* (resolved lazily so importing the context
    #: never pulls in the device models).
    device: Optional[str] = None
    #: Free-form labels stamped into exports (experiment name, etc.).
    labels: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        trace: bool = True,
        metrics: bool = True,
        seed: int = 0,
        device: Optional[str] = None,
        process_name: str = "repro",
    ) -> "RunContext":
        """A context with a fresh tracer/registry already bound."""
        return cls(
            tracer=Tracer(process_name) if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            seed=seed,
            device=device,
        )

    def resolve_seed(self, seed: Optional[int]) -> int:
        """An explicit ``seed`` argument wins; else the context's."""
        return self.seed if seed is None else seed

    def resolve_device(self, device=None):
        """An explicit device wins; else the context's named default.

        Accepts a device object or name in either position; returns a
        device object, or raises if neither is provided."""
        from repro.hw.device import get_device

        target = device if device is not None else self.device
        if target is None:
            raise ValueError("no device given and the RunContext names no default")
        return get_device(target) if isinstance(target, str) else target

    # -- export conveniences ----------------------------------------------
    def chrome_trace(self) -> str:
        """The bound tracer as chrome://tracing JSON."""
        if self.tracer is None:
            raise ValueError("this RunContext has no tracer bound")
        return chrome_trace_json(self.tracer)

    def tracer_summary(self) -> str:
        """The bound tracer's fixed-format text summary."""
        if self.tracer is None:
            raise ValueError("this RunContext has no tracer bound")
        return text_summary(self.tracer)

    def metrics_summary(self) -> str:
        """The bound registry's fixed-format text listing."""
        if self.metrics is None:
            raise ValueError("this RunContext has no metrics registry bound")
        return self.metrics.render()
