"""``hl-smi`` / ``nvidia-smi`` analogs.

Section 3.1: "each system's power consumption is measured using
nvidia-smi for A100 and hl-smi for Gaudi-2".  These helpers produce the
same style of readout from an :class:`~repro.hw.power.ActivityProfile`
(or a workload estimate carrying one), so experiments report power the
way the paper's scripts did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.power import ActivityProfile, PowerModel
from repro.hw.spec import A100_SPEC, DeviceSpec, GAUDI2_SPEC


@dataclass(frozen=True)
class SmiSample:
    """One management-interface sample."""

    device: str
    power_watts: float
    power_limit_watts: float
    matrix_utilization_pct: float
    vector_utilization_pct: float
    memory_utilization_pct: float

    @property
    def power_fraction(self) -> float:
        return self.power_watts / self.power_limit_watts

    def render(self) -> str:
        """The one-line readout both CLIs print."""
        return (
            f"{self.device:8s}  pwr {self.power_watts:5.0f}W / "
            f"{self.power_limit_watts:.0f}W  "
            f"mme/tc {self.matrix_utilization_pct:3.0f}%  "
            f"tpc/sm {self.vector_utilization_pct:3.0f}%  "
            f"mem {self.memory_utilization_pct:3.0f}%"
        )


def _sample(spec: DeviceSpec, activity: ActivityProfile) -> SmiSample:
    power = PowerModel(spec.power).power(activity)
    return SmiSample(
        device=spec.name,
        power_watts=power,
        power_limit_watts=spec.power.tdp_watts,
        matrix_utilization_pct=100.0 * activity.matrix_busy,
        vector_utilization_pct=100.0 * activity.vector_busy,
        memory_utilization_pct=100.0 * activity.memory_util,
    )


def hl_smi(activity: ActivityProfile, spec: DeviceSpec = GAUDI2_SPEC) -> SmiSample:
    """Gaudi's System Management Interface readout."""
    if spec.vendor != "Intel":
        raise ValueError("hl-smi reads Gaudi devices; use nvidia_smi for GPUs")
    return _sample(spec, activity)


def nvidia_smi(activity: ActivityProfile, spec: DeviceSpec = A100_SPEC) -> SmiSample:
    """NVIDIA's System Management Interface readout."""
    if spec.vendor != "NVIDIA":
        raise ValueError("nvidia-smi reads NVIDIA devices; use hl_smi for Gaudi")
    return _sample(spec, activity)


def smi(device, activity: ActivityProfile) -> SmiSample:
    """Backend-dispatched readout: whichever smi the platform ships.

    Reads the backend's ``smi_style`` capability ("hl-smi" or
    "nvidia-smi"), so any registered backend renders its native tool's
    output without callers branching on vendor.
    """
    style = getattr(device, "smi_style", "hl-smi")
    impl = hl_smi if style == "hl-smi" else nvidia_smi
    return impl(activity, device.spec)
