"""Measurement tooling analogs.

The paper's methodology leans on three tools we model here:

* :mod:`repro.tools.profiler` -- the Intel Gaudi Profiler analog used
  in Section 3.2 to reverse-engineer how the graph compiler configures
  the MME, plus chrome-trace export of compiled-graph timelines.
* :mod:`repro.tools.smi` -- ``hl-smi`` / ``nvidia-smi`` analogs: board
  power and engine-utilization readouts for a workload phase
  (Section 3.1's energy methodology).
"""

from repro.tools.profiler import GaudiProfiler, ProfiledOp, chrome_trace
from repro.tools.smi import SmiSample, hl_smi, nvidia_smi, smi

__all__ = [
    "GaudiProfiler",
    "ProfiledOp",
    "SmiSample",
    "chrome_trace",
    "hl_smi",
    "nvidia_smi",
    "smi",
]
