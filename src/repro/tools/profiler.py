"""Gaudi Profiler analog.

Section 3.2 of the paper: "we use the Intel Gaudi Profiler to
reverse-engineer how the graph compiler and runtime system manages
MME's GEMM execution, which provide hints on how the MME geometry is
dynamically configured".  This module provides the same two
capabilities against the model:

* :meth:`GaudiProfiler.profile` -- record per-op engine occupancy from
  a compiled graph's timeline (what the real profiler's HW trace
  shows), exportable as a chrome://tracing JSON via
  :func:`chrome_trace`;
* :meth:`GaudiProfiler.reverse_engineer_mme` -- sweep GEMM shapes and
  tabulate the geometry the compiler picked per shape, i.e. regenerate
  Figure 7(a) the way the authors did.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.graph.compiler import CompiledGraph
from repro.graph.ir import Engine
from repro.hw.device import Gaudi2Device
from repro.hw.spec import DType


@dataclass(frozen=True)
class ProfiledOp:
    """One op occurrence in the profiled trace."""

    name: str
    engine: Engine
    start_us: float
    duration_us: float
    traffic_bytes: float
    pipelined: bool


@dataclass
class ProfileReport:
    """Engine-occupancy summary of one compiled graph."""

    ops: List[ProfiledOp] = field(default_factory=list)
    total_us: float = 0.0
    engine_busy_us: Dict[str, float] = field(default_factory=dict)

    def occupancy(self, engine: Engine) -> float:
        if self.total_us <= 0:
            return 0.0
        return self.engine_busy_us.get(engine.value, 0.0) / self.total_us

    @property
    def op_count(self) -> int:
        return len(self.ops)


class GaudiProfiler:
    """The model-level equivalent of the Intel Gaudi Profiler."""

    def __init__(self, device: Gaudi2Device | None = None) -> None:
        self.device = device or Gaudi2Device()

    # ------------------------------------------------------------------
    def profile(self, compiled: CompiledGraph) -> ProfileReport:
        """Extract the HW-trace view of a compiled graph."""
        report = ProfileReport()
        for entry in compiled.timeline.entries:
            report.ops.append(
                ProfiledOp(
                    name=entry.name,
                    engine=entry.engine,
                    start_us=entry.start * 1e6,
                    duration_us=entry.duration * 1e6,
                    traffic_bytes=entry.traffic_bytes,
                    pipelined=entry.pipelined,
                )
            )
        report.total_us = compiled.total_time * 1e6
        for engine in Engine:
            report.engine_busy_us[engine.value] = (
                compiled.timeline.engine_busy(engine) * 1e6
            )
        return report

    # ------------------------------------------------------------------
    def reverse_engineer_mme(
        self,
        m_sizes: Sequence[int],
        n_sizes: Sequence[int],
        k: int = 16384,
        dtype: DType = DType.BF16,
    ) -> List[dict]:
        """Regenerate the Figure 7(a) geometry map.

        Returns one record per (M, N) with the chosen geometry label,
        whether it power-gates the array, and the achieved utilization.
        """
        if not m_sizes or not n_sizes:
            raise ValueError("need at least one M and one N size")
        records = []
        for m in m_sizes:
            for n in n_sizes:
                config = self.device.mme.select_config(m, k, n, dtype)
                estimate = self.device.mme.gemm(m, k, n, dtype)
                records.append(
                    {
                        "m": m,
                        "n": n,
                        "k": k,
                        "geometry": config.geometry.label,
                        "power_gated": config.power_gated,
                        "utilization": estimate.utilization,
                        "memory_bound": estimate.memory_bound,
                    }
                )
        return records

    def geometry_map(
        self, m_sizes: Sequence[int], n_sizes: Sequence[int], k: int = 16384
    ) -> Dict[str, List[tuple]]:
        """Group the reverse-engineered grid by geometry label."""
        grouped: Dict[str, List[tuple]] = {}
        for record in self.reverse_engineer_mme(m_sizes, n_sizes, k):
            grouped.setdefault(record["geometry"], []).append(
                (record["m"], record["n"])
            )
        return grouped


def chrome_trace(report: ProfileReport, process_name: str = "Gaudi-2") -> str:
    """Serialize a profile as chrome://tracing JSON.

    Engines map to trace threads; pipelined super-ops appear on both
    engines' rows for the overlapped window, mirroring what the real
    profiler's combined HW trace shows.
    """
    thread_ids = {Engine.MME: 1, Engine.TPC: 2, Engine.DMA: 3}
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for engine, tid in thread_ids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": engine.value.upper()},
            }
        )
    for op in report.ops:
        events.append(
            {
                "name": op.name,
                "ph": "X",
                "pid": 1,
                "tid": thread_ids[op.engine],
                "ts": op.start_us,
                "dur": op.duration_us,
                "args": {
                    "traffic_bytes": op.traffic_bytes,
                    "pipelined": op.pipelined,
                },
            }
        )
        if op.pipelined:
            partner = Engine.TPC if op.engine is Engine.MME else Engine.MME
            events.append(
                {
                    "name": f"{op.name} (partner)",
                    "ph": "X",
                    "pid": 1,
                    "tid": thread_ids[partner],
                    "ts": op.start_us,
                    "dur": op.duration_us,
                    "args": {"pipelined": True},
                }
            )
    return json.dumps({"traceEvents": events}, indent=1)
