"""Gaudi Profiler analog.

Section 3.2 of the paper: "we use the Intel Gaudi Profiler to
reverse-engineer how the graph compiler and runtime system manages
MME's GEMM execution, which provide hints on how the MME geometry is
dynamically configured".  This module provides the same two
capabilities against the model:

* :meth:`GaudiProfiler.profile` -- record per-op engine occupancy from
  a compiled graph's timeline (what the real profiler's HW trace
  shows), exportable as a chrome://tracing JSON via
  :func:`chrome_trace`;
* :meth:`GaudiProfiler.reverse_engineer_mme` -- sweep GEMM shapes and
  tabulate the geometry the compiler picked per shape, i.e. regenerate
  Figure 7(a) the way the authors did.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.graph.compiler import CompiledGraph
from repro.graph.ir import Engine
from repro.hw.device import Gaudi2Device
from repro.hw.spec import DType
from repro.obs.exporters import chrome_trace_json
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class ProfiledOp:
    """One op occurrence in the profiled trace."""

    name: str
    engine: Engine
    start_us: float
    duration_us: float
    traffic_bytes: float
    pipelined: bool


@dataclass
class ProfileReport:
    """Engine-occupancy summary of one compiled graph."""

    ops: List[ProfiledOp] = field(default_factory=list)
    total_us: float = 0.0
    engine_busy_us: Dict[str, float] = field(default_factory=dict)

    def occupancy(self, engine: Engine) -> float:
        if self.total_us <= 0:
            return 0.0
        return self.engine_busy_us.get(engine.value, 0.0) / self.total_us

    @property
    def op_count(self) -> int:
        return len(self.ops)

    # -- Report protocol ----------------------------------------------
    def to_dict(self) -> Dict:
        """The report as one plain dict (totals plus per-op records)."""
        return {
            "total_us": self.total_us,
            "op_count": self.op_count,
            "engine_busy_us": dict(self.engine_busy_us),
            "ops": [
                {
                    "name": op.name,
                    "engine": op.engine.value,
                    "start_us": op.start_us,
                    "duration_us": op.duration_us,
                    "traffic_bytes": op.traffic_bytes,
                    "pipelined": op.pipelined,
                }
                for op in self.ops
            ],
        }

    def to_json(self) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Per-op rows as CSV."""
        from repro.api.report import rows_to_csv

        return rows_to_csv(self.to_dict()["ops"])

    def render(self) -> str:
        """Fixed-format occupancy table."""
        lines = [f"Profile: {self.op_count} ops over {self.total_us:.1f} us"]
        for engine in Engine:
            busy = self.engine_busy_us.get(engine.value, 0.0)
            lines.append(
                f"  {engine.value.upper():<4s} busy {busy:10.1f} us "
                f"({self.occupancy(engine):6.1%})"
            )
        return "\n".join(lines)


class GaudiProfiler:
    """The model-level equivalent of the Intel Gaudi Profiler."""

    def __init__(self, device: Gaudi2Device | None = None) -> None:
        self.device = device or Gaudi2Device()

    # ------------------------------------------------------------------
    def profile(self, compiled: CompiledGraph) -> ProfileReport:
        """Extract the HW-trace view of a compiled graph."""
        report = ProfileReport()
        for entry in compiled.timeline.entries:
            report.ops.append(
                ProfiledOp(
                    name=entry.name,
                    engine=entry.engine,
                    start_us=entry.start * 1e6,
                    duration_us=entry.duration * 1e6,
                    traffic_bytes=entry.traffic_bytes,
                    pipelined=entry.pipelined,
                )
            )
        report.total_us = compiled.total_time * 1e6
        for engine in Engine:
            report.engine_busy_us[engine.value] = (
                compiled.timeline.engine_busy(engine) * 1e6
            )
        return report

    # ------------------------------------------------------------------
    def reverse_engineer_mme(
        self,
        m_sizes: Sequence[int],
        n_sizes: Sequence[int],
        k: int = 16384,
        dtype: DType = DType.BF16,
    ) -> List[dict]:
        """Regenerate the Figure 7(a) geometry map.

        Returns one record per (M, N) with the chosen geometry label,
        whether it power-gates the array, and the achieved utilization.
        """
        if not m_sizes or not n_sizes:
            raise ValueError("need at least one M and one N size")
        records = []
        for m in m_sizes:
            for n in n_sizes:
                config = self.device.mme.select_config(m, k, n, dtype)
                estimate = self.device.mme.gemm(m, k, n, dtype)
                records.append(
                    {
                        "m": m,
                        "n": n,
                        "k": k,
                        "geometry": config.geometry.label,
                        "power_gated": config.power_gated,
                        "utilization": estimate.utilization,
                        "memory_bound": estimate.memory_bound,
                    }
                )
        return records

    def geometry_map(
        self, m_sizes: Sequence[int], n_sizes: Sequence[int], k: int = 16384
    ) -> Dict[str, List[tuple]]:
        """Group the reverse-engineered grid by geometry label."""
        grouped: Dict[str, List[tuple]] = {}
        for record in self.reverse_engineer_mme(m_sizes, n_sizes, k):
            grouped.setdefault(record["geometry"], []).append(
                (record["m"], record["n"])
            )
        return grouped


def profile_tracer(report: ProfileReport, process_name: str = "Gaudi-2") -> Tracer:
    """Replay a profile into a :class:`~repro.obs.tracer.Tracer`.

    Each engine becomes one trace track (allocated dynamically in
    first-seen order -- an op on an engine outside the classic
    MME/TPC/DMA trio gets its own track instead of a ``KeyError``);
    pipelined super-ops appear on both partner engines' tracks for the
    overlapped window, mirroring the real profiler's combined HW trace.
    """
    tracer = Tracer(process_name)
    for op in report.ops:
        start = op.start_us / 1e6
        end = start + op.duration_us / 1e6
        tracer.record(
            op.name,
            op.engine.value,
            start,
            end,
            traffic_bytes=op.traffic_bytes,
            pipelined=op.pipelined,
        )
        if op.pipelined:
            partner = Engine.TPC if op.engine is Engine.MME else Engine.MME
            tracer.record(
                f"{op.name} (partner)", partner.value, start, end, pipelined=True
            )
    return tracer


def chrome_trace(report: ProfileReport, process_name: str = "Gaudi-2") -> str:
    """Serialize a profile as chrome://tracing JSON.

    Funnels through the shared :mod:`repro.obs` trace schema, so a
    HW-profile trace and a serving trace open identically in
    ``chrome://tracing`` / Perfetto.
    """
    return chrome_trace_json(profile_tracer(report, process_name))
