"""Virtual-clock span tracer.

The serving engine advances a *virtual* clock, so the tracer never
consults wall time: every span carries the start/end timestamps the
instrumented code hands it.  This is the model-level analog of the
Intel Gaudi Profiler's HW trace (Section 3.2 of the paper): the same
run that produces a :class:`~repro.serving.engine.ServingReport` also
produces a hierarchical timeline -- request -> iteration ->
prefill/decode -> kernel/collective -- exportable as chrome://tracing
JSON via :mod:`repro.obs.exporters`.

Spans nest through an explicit stack: :meth:`Tracer.begin` parents the
new span under the innermost open span, :meth:`Tracer.end` closes it.
:meth:`Tracer.record` emits an already-timed child span without
touching the stack (used for sub-phase events like collectives whose
duration the cost model reports after the fact).  Requests, which
overlap arbitrarily, are tracked as chrome async events via
:meth:`Tracer.async_begin` / :meth:`Tracer.async_end`.

Everything is deterministic: span ids are sequential, ordering is
recording order, and no wall-clock or randomness is involved, so two
same-seed runs export byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One closed or open interval on the virtual clock."""

    span_id: int
    name: str
    category: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class CounterSample:
    """One sample of a numeric timeline track (chrome 'C' event)."""

    name: str
    t: float
    value: float


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (chrome 'i' event)."""

    name: str
    category: str
    t: float
    args: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class AsyncEvent:
    """Begin/end half of an overlapping (async) span, e.g. a request."""

    name: str
    category: str
    t: float
    async_id: int
    phase: str  # "b" or "e"
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Records hierarchical spans, counters, and events on a virtual clock."""

    #: Truthiness doubles as the fast-path guard in instrumented code:
    #: ``if tracer: tracer.begin(...)`` costs one attribute test when a
    #: :class:`NullTracer` (falsy) is bound.
    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self.spans: List[Span] = []
        self.counters: List[CounterSample] = []
        self.instants: List[InstantEvent] = []
        self.async_events: List[AsyncEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._cursor = 0.0  # sequential clock for stand-alone kernels

    def __bool__(self) -> bool:
        return self.enabled

    # -- hierarchical spans ----------------------------------------------
    def begin(self, name: str, category: str, start: float, **args) -> Span:
        """Open a span at virtual time ``start`` nested under the
        innermost open span; close it with :meth:`end`."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=start,
            parent_id=self._stack[-1].span_id if self._stack else None,
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, end: float, **args) -> Span:
        """Close ``span`` at virtual time ``end``; spans must close in
        LIFO order (innermost first)."""
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(f"span {span.name!r} is not the innermost open span")
        if end < span.start:
            raise ValueError(f"span {span.name!r} would end before it starts")
        self._stack.pop()
        span.end = end
        span.args.update(args)
        return span

    def record(self, name: str, category: str, start: float, end: float, **args) -> Span:
        """Emit an already-timed span as a child of the innermost open
        span, without pushing it on the stack."""
        if end < start:
            raise ValueError(f"span {name!r} would end before it starts")
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=start,
            end=end,
            parent_id=self._stack[-1].span_id if self._stack else None,
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def record_sequential(self, name: str, category: str, duration: float, **args) -> Span:
        """Append a span at the tracer's internal cursor and advance it.

        Stand-alone kernel entry points (``run_gemm`` and friends) have
        no engine clock; laying their invocations end to end yields a
        deterministic benchmark timeline."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        span = self.record(name, category, self._cursor, self._cursor + duration, **args)
        self._cursor += duration
        return span

    # -- flat events ------------------------------------------------------
    def counter(self, name: str, t: float, value: float) -> None:
        """Sample a numeric track (rendered as a chrome counter lane)."""
        self.counters.append(CounterSample(name, t, float(value)))

    def instant(self, name: str, category: str, t: float, **args) -> None:
        """Drop a zero-duration marker, e.g. a preemption or shed."""
        self.instants.append(InstantEvent(name, category, t, dict(args)))

    def async_begin(self, name: str, category: str, t: float, async_id: int, **args) -> None:
        """Open an overlapping span keyed by ``async_id`` (request id)."""
        self.async_events.append(AsyncEvent(name, category, t, async_id, "b", dict(args)))

    def async_end(self, name: str, category: str, t: float, async_id: int, **args) -> None:
        """Close the overlapping span opened under ``async_id``."""
        self.async_events.append(AsyncEvent(name, category, t, async_id, "e", dict(args)))

    # -- introspection ----------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Number of spans begun but not yet ended."""
        return len(self._stack)

    def categories(self) -> List[str]:
        """Distinct span/instant categories in first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.category not in seen:
                seen.append(span.category)
        for event in self.instants:
            if event.category not in seen:
                seen.append(event.category)
        return seen

    def category_busy(self, category: str) -> float:
        """Total closed-span seconds recorded under ``category``."""
        return sum(s.duration for s in self.spans if s.category == category and s.end is not None)

    def finish(self, end: float) -> None:
        """Close any spans left open (outermost last) at time ``end``."""
        while self._stack:
            self.end(self._stack[-1], end)


class NullTracer(Tracer):
    """A disabled tracer: every method is a no-op, truthiness is False.

    Binding this instead of ``None`` lets instrumented code keep a
    single code path while the ``if tracer:`` guard still skips all
    recording work on hot paths.
    """

    enabled = False

    def begin(self, name: str, category: str, start: float, **args) -> Span:
        """No-op; returns a throwaway span."""
        return Span(span_id=0, name=name, category=category, start=start)

    def end(self, span: Span, end: float, **args) -> Span:
        """No-op."""
        span.end = end
        return span

    def record(self, name: str, category: str, start: float, end: float, **args) -> Span:
        """No-op; returns a throwaway span."""
        return Span(span_id=0, name=name, category=category, start=start, end=end)

    def counter(self, name: str, t: float, value: float) -> None:
        """No-op."""

    def instant(self, name: str, category: str, t: float, **args) -> None:
        """No-op."""

    def async_begin(self, name: str, category: str, t: float, async_id: int, **args) -> None:
        """No-op."""

    def async_end(self, name: str, category: str, t: float, async_id: int, **args) -> None:
        """No-op."""


#: Shared disabled tracer for unbound call sites.
NULL_TRACER = NullTracer()
