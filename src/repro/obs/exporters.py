"""Trace exporters: chrome://tracing JSON, flat JSON, text summary.

One trace schema serves every producer -- the serving engine's
virtual-clock tracer and the compiled-graph profiler
(:mod:`repro.tools.profiler`) both funnel through
:func:`chrome_trace_events`, so a serving trace and an HW-trace open
identically in ``chrome://tracing`` / Perfetto.

Schema (the contract ``scripts/check_trace_schema.py`` validates):

* top level is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``;
* one ``M``/``process_name`` metadata event, one ``M``/``thread_name``
  per track; tracks are span categories, allocated dynamically in
  first-seen order (tid 1..N) -- never a hardcoded engine map;
* spans are ``X`` (complete) events with ``ts``/``dur`` in
  microseconds of *virtual* time, ``cat`` set to the track category;
* counters are ``C`` events (one lane per counter name);
* instants are ``i`` events; requests are ``b``/``e`` async pairs
  keyed by ``id``.

All ordering is deterministic (recording order; tracks by first use),
so same-seed runs export byte-identical documents.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.tracer import Tracer

#: Trace time unit: chrome expects microseconds.
_US = 1e6


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Category -> tid, allocated in first-seen order starting at 1."""
    tids: Dict[str, int] = {}
    for span in tracer.spans:
        if span.category not in tids:
            tids[span.category] = len(tids) + 1
    for event in tracer.instants:
        if event.category not in tids:
            tids[event.category] = len(tids) + 1
    for event in tracer.async_events:
        if event.category not in tids:
            tids[event.category] = len(tids) + 1
    return tids


def chrome_trace_events(tracer: Tracer, pid: int = 1) -> List[Dict]:
    """The ``traceEvents`` list for one tracer (see module docstring)."""
    tids = _track_ids(tracer)
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": tracer.process_name}}
    ]
    for category, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": category},
            }
        )
    for span in tracer.spans:
        if span.end is None:
            continue  # open spans are not exportable intervals
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": pid,
                "tid": tids[span.category],
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "args": span.args,
            }
        )
    for sample in tracer.counters:
        events.append(
            {
                "name": sample.name,
                "ph": "C",
                "pid": pid,
                "ts": round(sample.t * _US, 3),
                "args": {"value": sample.value},
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tids[instant.category],
                "ts": round(instant.t * _US, 3),
                "args": instant.args,
            }
        )
    for half in tracer.async_events:
        events.append(
            {
                "name": half.name,
                "cat": half.category,
                "ph": half.phase,
                "id": half.async_id,
                "pid": pid,
                "tid": tids[half.category],
                "ts": round(half.t * _US, 3),
                "args": half.args,
            }
        )
    return events


def chrome_trace_json(tracer: Tracer) -> str:
    """Serialize a tracer as a chrome://tracing JSON document."""
    document = {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"}
    return json.dumps(document, indent=1, sort_keys=True)


def flat_json(tracer: Tracer) -> str:
    """Spans/counters/instants as flat record lists (for pandas etc.)."""
    document = {
        "process": tracer.process_name,
        "spans": [
            {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "name": s.name,
                "category": s.category,
                "start": s.start,
                "end": s.end,
                "args": s.args,
            }
            for s in tracer.spans
        ],
        "counters": [
            {"name": c.name, "t": c.t, "value": c.value} for c in tracer.counters
        ],
        "instants": [
            {"name": e.name, "category": e.category, "t": e.t, "args": e.args}
            for e in tracer.instants
        ],
    }
    return json.dumps(document, indent=1, sort_keys=True)


def text_summary(tracer: Tracer) -> str:
    """Fixed-format per-category busy-time and span-count summary."""
    closed = [s for s in tracer.spans if s.end is not None]
    total = max((s.end for s in closed), default=0.0)
    lines = [f"Trace summary: {tracer.process_name}"]
    lines.append(
        f"  {len(closed)} spans | {len(tracer.counters)} counter samples | "
        f"{len(tracer.instants)} instants | {len(tracer.async_events) // 2} async spans | "
        f"span of {total:.4f} s virtual time"
    )
    for category in tracer.categories():
        spans = [s for s in closed if s.category == category]
        busy = sum(s.duration for s in spans)
        share = busy / total if total > 0 else 0.0
        lines.append(
            f"  {category:<12s} {len(spans):5d} spans  busy {busy:10.4f} s  ({share:6.1%})"
        )
    by_name: Dict[str, List[float]] = {}
    for span in closed:
        by_name.setdefault(f"{span.category}:{span.name}", []).append(span.duration)
    top = sorted(by_name.items(), key=lambda kv: (-sum(kv[1]), kv[0]))[:8]
    if top:
        lines.append("  hottest spans (by total time):")
        for name, durations in top:
            lines.append(
                f"    {name:<32s} n={len(durations):5d}  total {sum(durations):10.4f} s"
            )
    return "\n".join(lines)
