"""Counter/gauge/histogram metrics registry.

The scalar half of the observability layer: where the tracer answers
*when* (spans on the virtual clock), the registry answers *how much*
-- KV-pool occupancy, batch sizes, preemptions, MME/TPC busy seconds,
per-step watts.  Instruments are created lazily by name, so call sites
need only a registry reference, and a name maps to exactly one
instrument type for the whole run (re-registering under a different
type is an error, not a silent aliasing).

All state is plain floats updated deterministically from the virtual
clock's event order; snapshots sort by name, so same-seed runs render
and serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.metrics import percentile


class Counter:
    """A monotonically increasing total (events, tokens, retries)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        """Exportable state: ``{"type", "value"}``."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (occupancy, batch size, watts)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        """Record the current level; the high-water mark is kept."""
        self.value = float(value)
        self.max_value = value if not self._touched else max(self.max_value, value)
        self._touched = True

    def snapshot(self) -> Dict[str, object]:
        """Exportable state: ``{"type", "value", "max"}``."""
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """A distribution of observations (step times, watts, TTFTs).

    Observations are retained, so any percentile can be computed after
    the run; serving runs record at most a few thousand samples, which
    keeps this exact rather than bucketed.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the observations (0.0 when empty)."""
        if not self._values:
            return 0.0
        return percentile(sorted(self._values), p)

    def snapshot(self) -> Dict[str, object]:
        """Exportable summary: count/total/mean/min/max/p50/p99."""
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Lazily creates and holds named instruments for one run."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge registered under ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram registered under ``name``."""
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[object]:
        """The instrument under ``name``, or None if never created."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name -> instrument snapshot, in sorted-name order."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def to_json(self) -> str:
        """The snapshot as deterministic JSON."""
        return json.dumps(self.snapshot(), indent=1, sort_keys=True)

    def render(self) -> str:
        """Fixed-format text listing of every instrument."""
        lines: List[str] = []
        for name in self.names():
            snap = self._instruments[name].snapshot()
            if snap["type"] == "counter":
                lines.append(f"  {name:<34s} counter    {snap['value']:.6g}")
            elif snap["type"] == "gauge":
                lines.append(
                    f"  {name:<34s} gauge      {snap['value']:.6g} (max {snap['max']:.6g})"
                )
            else:
                lines.append(
                    f"  {name:<34s} histogram  n={snap['count']} mean={snap['mean']:.6g} "
                    f"p99={snap['p99']:.6g} max={snap['max']:.6g}"
                )
        return "\n".join(lines) if lines else "  (no metrics recorded)"
