"""Unified observability layer: virtual-clock tracing + metrics.

The paper's methodology is observability-driven -- the Intel Gaudi
Profiler's HW traces reverse-engineer MME geometry selection
(Section 3.2), and Figures 8/12/15 are utilization/power timelines.
This package gives the simulator the same substrate:

* :mod:`repro.obs.tracer` -- hierarchical spans on the engine's
  virtual clock (request -> iteration -> prefill/decode ->
  kernel/collective), plus counter tracks and instant markers;
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and histograms (KV occupancy, batch size, preemptions,
  MME/TPC busy time, per-step watts);
* :mod:`repro.obs.exporters` -- chrome://tracing JSON, flat JSON, and
  text-summary exporters sharing one schema with the compiled-graph
  profiler (:mod:`repro.tools.profiler`).

Instrumented layers bind these through
:class:`repro.api.RunContext`; unbound, every hook is a cheap no-op.
"""

from repro.obs.exporters import chrome_trace_events, chrome_trace_json, flat_json, text_summary
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    AsyncEvent,
    CounterSample,
    InstantEvent,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "AsyncEvent",
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "flat_json",
    "text_summary",
]
