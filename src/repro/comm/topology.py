"""Intra-node interconnect topologies.

The two server nodes of Table 1 both advertise 300 GB/s of per-device
intra-node bandwidth, but deliver it very differently (Section 2.1);
the difference is the whole story of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec


@dataclass
class FabricHealth:
    """Live fault state of one node's fabric.

    A mutable record shared between a fault injector (which marks
    devices down and links degraded) and the degraded topology views
    below (which read it when pricing collectives).  Link factors are
    the usable fraction of a link's bandwidth: 1.0 healthy, 0.0 down.
    """

    down_devices: Set[int] = field(default_factory=set)
    link_factors: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise ValueError("a link connects two distinct devices")
        return (a, b) if a < b else (b, a)

    def fail_device(self, device: int) -> None:
        self.down_devices.add(device)

    def recover_device(self, device: int) -> None:
        self.down_devices.discard(device)

    def set_link_factor(self, a: int, b: int, factor: float) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ValueError("link factor must be in [0, 1]")
        self.link_factors[self._key(a, b)] = factor

    def restore_link(self, a: int, b: int) -> None:
        self.link_factors.pop(self._key(a, b), None)

    def link_factor(self, a: int, b: int) -> float:
        return self.link_factors.get(self._key(a, b), 1.0)

    def alive(self, num_devices: int) -> int:
        return num_devices - sum(1 for d in self.down_devices if d < num_devices)

    def worst_link_factor(self, num_devices: int, floor: float = 0.0) -> float:
        """Bottleneck factor across links between alive devices.

        ``floor`` substitutes for fully-severed links (factor 0) where
        the fabric can reroute: the degraded views below pass their
        relay residual, so a down link degrades rather than zeroes the
        collective."""
        worst = 1.0
        for (a, b), factor in self.link_factors.items():
            if a >= num_devices or b >= num_devices:
                continue
            if a in self.down_devices or b in self.down_devices:
                continue
            worst = min(worst, factor if factor > 0 else floor)
        return worst

    @property
    def healthy(self) -> bool:
        return not self.down_devices and all(
            f >= 1.0 for f in self.link_factors.values()
        )


class Topology:
    """Common interface for intra-node fabrics."""

    num_devices: int
    base_latency: float

    #: Whether collective costs over this topology are stable for its
    #: lifetime (safe to memoize).  The degraded views below read live
    #: :class:`FabricHealth` state, so they clear this flag.
    cache_static: bool = True

    def validate_participants(self, participants: int) -> None:
        if not 2 <= participants <= self.num_devices:
            raise ValueError(
                f"participants must be in [2, {self.num_devices}], got {participants}"
            )

    def injection_bandwidth(self, participants: int) -> float:
        """Usable per-device egress bandwidth (bytes/s) when
        ``participants`` devices communicate."""
        raise NotImplementedError

    def pair_bandwidth(self, participants: int) -> float:
        """Bandwidth between one pair of participating devices."""
        raise NotImplementedError


@dataclass
class P2PMeshTopology(Topology):
    """HLS-Gaudi-2: direct point-to-point links between every pair.

    Each Gaudi-2 dedicates 21 of its 24 RoCE ports to intra-node
    traffic, three 100 GbE links per peer.  When only ``p`` devices
    participate, each can use just ``3 * (p - 1)`` of its 21 ports --
    the root cause of the linear bus-bandwidth decline in Figure 10.
    """

    num_devices: int = 8
    links_per_pair: int = 3
    link_bandwidth: float = 12.5e9  # 100 GbE in bytes/s
    base_latency: float = GAUDI2_SPEC.interconnect.base_latency

    @classmethod
    def from_spec(cls, spec: DeviceSpec = GAUDI2_SPEC, num_devices: int = 8) -> "P2PMeshTopology":
        ic = spec.interconnect
        return cls(
            num_devices=num_devices,
            links_per_pair=ic.links_per_pair,
            link_bandwidth=ic.link_bandwidth,
            base_latency=ic.base_latency,
        )

    def pair_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return self.links_per_pair * self.link_bandwidth

    def injection_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return (participants - 1) * self.pair_bandwidth(participants)


@dataclass
class SwitchTopology(Topology):
    """DGX A100: an all-to-all NVSwitch.

    Every GPU talks to the switch at the full NVLink bandwidth, so the
    usable bandwidth is independent of how many GPUs participate.
    """

    num_devices: int = 8
    per_device_bandwidth: float = 300e9
    base_latency: float = A100_SPEC.interconnect.base_latency

    @classmethod
    def from_spec(cls, spec: DeviceSpec = A100_SPEC, num_devices: int = 8) -> "SwitchTopology":
        ic = spec.interconnect
        return cls(
            num_devices=num_devices,
            per_device_bandwidth=ic.per_device_bandwidth,
            base_latency=ic.base_latency,
        )

    def pair_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        # A pair can burst at the full injection bandwidth through the
        # switch (no static partitioning across peers).
        return self.per_device_bandwidth

    def injection_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return self.per_device_bandwidth


class DegradedMeshTopology(P2PMeshTopology):
    """A :class:`P2PMeshTopology` viewed through live fault state.

    When devices drop out of the mesh, each survivor can only use the
    ``3 * (alive - 1)`` of its 21 ports that lead to alive peers --
    collectives priced against this view reproduce the Figure 10
    port-count bandwidth cliff as an emergent fault response.  Degraded
    (but up) links gate the synchronous exchange phases at the
    bottleneck link's rate; a fully-severed link relays through an
    alive intermediate peer, paying both hops (half the direct rate).
    """

    #: Residual rate of a fully-down link after 2-hop relay rerouting.
    RELAY_FACTOR = 0.5

    cache_static = False

    def __init__(
        self,
        base: Optional[P2PMeshTopology] = None,
        health: Optional[FabricHealth] = None,
    ) -> None:
        base = base or P2PMeshTopology()
        super().__init__(
            num_devices=base.num_devices,
            links_per_pair=base.links_per_pair,
            link_bandwidth=base.link_bandwidth,
            base_latency=base.base_latency,
        )
        self.health = health if health is not None else FabricHealth()

    def alive_devices(self) -> int:
        return self.health.alive(self.num_devices)

    def pair_bandwidth(self, participants: int) -> float:
        healthy = super().pair_bandwidth(participants)
        return healthy * self.health.worst_link_factor(
            self.num_devices, floor=self.RELAY_FACTOR
        )

    def injection_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return (participants - 1) * self.pair_bandwidth(participants)


class DegradedSwitchTopology(SwitchTopology):
    """A :class:`SwitchTopology` viewed through live fault state.

    The switch isolates survivors from failed peers (usable bandwidth
    stays flat in the participant count), so only degraded uplinks --
    not lost devices -- reduce per-device bandwidth.  A fully-severed
    uplink falls back to spare switch planes at half rate."""

    #: Residual rate of a fully-down uplink via spare switch planes.
    RELAY_FACTOR = 0.5

    cache_static = False

    def __init__(
        self,
        base: Optional[SwitchTopology] = None,
        health: Optional[FabricHealth] = None,
    ) -> None:
        base = base or SwitchTopology()
        super().__init__(
            num_devices=base.num_devices,
            per_device_bandwidth=base.per_device_bandwidth,
            base_latency=base.base_latency,
        )
        self.health = health if health is not None else FabricHealth()

    def alive_devices(self) -> int:
        return self.health.alive(self.num_devices)

    def pair_bandwidth(self, participants: int) -> float:
        healthy = super().pair_bandwidth(participants)
        return healthy * self.health.worst_link_factor(
            self.num_devices, floor=self.RELAY_FACTOR
        )

    def injection_bandwidth(self, participants: int) -> float:
        healthy = super().injection_bandwidth(participants)
        return healthy * self.health.worst_link_factor(
            self.num_devices, floor=self.RELAY_FACTOR
        )
