"""Intra-node interconnect topologies.

The two server nodes of Table 1 both advertise 300 GB/s of per-device
intra-node bandwidth, but deliver it very differently (Section 2.1);
the difference is the whole story of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec


class Topology:
    """Common interface for intra-node fabrics."""

    num_devices: int
    base_latency: float

    def validate_participants(self, participants: int) -> None:
        if not 2 <= participants <= self.num_devices:
            raise ValueError(
                f"participants must be in [2, {self.num_devices}], got {participants}"
            )

    def injection_bandwidth(self, participants: int) -> float:
        """Usable per-device egress bandwidth (bytes/s) when
        ``participants`` devices communicate."""
        raise NotImplementedError

    def pair_bandwidth(self, participants: int) -> float:
        """Bandwidth between one pair of participating devices."""
        raise NotImplementedError


@dataclass
class P2PMeshTopology(Topology):
    """HLS-Gaudi-2: direct point-to-point links between every pair.

    Each Gaudi-2 dedicates 21 of its 24 RoCE ports to intra-node
    traffic, three 100 GbE links per peer.  When only ``p`` devices
    participate, each can use just ``3 * (p - 1)`` of its 21 ports --
    the root cause of the linear bus-bandwidth decline in Figure 10.
    """

    num_devices: int = 8
    links_per_pair: int = 3
    link_bandwidth: float = 12.5e9  # 100 GbE in bytes/s
    base_latency: float = GAUDI2_SPEC.interconnect.base_latency

    @classmethod
    def from_spec(cls, spec: DeviceSpec = GAUDI2_SPEC, num_devices: int = 8) -> "P2PMeshTopology":
        ic = spec.interconnect
        return cls(
            num_devices=num_devices,
            links_per_pair=ic.links_per_pair,
            link_bandwidth=ic.link_bandwidth,
            base_latency=ic.base_latency,
        )

    def pair_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return self.links_per_pair * self.link_bandwidth

    def injection_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return (participants - 1) * self.pair_bandwidth(participants)


@dataclass
class SwitchTopology(Topology):
    """DGX A100: an all-to-all NVSwitch.

    Every GPU talks to the switch at the full NVLink bandwidth, so the
    usable bandwidth is independent of how many GPUs participate.
    """

    num_devices: int = 8
    per_device_bandwidth: float = 300e9
    base_latency: float = A100_SPEC.interconnect.base_latency

    @classmethod
    def from_spec(cls, spec: DeviceSpec = A100_SPEC, num_devices: int = 8) -> "SwitchTopology":
        ic = spec.interconnect
        return cls(
            num_devices=num_devices,
            per_device_bandwidth=ic.per_device_bandwidth,
            base_latency=ic.base_latency,
        )

    def pair_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        # A pair can burst at the full injection bandwidth through the
        # switch (no static partitioning across peers).
        return self.per_device_bandwidth

    def injection_bandwidth(self, participants: int) -> float:
        self.validate_participants(participants)
        return self.per_device_bandwidth
