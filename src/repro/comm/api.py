"""HCCL / NCCL-style collective library facades.

:class:`HcclLibrary` and :class:`NcclLibrary` bind a topology, a
protocol efficiency, and per-operation tuning factors, and report
results in the NCCL tests format the paper uses (algorithm bandwidth
and bus bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import copy

from repro.comm.busbw import bus_bandwidth_factor
from repro.core.memo import CostCache
from repro.comm.collectives import (
    CollectiveOp,
    CollectiveResult,
    collective_time,
    effective_participants,
)
from repro.comm.topology import (
    DegradedMeshTopology,
    DegradedSwitchTopology,
    FabricHealth,
    P2PMeshTopology,
    SwitchTopology,
    Topology,
)

#: Per-operation software efficiency on top of the protocol efficiency.
#: HCCL's direct-exchange kernels are uniformly tuned; NCCL's AlltoAll
#: path (send/recv based) is the one collective the paper's data shows
#: the switch losing its usual edge on.
_DEFAULT_OP_EFFICIENCY_HCCL: Dict[CollectiveOp, float] = {op: 1.0 for op in CollectiveOp}
_DEFAULT_OP_EFFICIENCY_NCCL: Dict[CollectiveOp, float] = {
    **{op: 1.0 for op in CollectiveOp},
    CollectiveOp.ALL_TO_ALL: 0.82,
    CollectiveOp.REDUCE: 0.95,
}


@dataclass(frozen=True)
class CollectiveReport:
    """One row of an ``nccl-tests``-style report."""

    op: CollectiveOp
    size_bytes: float
    participants: int
    time: float
    algorithm_bandwidth: float
    bus_bandwidth: float
    #: Bus bandwidth as a fraction of the node's 300 GB/s per-device cap.
    bus_utilization: float


class CollectiveLibrary:
    """A collective library bound to one topology."""

    #: Nominal per-device bandwidth both servers advertise (Table 1).
    NOMINAL_BANDWIDTH = 300e9

    def __init__(
        self,
        topology: Topology,
        protocol_efficiency: float,
        op_efficiency: Dict[CollectiveOp, float],
        name: str,
    ) -> None:
        self.topology = topology
        self.protocol_efficiency = protocol_efficiency
        self.op_efficiency = dict(op_efficiency)
        self.name = name
        self._run_cache = CostCache(f"comm.{name.lower()}", maxsize=2048)

    def run(self, op: CollectiveOp, size_bytes: float, participants: int) -> CollectiveReport:
        # Degraded topology views price against live fault state, so
        # only static topologies are safe to memoize.
        cacheable = getattr(self.topology, "cache_static", False)
        key = (op, float(size_bytes), participants)
        if cacheable:
            report = self._run_cache.get(key)
            if report is not None:
                return report
        efficiency = self.protocol_efficiency * self.op_efficiency.get(op, 1.0)
        result: CollectiveResult = collective_time(
            op, size_bytes, participants, self.topology, efficiency
        )
        algbw = result.algorithm_bandwidth
        busbw = algbw * bus_bandwidth_factor(op, participants)
        report = CollectiveReport(
            op=op,
            size_bytes=size_bytes,
            participants=participants,
            time=result.time,
            algorithm_bandwidth=algbw,
            bus_bandwidth=busbw,
            bus_utilization=busbw / self.NOMINAL_BANDWIDTH,
        )
        if cacheable:
            self._run_cache.put(key, report)
        return report

    # -- fault awareness ----------------------------------------------
    def with_topology(self, topology: Topology) -> "CollectiveLibrary":
        """The same library (protocol/op tuning intact) rebound to
        another topology, e.g. a degraded view of the original."""
        other = copy.copy(self)
        other.topology = topology
        other.op_efficiency = dict(self.op_efficiency)
        # A shallow copy would share the memo across topologies.
        other._run_cache = CostCache(f"comm.{self.name.lower()}", maxsize=2048)
        return other

    def degraded(self, health: FabricHealth) -> "CollectiveLibrary":
        """Rebind onto a fault-state view of the current topology."""
        if isinstance(self.topology, P2PMeshTopology):
            return self.with_topology(DegradedMeshTopology(self.topology, health))
        if isinstance(self.topology, SwitchTopology):
            return self.with_topology(DegradedSwitchTopology(self.topology, health))
        raise TypeError(f"unsupported topology {type(self.topology).__name__}")

    def alive_participants(self, requested: int) -> int:
        """Participants actually reachable on the bound topology."""
        return effective_participants(self.topology, requested)

    # Convenience wrappers matching the library APIs.
    def all_reduce(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.ALL_REDUCE, size_bytes, participants)

    def all_gather(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.ALL_GATHER, size_bytes, participants)

    def reduce_scatter(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.REDUCE_SCATTER, size_bytes, participants)

    def all_to_all(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.ALL_TO_ALL, size_bytes, participants)

    def reduce(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.REDUCE, size_bytes, participants)

    def broadcast(self, size_bytes: float, participants: int) -> CollectiveReport:
        return self.run(CollectiveOp.BROADCAST, size_bytes, participants)


class HcclLibrary(CollectiveLibrary):
    """Intel's Habana Collective Communications Library on the P2P mesh."""

    def __init__(self, topology: P2PMeshTopology | None = None) -> None:
        super().__init__(
            topology=topology or P2PMeshTopology(),
            protocol_efficiency=0.87,
            op_efficiency=_DEFAULT_OP_EFFICIENCY_HCCL,
            name="HCCL",
        )


class NcclLibrary(CollectiveLibrary):
    """NVIDIA's NCCL over NVSwitch."""

    def __init__(self, topology: SwitchTopology | None = None) -> None:
        super().__init__(
            topology=topology or SwitchTopology(),
            protocol_efficiency=0.76,
            op_efficiency=_DEFAULT_OP_EFFICIENCY_NCCL,
            name="NCCL",
        )
