"""Collective-communication algorithms on both fabrics.

Each algorithm estimates the completion time of one collective over
``participants`` devices moving ``size`` bytes per device.  Two
algorithm families are modelled:

* **Full-mesh direct exchange** (HCCL on the P2P mesh): every device
  exchanges shards with all peers simultaneously over its direct
  links.  Few steps, but the usable bandwidth is only the links to the
  participating peers.
* **Ring** (NCCL on NVSwitch): the classic ``(n-1)``- or
  ``2(n-1)``-step rings running at full injection bandwidth.

Small transfers are dominated by the per-step base latency, which is
what bends the curves of Figure 10 at 2 KB-128 KB sizes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.comm.topology import P2PMeshTopology, SwitchTopology, Topology


class CollectiveOp(enum.Enum):
    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"
    REDUCE = "reduce"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class CollectiveResult:
    """Timing of one collective operation."""

    op: CollectiveOp
    size_bytes: float
    participants: int
    time: float
    steps: int

    @property
    def algorithm_bandwidth(self) -> float:
        return self.size_bytes / self.time if self.time > 0 else 0.0


def _mesh_phases(op: CollectiveOp) -> float:
    """Effective number of full-mesh exchange phases for one collective.

    AllReduce's reduce-scatter and all-gather phases run back to back
    but each at full mesh bandwidth, hence 2.  Reduce is a two-phase
    (reduce-scatter, then gather-to-root) algorithm whose phases
    chunk-pipeline -- each reduced chunk is forwarded to the root while
    the next is still being reduced -- leaving only a pipeline-fill
    remainder.  Broadcast cannot pipeline the same way: the
    scatter-from-root phase must finish before peers can re-exchange,
    and the root's egress duplicates every byte, so it pays both phases
    in full (this is the one collective where the paper's data shows
    the NVSwitch system keeping its edge at 8 devices).
    """
    if op is CollectiveOp.ALL_REDUCE:
        return 2.0  # reduce-scatter + all-gather
    if op is CollectiveOp.REDUCE:
        return 1.15  # chunk-pipelined reduce-scatter + gather-to-root
    if op is CollectiveOp.BROADCAST:
        return 2.0  # scatter-from-root, then all-gather among peers
    return 1.0  # all-gather / reduce-scatter / all-to-all: one exchange


def mesh_collective_time(
    op: CollectiveOp,
    size_bytes: float,
    participants: int,
    topology: P2PMeshTopology,
    efficiency: float = 1.0,
) -> CollectiveResult:
    """Full-mesh direct-exchange algorithm on the P2P topology.

    Every phase moves one ``size / n`` shard per peer over that peer's
    dedicated links, so phase time is ``(size / n) / pair_bw``.
    """
    topology.validate_participants(participants)
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    n = participants
    pair_bw = topology.pair_bandwidth(n) * efficiency
    phases = _mesh_phases(op)
    shard = size_bytes / n
    time = phases * (shard / pair_bw + topology.base_latency)
    return CollectiveResult(op, size_bytes, n, time, steps=math.ceil(phases))


def ring_collective_time(
    op: CollectiveOp,
    size_bytes: float,
    participants: int,
    topology: SwitchTopology,
    efficiency: float = 1.0,
) -> CollectiveResult:
    """Ring algorithms through the all-to-all switch."""
    topology.validate_participants(participants)
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    n = participants
    inj = topology.injection_bandwidth(n) * efficiency
    if op is CollectiveOp.ALL_REDUCE:
        steps = 2 * (n - 1)
        volume = 2.0 * size_bytes * (n - 1) / n
    elif op in (CollectiveOp.ALL_GATHER, CollectiveOp.REDUCE_SCATTER, CollectiveOp.ALL_TO_ALL):
        steps = n - 1
        volume = size_bytes * (n - 1) / n
    elif op in (CollectiveOp.REDUCE, CollectiveOp.BROADCAST):
        # Pipelined chain through the switch: near-full injection rate.
        steps = n - 1
        volume = size_bytes
    else:
        raise ValueError(f"unknown collective op {op!r}")
    time = volume / inj + steps * topology.base_latency
    return CollectiveResult(op, size_bytes, n, time, steps=steps)


def collective_time(
    op: CollectiveOp,
    size_bytes: float,
    participants: int,
    topology: Topology,
    efficiency: float = 1.0,
    metrics=None,
) -> CollectiveResult:
    """Dispatch to the algorithm family matching the topology.

    With a :class:`~repro.obs.metrics.MetricsRegistry` passed as
    ``metrics``, the call is counted under ``collectives.*`` (per-op
    call counts, bytes moved, and a seconds histogram).
    """
    if isinstance(topology, P2PMeshTopology):
        result = mesh_collective_time(op, size_bytes, participants, topology, efficiency)
    elif isinstance(topology, SwitchTopology):
        result = ring_collective_time(op, size_bytes, participants, topology, efficiency)
    else:
        raise TypeError(f"unsupported topology {type(topology).__name__}")
    record_collective(result, metrics)
    return result


def record_collective(result: CollectiveResult, metrics) -> None:
    """Account one collective in the metrics registry (None = no-op)."""
    if metrics is None:
        return
    metrics.counter(f"collectives.{result.op.value}.calls").inc()
    metrics.counter(f"collectives.{result.op.value}.bytes").inc(result.size_bytes)
    metrics.histogram("collectives.seconds").observe(result.time)


def effective_participants(topology: Topology, requested: int) -> int:
    """Clamp a collective's participant count to the alive devices.

    Degraded topology views expose :meth:`alive_devices`; healthy
    topologies run with all requested participants."""
    alive = getattr(topology, "alive_devices", None)
    if alive is None:
        return requested
    return min(requested, alive())


def degraded_collective_time(
    op: CollectiveOp,
    size_bytes: float,
    participants: int,
    topology: Topology,
    efficiency: float = 1.0,
    metrics=None,
) -> CollectiveResult:
    """Collective over whatever subset of ``participants`` is still up.

    With fewer than two survivors there is nothing to exchange: the
    result is a zero-time, zero-step collective (not counted in
    ``metrics`` -- no bytes moved).
    """
    alive = effective_participants(topology, participants)
    if alive < 2:
        return CollectiveResult(op, size_bytes, max(alive, 0), 0.0, steps=0)
    return collective_time(op, size_bytes, alive, topology, efficiency, metrics)
