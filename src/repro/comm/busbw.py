"""NCCL bus-bandwidth reporting conventions.

The paper reports collective performance as *bus bandwidth* "suggested
by NCCL" (Section 3.4), which normalizes the algorithm bandwidth
``algbw = size / time`` by a per-operation factor so results are
comparable to the hardware's link bandwidth:

==============  =================
operation       busbw / algbw
==============  =================
AllReduce       ``2 (n-1) / n``
AllGather       ``(n-1) / n``
ReduceScatter   ``(n-1) / n``
AlltoAll        ``(n-1) / n``
Reduce          ``1``
Broadcast       ``1``
==============  =================
"""

from __future__ import annotations

from repro.comm.collectives import CollectiveOp


def bus_bandwidth_factor(op: CollectiveOp, participants: int) -> float:
    """busbw / algbw conversion factor per the NCCL tests convention."""
    if participants < 2:
        raise ValueError("collectives need at least 2 participants")
    n = participants
    if op is CollectiveOp.ALL_REDUCE:
        return 2.0 * (n - 1) / n
    if op in (CollectiveOp.ALL_GATHER, CollectiveOp.REDUCE_SCATTER, CollectiveOp.ALL_TO_ALL):
        return (n - 1) / n
    if op in (CollectiveOp.REDUCE, CollectiveOp.BROADCAST):
        return 1.0
    raise ValueError(f"unknown collective op {op!r}")
