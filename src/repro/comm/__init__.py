"""Interconnect and collective-communication models.

Models the two intra-node fabrics the paper contrasts in Section 3.4:

* the HLS-Gaudi-2 server's **P2P full mesh** -- each pair of the eight
  Gaudi-2 chips is wired with three 100 GbE RoCE links, so the usable
  injection bandwidth scales with the number of *participating*
  devices; and
* the DGX A100's **NVSwitch** -- every GPU gets its full 300 GB/s to
  the switch regardless of how many GPUs participate.

On top of the topologies, :mod:`repro.comm.collectives` implements the
six collective operations of Figure 10 with the algorithms each
library uses (full-mesh one-step exchanges for HCCL, rings for NCCL),
and :mod:`repro.comm.busbw` applies the NCCL bus-bandwidth reporting
conventions the paper adopts.
"""

from repro.comm.api import CollectiveLibrary, HcclLibrary, NcclLibrary
from repro.comm.busbw import bus_bandwidth_factor
from repro.comm.collectives import (
    CollectiveOp,
    CollectiveResult,
    degraded_collective_time,
    effective_participants,
)
from repro.comm.topology import (
    DegradedMeshTopology,
    DegradedSwitchTopology,
    FabricHealth,
    P2PMeshTopology,
    SwitchTopology,
    Topology,
)

__all__ = [
    "CollectiveLibrary",
    "CollectiveOp",
    "CollectiveResult",
    "DegradedMeshTopology",
    "DegradedSwitchTopology",
    "FabricHealth",
    "HcclLibrary",
    "NcclLibrary",
    "P2PMeshTopology",
    "SwitchTopology",
    "Topology",
    "bus_bandwidth_factor",
    "degraded_collective_time",
    "effective_participants",
]
