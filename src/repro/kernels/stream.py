"""STREAM microbenchmarks: ADD, SCALE, TRIAD (Algorithm 1, Figure 8).

On Gaudi the kernels are built with the TPC-C DSL and run through the
VLIW pipeline simulator, so access granularity and unroll factor have
exactly the effects Section 3.2 documents.  On the A100 the CUDA analog
is used.  Each kernel also carries a numpy functional implementation so
correctness is testable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.api.compat import positional_shim
from repro.cuda import CudaLauncher
from repro.hw.device import Device
from repro.hw.spec import DType
from repro.tpc import TpcKernelBuilder, TpcLauncher
from repro.tpc.builder import MAX_ACCESS_BYTES
from repro.tpc.isa import Opcode
from repro.tpc import intrinsics

#: Default element count used throughout Figure 8 (24 million scalars).
DEFAULT_NUM_ELEMENTS = 24_000_000


class StreamOp(enum.Enum):
    """The three STREAM kernels of Algorithm 1."""

    ADD = "add"        # c[i] = a[i] + b[i]
    SCALE = "scale"    # b[i] = scalar * a[i]
    TRIAD = "triad"    # c[i] = scalar * a[i] + b[i]

    @property
    def flops_per_element(self) -> int:
        return 2 if self is StreamOp.TRIAD else 1

    @property
    def arrays_read(self) -> int:
        return 1 if self is StreamOp.SCALE else 2

    @property
    def arrays_written(self) -> int:
        return 1

    @property
    def num_streams(self) -> int:
        return self.arrays_read + self.arrays_written

    def bytes_per_element(self, dtype: DType) -> int:
        return self.num_streams * dtype.itemsize

    @property
    def uses_fma(self) -> bool:
        return self is StreamOp.TRIAD


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one STREAM kernel run."""

    op: StreamOp
    device: str
    num_elements: int
    access_bytes: int
    unroll: int
    num_cores: int
    time: float
    achieved_gflops: float
    achieved_bandwidth: float
    bandwidth_utilization: float
    bottleneck: str


def _functional(op: StreamOp, scalar: float = 3.0) -> Callable[..., np.ndarray]:
    if op is StreamOp.ADD:
        return lambda a, b: intrinsics.v_add(a, b)
    if op is StreamOp.SCALE:
        return lambda a: intrinsics.v_mul(np.asarray(a), np.float32(scalar))
    return lambda a, b: intrinsics.v_mac(np.asarray(b), np.asarray(a), np.float32(scalar))


def reference_result(op: StreamOp, a: np.ndarray, b: Optional[np.ndarray] = None,
                     scalar: float = 3.0) -> np.ndarray:
    """Numpy reference semantics of a STREAM kernel."""
    fn = _functional(op, scalar)
    if op is StreamOp.SCALE:
        return fn(a)
    if b is None:
        raise ValueError(f"{op.value} needs two input arrays")
    return fn(a, b)


def _gaudi_stream(
    device: Device,
    op: StreamOp,
    num_elements: int,
    access_bytes: int,
    unroll: int,
    num_tpcs: Optional[int],
    dtype: DType,
    compute_chain: int,
) -> StreamResult:
    """Build and launch the TPC-C STREAM kernel."""
    elements_per_access = max(1, access_bytes // dtype.itemsize)

    def body(b: TpcKernelBuilder) -> None:
        chunks = max(1, math.ceil(access_bytes / MAX_ACCESS_BYTES))
        for _ in range(chunks):
            chunk_bytes = min(access_bytes, MAX_ACCESS_BYTES)
            if op is StreamOp.SCALE:
                x = b.load_tensor("a", access_bytes=chunk_bytes)
                acc = b.vec(Opcode.MUL, x)
                for _ in range(compute_chain - 1):
                    acc = b.vec(Opcode.MUL, acc)
                b.store_tensor("b", acc, access_bytes=chunk_bytes)
            elif op is StreamOp.ADD:
                x = b.load_tensor("a", access_bytes=chunk_bytes)
                y = b.load_tensor("b", access_bytes=chunk_bytes)
                acc = b.vec(Opcode.ADD, x, y)
                for _ in range(compute_chain - 1):
                    acc = b.vec(Opcode.ADD, acc, acc)
                b.store_tensor("c", acc, access_bytes=chunk_bytes)
            else:
                x = b.load_tensor("a", access_bytes=chunk_bytes)
                y = b.load_tensor("b", access_bytes=chunk_bytes)
                # v_mac accumulating into the b-vector: c = scale*a + b.
                acc = b.vec_into(Opcode.MAC, y, x)
                for _ in range(compute_chain - 1):
                    acc = b.vec_into(Opcode.MAC, acc, x, y)
                b.store_tensor("c", acc, access_bytes=chunk_bytes)

    iterations = max(1, math.ceil(num_elements / elements_per_access))
    kernel = TpcKernelBuilder(f"{op.value}_tpc", dtype=dtype).build_loop(
        body, iterations=iterations, unroll=unroll, functional=_functional(op)
    )
    launcher = TpcLauncher(device.spec)
    launch = launcher.launch(kernel, num_tpcs=num_tpcs)

    useful_flops = float(num_elements) * op.flops_per_element * compute_chain
    useful_bytes = float(num_elements) * op.bytes_per_element(dtype)
    busy = launch.time - launch.launch_overhead
    cores = num_tpcs if num_tpcs is not None else device.spec.vector.num_cores
    return StreamResult(
        op=op,
        device=device.name,
        num_elements=num_elements,
        access_bytes=access_bytes,
        unroll=unroll,
        num_cores=cores,
        time=launch.time,
        achieved_gflops=useful_flops / busy / 1e9,
        achieved_bandwidth=useful_bytes / busy,
        bandwidth_utilization=(useful_bytes / busy) / device.peak_bandwidth,
        bottleneck=launch.bottleneck,
    )


def _cuda_stream(
    device: Device,
    op: StreamOp,
    num_elements: int,
    num_sms: Optional[int],
    dtype: DType,
    compute_chain: int,
) -> StreamResult:
    launcher = CudaLauncher(device.spec)
    result = launcher.launch_stream(
        name=f"{op.value}_cuda",
        num_elements=num_elements,
        flops_per_element=op.flops_per_element * compute_chain,
        bytes_per_element=op.bytes_per_element(dtype),
        dtype=dtype,
        uses_fma=op.uses_fma,
        num_streams=op.num_streams,
        num_sms=num_sms,
    )
    useful_bytes = float(num_elements) * op.bytes_per_element(dtype)
    busy = result.time - result.launch_overhead
    cores = num_sms if num_sms is not None else device.spec.vector.num_cores
    return StreamResult(
        op=op,
        device=device.name,
        num_elements=num_elements,
        access_bytes=device.spec.memory.min_access_bytes,
        unroll=1,
        num_cores=cores,
        time=result.time,
        achieved_gflops=result.achieved_flops / 1e9,
        achieved_bandwidth=useful_bytes / busy,
        bandwidth_utilization=(useful_bytes / busy) / device.peak_bandwidth,
        bottleneck=result.bottleneck,
    )


@positional_shim(
    "device", "op", "num_elements", "access_bytes", "unroll",
    "num_cores", "dtype", "compute_chain",
)
def run_stream(
    *,
    device: Optional[Device] = None,
    op: StreamOp,
    num_elements: int = DEFAULT_NUM_ELEMENTS,
    access_bytes: int = MAX_ACCESS_BYTES,
    unroll: int = 1,
    num_cores: Optional[int] = None,
    dtype: DType = DType.BF16,
    compute_chain: int = 1,
    ctx=None,
) -> StreamResult:
    """Run one STREAM kernel on a device model.

    ``compute_chain`` repeats the arithmetic per loaded element to raise
    operational intensity, as in the Figure 8(d-f) sweep.  With a
    :class:`~repro.api.RunContext` passed as ``ctx``, its device is the
    default and the kernel is recorded as a sequential ``kernel`` span
    plus ``kernels.stream.*`` metrics.
    """
    if ctx is not None:
        device = ctx.resolve_device(device)
    if device is None:
        raise TypeError("run_stream() needs device= (or a ctx with a default device)")
    if num_elements <= 0:
        raise ValueError("num_elements must be positive")
    if compute_chain <= 0:
        raise ValueError("compute_chain must be positive")
    family = getattr(device, "family", "")
    if family == "gaudi":
        result = _gaudi_stream(
            device, op, num_elements, access_bytes, unroll, num_cores, dtype,
            compute_chain,
        )
    elif family == "cuda":
        result = _cuda_stream(device, op, num_elements, num_cores, dtype, compute_chain)
    else:
        raise TypeError(f"unsupported device {device!r} (family {family!r})")
    if ctx is not None:
        if ctx.tracer is not None:
            ctx.tracer.record_sequential(
                f"stream.{op.value}", "kernel", result.time,
                device=device.name, num_elements=num_elements, unroll=unroll,
            )
        if ctx.metrics is not None:
            ctx.metrics.counter("kernels.stream.calls").inc()
            ctx.metrics.histogram("kernels.stream.seconds").observe(result.time)
    return result
