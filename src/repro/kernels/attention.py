"""Dense attention cost models.

Two implementations are modelled, matching the serving backends of
Section 3.5:

* **FlashAttention** on A100 (TensorRT-LLM / vLLM kernels): one fused
  CUDA kernel that never materializes the score matrix, using Tensor
  Cores and SIMD cores together inside the kernel (the WMMA capability
  of Figure 2(b)).
* **FusedSDPA** on Gaudi-2: the SDK's fused scaled-dot-product
  attention.  Because TPC-C kernels cannot drive the MME, the fusion is
  graph-compiler-level pipelining of the QK^T GEMM, softmax, and PV
  GEMM, staged through on-chip SRAM -- functionally equivalent,
  slightly less efficient, and spilling a fraction of the score matrix
  for long sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import A100Device, Device, Gaudi2Device
from repro.hw.spec import DType

#: Fraction of matrix-engine peak a fused attention kernel sustains.
#: These are the per-backend ``attention_efficiency`` class attributes;
#: kept as module constants for backwards compatibility.
_FLASH_EFFICIENCY_A100 = A100Device.attention_efficiency
_FUSED_SDPA_EFFICIENCY_GAUDI = Gaudi2Device.attention_efficiency

#: Fraction of the score matrix FusedSDPA spills through HBM when the
#: working set exceeds the SRAM slice (graph-compiler staging).
_SDPA_SPILL_FRACTION = 0.12


@dataclass(frozen=True)
class AttentionConfig:
    """One attention call (self-attention within a decoder layer)."""

    batch: int
    q_heads: int
    kv_heads: int
    head_dim: int
    seq_q: int
    seq_kv: int
    dtype: DType = DType.BF16
    causal: bool = True

    def __post_init__(self) -> None:
        for name in ("batch", "q_heads", "kv_heads", "head_dim", "seq_q", "seq_kv"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.q_heads % self.kv_heads != 0:
            raise ValueError("q_heads must be a multiple of kv_heads (GQA)")

    @property
    def flops(self) -> float:
        """QK^T and PV GEMM FLOPs (softmax excluded)."""
        pair_fraction = 0.5 if (self.causal and self.seq_q == self.seq_kv) else 1.0
        return (
            4.0
            * self.batch
            * self.q_heads
            * self.seq_q
            * self.seq_kv
            * self.head_dim
            * pair_fraction
        )

    @property
    def qo_bytes(self) -> float:
        return (
            2.0 * self.batch * self.q_heads * self.seq_q * self.head_dim
            * self.dtype.itemsize
        )

    @property
    def kv_bytes(self) -> float:
        return (
            2.0 * self.batch * self.kv_heads * self.seq_kv * self.head_dim
            * self.dtype.itemsize
        )

    @property
    def score_bytes(self) -> float:
        return (
            self.batch * self.q_heads * self.seq_q * self.seq_kv
            * self.dtype.itemsize
        )


@dataclass(frozen=True)
class AttentionResult:
    """Timing of one attention call."""

    kernel: str
    config: AttentionConfig
    time: float
    compute_time: float
    memory_time: float
    memory_bound: bool


def flash_attention_time(device: Device, config: AttentionConfig) -> AttentionResult:
    """FlashAttention-style fused kernel on a CUDA-family device."""
    peak = device.spec.matrix.peak(config.dtype)
    compute = config.flops / (peak * device.attention_efficiency)
    traffic = config.qo_bytes + config.kv_bytes
    bw = device.spec.memory.bandwidth * device.spec.memory.stream_efficiency
    memory = traffic / bw
    time = max(compute, memory) + device.spec.kernel_launch_overhead
    return AttentionResult(
        kernel="flash-attention",
        config=config,
        time=time,
        compute_time=compute,
        memory_time=memory,
        memory_bound=memory > compute,
    )


def fused_sdpa_time(device: Device, config: AttentionConfig) -> AttentionResult:
    """Gaudi's FusedSDPA (graph-compiler-fused attention)."""
    peak = device.spec.matrix.peak(config.dtype)
    compute = config.flops / (peak * device.attention_efficiency)
    score_slice = config.batch * config.q_heads * min(config.seq_q, 512) * config.seq_kv
    spills = score_slice * config.dtype.itemsize > device.spec.memory.sram_bytes
    traffic = config.qo_bytes + config.kv_bytes
    if spills:
        traffic += 2.0 * _SDPA_SPILL_FRACTION * config.score_bytes
    bw = device.spec.memory.bandwidth * device.spec.memory.stream_efficiency
    memory = traffic / bw
    time = max(compute, memory) + device.spec.kernel_launch_overhead
    return AttentionResult(
        kernel="fused-sdpa",
        config=config,
        time=time,
        compute_time=compute,
        memory_time=memory,
        memory_bound=memory > compute,
    )


def attention_time(device: Device, config: AttentionConfig) -> AttentionResult:
    """Dispatch to the device's fused attention implementation.

    ``AttentionConfig`` is frozen and hashable, so the result memoizes
    on the device's shape-keyed cache.
    """
    family = getattr(device, "family", "")
    if family == "gaudi":
        impl = fused_sdpa_time
    elif family == "cuda":
        impl = flash_attention_time
    else:
        raise TypeError(f"unsupported device {device!r} (family {family!r})")
    result = device._attention_cache.get(config)
    if result is not None:
        return result
    result = impl(device, config)
    device._attention_cache.put(config, result)
    return result
