"""Element-wise operator cost helpers.

Model graphs (DLRM, Llama) need costs for activations, bias adds,
normalization, and residual sums.  These are vector-engine ops on
either platform; the helpers below produce the ``(compute_time,
input_bytes, output_bytes)`` triple a :class:`repro.graph.ir.Op`
carries, plus numpy semantics for tests.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.memo import CostCache
from repro.hw.spec import DeviceSpec, DType
from repro.hw.vector_unit import VectorUnitModel


@dataclass(frozen=True)
class ElementwiseCost:
    """Cost triple for one element-wise op."""

    compute_time: float
    input_bytes: float
    output_bytes: float


# DeviceSpec nests dicts (per-dtype peaks), so it is not hashable; the
# per-spec cache is keyed on object identity, with a finalizer dropping
# the slot when the spec is collected (identity keys are only safe
# while the object is alive).
_COST_CACHES: Dict[int, CostCache] = {}


def _cache_for(spec: DeviceSpec) -> CostCache:
    cache = _COST_CACHES.get(id(spec))
    if cache is None:
        cache = CostCache(f"kernels.elementwise[{spec.name}]")
        _COST_CACHES[id(spec)] = cache
        weakref.finalize(spec, _COST_CACHES.pop, id(spec), None)
    return cache


def elementwise_cost(
    spec: DeviceSpec,
    num_elements: int,
    flops_per_element: float = 1.0,
    num_inputs: int = 1,
    dtype: DType = DType.BF16,
    uses_fma: bool = False,
) -> ElementwiseCost:
    """Cost of an element-wise op over ``num_elements`` outputs."""
    if num_elements < 0 or num_inputs < 1:
        raise ValueError("num_elements must be >= 0 and num_inputs >= 1")
    cache = _cache_for(spec)
    key = (num_elements, flops_per_element, num_inputs, dtype, uses_fma)
    cost = cache.get(key)
    if cost is not None:
        return cost
    vector = VectorUnitModel(spec.vector)
    compute = vector.elementwise_time(num_elements, flops_per_element, dtype, uses_fma)
    itemsize = dtype.itemsize
    cost = ElementwiseCost(
        compute_time=compute,
        input_bytes=float(num_elements) * itemsize * num_inputs,
        output_bytes=float(num_elements) * itemsize,
    )
    cache.put(key, cost)
    return cost


def activation_cost(spec: DeviceSpec, num_elements: int, dtype: DType = DType.BF16) -> ElementwiseCost:
    """SiLU/GELU-style activation: ~4 vector ops per element."""
    return elementwise_cost(spec, num_elements, flops_per_element=4.0, dtype=dtype)


def layernorm_cost(spec: DeviceSpec, num_elements: int, dtype: DType = DType.BF16) -> ElementwiseCost:
    """RMSNorm/LayerNorm: ~6 vector ops per element (two passes fused)."""
    return elementwise_cost(spec, num_elements, flops_per_element=6.0, dtype=dtype)


# -- functional semantics ------------------------------------------------
def silu(x: np.ndarray) -> np.ndarray:
    """SiLU activation, ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU activation."""
    return np.maximum(np.asarray(x), 0.0)


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """RMS normalization over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    scale = np.sqrt((x * x).mean(axis=-1, keepdims=True) + eps)
    return x / scale * np.asarray(weight)
