"""Kernel library: the operations the paper benchmarks.

Every kernel runs against either device model through a common
interface:

* :mod:`repro.kernels.gemm` -- GEMM execution + roofline points (Figures 4, 5, 7).
* :mod:`repro.kernels.stream` -- STREAM ADD/SCALE/TRIAD on TPC-C and CUDA (Figure 8).
* :mod:`repro.kernels.gather_scatter` -- GUPS-style vector gather/scatter (Figure 9).
* :mod:`repro.kernels.embedding` -- embedding-lookup operators: Gaudi SDK
  baseline, custom SingleTable, BatchedTable, and A100 FBGEMM (Figure 15).
* :mod:`repro.kernels.attention` -- dense attention cost models
  (FlashAttention / FusedSDPA).
* :mod:`repro.kernels.paged_attention` -- the vLLM PagedAttention
  implementations: BlockTable-based baseline vs BlockList-based
  optimized (Figures 16, 17).
* :mod:`repro.kernels.elementwise` / :mod:`repro.kernels.softmax` --
  supporting ops used by the model graphs.
"""

from repro.kernels.gemm import GemmPoint, run_gemm, sweep_square, sweep_irregular
from repro.kernels.stream import StreamOp, StreamResult, run_stream
from repro.kernels.gather_scatter import GatherScatterResult, run_gather_scatter

__all__ = [
    "GatherScatterResult",
    "GemmPoint",
    "StreamOp",
    "StreamResult",
    "run_gather_scatter",
    "run_gemm",
    "run_stream",
    "sweep_irregular",
    "sweep_square",
]
