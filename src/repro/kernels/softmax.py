"""Softmax cost model and functional semantics.

Softmax is the canonical TPC (vector-engine) op sandwiched between the
two attention GEMMs; its cost structure (max, exp, sum, divide: ~5
vector ops per element over two passes) is what the MME/TPC pipeliner
overlaps with the GEMMs.
"""

from __future__ import annotations

import numpy as np

from repro.hw.spec import DeviceSpec, DType
from repro.kernels.elementwise import ElementwiseCost, elementwise_cost


def softmax_cost(
    spec: DeviceSpec, num_elements: int, dtype: DType = DType.BF16
) -> ElementwiseCost:
    """Cost of a row-wise softmax over ``num_elements`` scores."""
    return elementwise_cost(spec, num_elements, flops_per_element=5.0, dtype=dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (functional reference)."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)
