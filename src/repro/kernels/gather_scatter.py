"""GUPS-style vector gather/scatter microbenchmarks (Figure 9).

A 2-D array of 4 million vectors (16 B - 2,048 B each) is read from or
written to at random locations.  On Gaudi the benchmark is a TPC-C
kernel built around ``ld_g``/``st_g``; on the A100 it is the CUDA
gather analog.  The x-axis of Figure 9 -- the fraction of the 4M
vectors touched -- matters on the A100 because a small-enough working
set becomes L2-resident; Gaudi's SRAM is software-managed and gives no
such transparent-locality benefit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api.compat import positional_shim
from repro.cuda import CudaLauncher
from repro.hw.device import Device
from repro.tpc import TpcKernelBuilder, TpcLauncher
from repro.tpc import intrinsics

#: Total vectors in the 2-D array (Figure 9).
DEFAULT_NUM_VECTORS = 4_000_000

#: Concurrent gather/scatter slots per loop trip in the TPC kernel
#: (the unroll factor the paper's best practice recommends).
_TPC_UNROLL = 4


@dataclass(frozen=True)
class GatherScatterResult:
    """Outcome of one gather or scatter run."""

    device: str
    is_scatter: bool
    vector_bytes: int
    fraction_accessed: float
    num_accesses: int
    time: float
    useful_bytes: float
    bandwidth_utilization: float


def reference_gather(table: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Functional semantics (for correctness tests)."""
    return intrinsics.v_gather(table, indices)


def reference_scatter(table: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Functional scatter semantics (for correctness tests)."""
    return intrinsics.v_scatter(table, indices, rows)


def _gaudi_gather_scatter(
    device: Device,
    vector_bytes: int,
    num_accesses: int,
    is_scatter: bool,
    working_set: float,
) -> GatherScatterResult:
    def body(b: TpcKernelBuilder) -> None:
        for slot in range(_TPC_UNROLL):
            if is_scatter:
                b.scatter("table", source=f"payload{slot}", access_bytes=vector_bytes)
            else:
                b.gather("table", access_bytes=vector_bytes)

    trips = max(1, math.ceil(num_accesses / _TPC_UNROLL))
    kernel = TpcKernelBuilder("gather_scatter").build_loop(body, iterations=trips)
    launcher = TpcLauncher(device.spec)
    launch = launcher.launch(kernel, working_set_bytes=working_set)

    # Sub-granule scatters read-modify-write whole granules, doubling
    # the chip-level traffic relative to the gather accounting.
    if is_scatter and vector_bytes < device.spec.memory.min_access_bytes:
        busy = max(launch.compute_time, launch.port_time, 2 * launch.hbm_time)
        time = busy + launch.launch_overhead
    else:
        time = launch.time
    useful = float(num_accesses) * vector_bytes
    busy = time - launch.launch_overhead
    return GatherScatterResult(
        device=device.name,
        is_scatter=is_scatter,
        vector_bytes=vector_bytes,
        fraction_accessed=0.0,
        num_accesses=num_accesses,
        time=time,
        useful_bytes=useful,
        bandwidth_utilization=(useful / busy) / device.peak_bandwidth,
    )


def _cuda_gather_scatter(
    device: Device,
    vector_bytes: int,
    num_accesses: int,
    is_scatter: bool,
    working_set: float,
) -> GatherScatterResult:
    launcher = CudaLauncher(device.spec)
    result = launcher.launch_gather(
        name="scatter_cuda" if is_scatter else "gather_cuda",
        num_accesses=num_accesses,
        access_bytes=vector_bytes,
        is_write=is_scatter,
        working_set_bytes=working_set,
        parallel_accesses=num_accesses,
    )
    busy = result.time - result.launch_overhead
    return GatherScatterResult(
        device=device.name,
        is_scatter=is_scatter,
        vector_bytes=vector_bytes,
        fraction_accessed=0.0,
        num_accesses=num_accesses,
        time=result.time,
        useful_bytes=result.useful_bytes,
        bandwidth_utilization=(result.useful_bytes / busy) / device.peak_bandwidth,
    )


@positional_shim(
    "device", "vector_bytes", "fraction_accessed", "num_vectors", "is_scatter"
)
def run_gather_scatter(
    *,
    device: Optional[Device] = None,
    vector_bytes: int,
    fraction_accessed: float = 1.0,
    num_vectors: int = DEFAULT_NUM_VECTORS,
    is_scatter: bool = False,
    ctx=None,
) -> GatherScatterResult:
    """Run the Figure 9 microbenchmark on a device model.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, its device
    is the default and the kernel is recorded as a sequential
    ``kernel`` span plus ``kernels.gather_scatter.*`` metrics.
    """
    if ctx is not None:
        device = ctx.resolve_device(device)
    if device is None:
        raise TypeError(
            "run_gather_scatter() needs device= (or a ctx with a default device)"
        )
    if vector_bytes <= 0:
        raise ValueError("vector_bytes must be positive")
    if not 0.0 < fraction_accessed <= 1.0:
        raise ValueError("fraction_accessed must be in (0, 1]")
    num_accesses = max(1, int(round(fraction_accessed * num_vectors)))
    working_set = float(num_accesses) * vector_bytes
    family = getattr(device, "family", "")
    if family == "gaudi":
        result = _gaudi_gather_scatter(
            device, vector_bytes, num_accesses, is_scatter, working_set
        )
    elif family == "cuda":
        result = _cuda_gather_scatter(
            device, vector_bytes, num_accesses, is_scatter, working_set
        )
    else:
        raise TypeError(f"unsupported device {device!r} (family {family!r})")
    if ctx is not None:
        if ctx.tracer is not None:
            ctx.tracer.record_sequential(
                "scatter" if is_scatter else "gather", "kernel", result.time,
                device=device.name, vector_bytes=vector_bytes,
                num_accesses=result.num_accesses,
            )
        if ctx.metrics is not None:
            ctx.metrics.counter("kernels.gather_scatter.calls").inc()
            ctx.metrics.histogram("kernels.gather_scatter.seconds").observe(result.time)
    return GatherScatterResult(
        device=result.device,
        is_scatter=result.is_scatter,
        vector_bytes=result.vector_bytes,
        fraction_accessed=fraction_accessed,
        num_accesses=result.num_accesses,
        time=result.time,
        useful_bytes=result.useful_bytes,
        bandwidth_utilization=result.bandwidth_utilization,
    )
