"""PagedAttention implementations (Section 4.2, Figures 16 and 17).

Three implementations of the decode-stage paged attention operator:

* :func:`vllm_base_paged_attention` -- the baseline Gaudi vLLM fork
  (Figure 16(a)): a zero-padded 2-D ``BlockTable`` drives per-request
  KV block gathers into a contiguous buffer, then ``FusedSDPA`` runs
  over the padded copy.  Three structural inefficiencies are modelled,
  each named in the paper: (1) *redundant gathers* of zero-padded
  indices, (2) a low-MLP copy (the per-request block-list walk uses the
  SDK's generic gather path), and (3) *no MME/TPC pipelining* -- the
  copy and the attention execute serially, plus one gather op dispatch
  per request.
* :func:`vllm_opt_paged_attention` -- the optimized design
  (Figure 16(b)): a flat 1-D ``BlockList`` of only *effectual* block
  indices feeds one batched high-MLP gather, and the restructured
  query/KV layout lets the graph compiler slice the TPC gather and the
  MME batched GEMM into pipelined sub-operations.  The structural cost
  that remains -- and keeps Gaudi at ~45 % of the A100 kernel -- is the
  extra materialization pass: TPC-C kernels cannot feed the MME
  directly, so gathered KV must be written to a workspace the MME then
  re-reads (the fusion FlashAttention does in one kernel is impossible,
  as Section 5 discusses).
* :func:`a100_paged_attention` -- vLLM's native CUDA kernel: reads the
  scattered KV blocks exactly once inside one fused kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.pipeliner import SLICE_OVERHEAD, pipelined_duration
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec, DType

#: Tokens per KV cache block (the vLLM default for Gaudi).
DEFAULT_BLOCK_SIZE = 128

#: In the baseline, the per-request KV block copies are lowered as
#: separate index-select ops that all write into one contiguous buffer;
#: the resulting (false) output dependency serializes them, so each
#: copy runs at roughly a single TPC's port bandwidth instead of chip
#: bandwidth.  This serialization is the dominant baseline cost.

#: Efficiency of the optimized batched block gather (the BatchedTable
#: mechanics of Section 4.1 applied to KV blocks).
_OPT_GATHER_EFFICIENCY = 0.70

#: Efficiency of the A100's fused PagedAttention kernel when walking
#: scattered blocks (32 KB+ contiguous chunks, near-streaming).
_A100_PAGED_EFFICIENCY = 0.80

#: Pipeline slices the graph compiler carves for the opt design.
_OPT_SLICES = 8


@dataclass(frozen=True)
class PagedAttentionConfig:
    """One decode-step paged-attention call (single layer)."""

    batch: int
    seq_lens: Sequence[int]          # context length per request
    q_heads: int
    kv_heads: int
    head_dim: int
    block_size: int = DEFAULT_BLOCK_SIZE
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if len(self.seq_lens) != self.batch:
            raise ValueError("seq_lens must have one entry per request")
        if any(s <= 0 for s in self.seq_lens):
            raise ValueError("all sequence lengths must be positive")
        for name in ("q_heads", "kv_heads", "head_dim", "block_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @classmethod
    def uniform(
        cls,
        batch: int,
        seq_len: int,
        q_heads: int = 32,
        kv_heads: int = 8,
        head_dim: int = 128,
        block_size: int = DEFAULT_BLOCK_SIZE,
        dtype: DType = DType.BF16,
    ) -> "PagedAttentionConfig":
        return cls(
            batch=batch,
            seq_lens=[seq_len] * batch,
            q_heads=q_heads,
            kv_heads=kv_heads,
            head_dim=head_dim,
            block_size=block_size,
            dtype=dtype,
        )

    @property
    def block_bytes(self) -> int:
        """Bytes of one KV block (keys + values for all KV heads)."""
        return 2 * self.kv_heads * self.head_dim * self.block_size * self.dtype.itemsize

    def blocks_for(self, seq_len: int) -> int:
        return math.ceil(seq_len / self.block_size)

    @property
    def effectual_blocks(self) -> int:
        return sum(self.blocks_for(s) for s in self.seq_lens)

    @property
    def padded_blocks(self) -> int:
        """BlockTable entries including zero padding (Figure 16(a))."""
        return self.batch * max(self.blocks_for(s) for s in self.seq_lens)

    @property
    def padding_fraction(self) -> float:
        padded = self.padded_blocks
        return 1.0 - self.effectual_blocks / padded if padded else 0.0

    @property
    def kv_bytes(self) -> float:
        """Effectual KV cache bytes touched by one decode step."""
        return float(self.effectual_blocks) * self.block_bytes

    @property
    def padded_kv_bytes(self) -> float:
        return float(self.padded_blocks) * self.block_bytes

    @property
    def gemm_flops(self) -> float:
        """QK^T + PV flops for one new token per request."""
        return sum(
            4.0 * self.q_heads * s * self.head_dim for s in self.seq_lens
        )


@dataclass(frozen=True)
class PagedAttentionStats:
    """Aggregate view of one decode step's paged-attention workload.

    The three cost functions below read only ``batch``, ``kv_bytes``,
    ``padded_kv_bytes``, ``gemm_flops``, and ``dtype`` -- all derivable
    from four integer aggregates of the per-request context lengths.
    The serving engine maintains those aggregates incrementally, so a
    decode step can be priced without materializing (or walking) the
    length list.  Every property reproduces its
    :class:`PagedAttentionConfig` counterpart bit-for-bit: block counts
    are integer sums, and the FLOP sum ``sum(4 q d s_i)`` equals
    ``4 q d * sum(s_i)`` exactly because every partial sum is an
    integer below 2^53.
    """

    batch: int
    total_context: int      # sum of per-request context lengths
    total_blocks: int       # sum of per-request ceil(len / block_size)
    max_context: int        # longest context in the batch
    q_heads: int
    kv_heads: int
    head_dim: int
    block_size: int = DEFAULT_BLOCK_SIZE
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.max_context <= 0 or self.total_context < self.max_context:
            raise ValueError("inconsistent context aggregates")

    @classmethod
    def from_config(cls, config: PagedAttentionConfig) -> "PagedAttentionStats":
        return cls(
            batch=config.batch,
            total_context=sum(int(s) for s in config.seq_lens),
            total_blocks=config.effectual_blocks,
            max_context=max(int(s) for s in config.seq_lens),
            q_heads=config.q_heads,
            kv_heads=config.kv_heads,
            head_dim=config.head_dim,
            block_size=config.block_size,
            dtype=config.dtype,
        )

    @property
    def block_bytes(self) -> int:
        return 2 * self.kv_heads * self.head_dim * self.block_size * self.dtype.itemsize

    @property
    def effectual_blocks(self) -> int:
        return self.total_blocks

    @property
    def padded_blocks(self) -> int:
        return self.batch * math.ceil(self.max_context / self.block_size)

    @property
    def kv_bytes(self) -> float:
        return float(self.effectual_blocks) * self.block_bytes

    @property
    def padded_kv_bytes(self) -> float:
        return float(self.padded_blocks) * self.block_bytes

    @property
    def gemm_flops(self) -> float:
        return 4.0 * self.q_heads * self.head_dim * self.total_context


@dataclass(frozen=True)
class PagedAttentionResult:
    """Timing of one paged-attention call."""

    implementation: str
    device: str
    config: PagedAttentionConfig
    time: float
    gather_time: float
    gemm_time: float
    overhead: float
    pipelined: bool

    @property
    def tokens_per_second(self) -> float:
        return self.config.batch / self.time if self.time > 0 else 0.0


# ----------------------------------------------------------------------
def vllm_base_paged_attention(
    config: PagedAttentionConfig, spec: DeviceSpec = GAUDI2_SPEC
) -> PagedAttentionResult:
    """The baseline Gaudi vLLM fork's PagedAttention (Figure 16(a))."""
    bw = spec.memory.bandwidth
    stream_bw = bw * spec.memory.stream_efficiency
    padded = config.padded_kv_bytes
    # Phase 1 (TPC): gather every BlockTable entry -- padding included --
    # into a contiguous buffer.  Each request's block walk is a separate
    # lowered op; because all of them write the same contiguous output,
    # the graph serializes them, so each copy proceeds at one TPC's
    # port bandwidth with its own dispatch.
    per_request_bytes = padded / config.batch
    gather_time = config.batch * (
        spec.kernel_launch_overhead
        + per_request_bytes / spec.vector.per_core_stream_bw
    )
    # Phase 2 (MME+TPC): FusedSDPA over the padded contiguous buffer,
    # strictly after the copy -- no MME/TPC pipelining.
    sdpa_read = padded / stream_bw
    compute = config.gemm_flops / (spec.matrix.peak(config.dtype) * 0.48)
    gemm_time = max(sdpa_read, compute)
    overhead = spec.graph_dispatch_overhead
    time = gather_time + gemm_time + overhead
    return PagedAttentionResult(
        implementation="vllm-base",
        device=spec.name,
        config=config,
        time=time,
        gather_time=gather_time,
        gemm_time=gemm_time,
        overhead=overhead,
        pipelined=False,
    )


def vllm_opt_paged_attention(
    config: PagedAttentionConfig, spec: DeviceSpec = GAUDI2_SPEC
) -> PagedAttentionResult:
    """The optimized BlockList PagedAttention (Figure 16(b))."""
    bw = spec.memory.bandwidth
    stream_bw = bw * spec.memory.stream_efficiency
    effectual = config.kv_bytes
    # TPC phase: one batched gather of effectual blocks (BatchedTable
    # mechanics) plus the workspace write the MME will read from.
    gather_time = effectual / (bw * _OPT_GATHER_EFFICIENCY) + effectual / stream_bw
    # MME phase: batched GEMM over the restructured blocks.
    gemm_read = effectual / stream_bw
    compute = config.gemm_flops / (spec.matrix.peak(config.dtype) * 0.48)
    gemm_time = max(gemm_read, compute)
    # The graph compiler slices the two phases into pipelined sub-ops.
    busy = pipelined_duration(gather_time, gemm_time, slices=_OPT_SLICES)
    overhead = spec.kernel_launch_overhead + spec.graph_dispatch_overhead
    time = busy + overhead
    return PagedAttentionResult(
        implementation="vllm-opt",
        device=spec.name,
        config=config,
        time=time,
        gather_time=gather_time,
        gemm_time=gemm_time,
        overhead=overhead,
        pipelined=True,
    )


def a100_paged_attention(
    config: PagedAttentionConfig, spec: DeviceSpec = A100_SPEC
) -> PagedAttentionResult:
    """vLLM's native fused CUDA PagedAttention kernel."""
    read = config.kv_bytes / (spec.memory.bandwidth * _A100_PAGED_EFFICIENCY)
    compute = config.gemm_flops / (spec.matrix.peak(config.dtype) * 0.50)
    busy = max(read, compute)
    overhead = spec.kernel_launch_overhead
    return PagedAttentionResult(
        implementation="cuda-paged-attention",
        device=spec.name,
        config=config,
        time=busy + overhead,
        gather_time=read,
        gemm_time=compute,
        overhead=overhead,
        pipelined=True,
    )


# ----------------------------------------------------------------------
def build_paged_time_fn(implementation: str, batch: int, spec: DeviceSpec, dtype: DType):
    """Closed-form twin of one paged-attention cost function.

    Returns ``fn(kv_bytes, padded_kv_bytes, gemm_flops) -> (time,
    gather_time)`` with every spec-derived constant folded at build
    time.  The vectorized serving engine prices millions of decode
    steps through these closures, so they must stay bit-identical to
    the corresponding ``*_paged_attention`` call: each arithmetic
    expression below keeps the operand association of its twin, and
    folded constants are only subexpressions the twin also evaluates
    as a unit (``bw * efficiency``, ``peak * 0.48``, ...).
    """
    if implementation == "vllm-base":
        stream_bw = spec.memory.bandwidth * spec.memory.stream_efficiency
        launch = spec.kernel_launch_overhead
        per_core_bw = spec.vector.per_core_stream_bw
        matrix_peak = spec.matrix.peak(dtype) * 0.48
        dispatch = spec.graph_dispatch_overhead

        def base_fn(kv_bytes: float, padded_kv_bytes: float, gemm_flops: float):
            per_request_bytes = padded_kv_bytes / batch
            gather_time = batch * (launch + per_request_bytes / per_core_bw)
            sdpa_read = padded_kv_bytes / stream_bw
            compute = gemm_flops / matrix_peak
            gemm_time = max(sdpa_read, compute)
            return gather_time + gemm_time + dispatch, gather_time

        return base_fn
    if implementation == "vllm-opt":
        bw = spec.memory.bandwidth
        stream_bw = bw * spec.memory.stream_efficiency
        gather_bw = bw * _OPT_GATHER_EFFICIENCY
        matrix_peak = spec.matrix.peak(dtype) * 0.48
        overhead = spec.kernel_launch_overhead + spec.graph_dispatch_overhead
        slice_cost = _OPT_SLICES * SLICE_OVERHEAD

        def opt_fn(kv_bytes: float, padded_kv_bytes: float, gemm_flops: float):
            gemm_read = kv_bytes / stream_bw
            gather_time = kv_bytes / gather_bw + gemm_read
            gemm_time = max(gemm_read, gemm_flops / matrix_peak)
            busy = (
                max(gather_time, gemm_time)
                + min(gather_time, gemm_time) / _OPT_SLICES
                + slice_cost
            )
            return busy + overhead, gather_time

        return opt_fn
    if implementation == "cuda-paged-attention":
        read_bw = spec.memory.bandwidth * _A100_PAGED_EFFICIENCY
        matrix_peak = spec.matrix.peak(dtype) * 0.50
        launch = spec.kernel_launch_overhead

        def a100_fn(kv_bytes: float, padded_kv_bytes: float, gemm_flops: float):
            read = kv_bytes / read_bw
            busy = max(read, gemm_flops / matrix_peak)
            return busy + launch, read

        return a100_fn
    raise ValueError(f"unknown paged-attention implementation {implementation!r}")


# ----------------------------------------------------------------------
def reference_paged_attention(
    query: np.ndarray,
    kv_blocks: np.ndarray,
    block_table: np.ndarray,
    seq_lens: Sequence[int],
    block_size: int,
) -> np.ndarray:
    """Functional paged attention (numpy), for correctness tests.

    ``query``: ``[batch, heads, dim]``; ``kv_blocks``: ``[num_blocks,
    2, block_size, dim]`` (K in slot 0, V in slot 1); ``block_table``:
    ``[batch, max_blocks]`` of block ids (padded entries ignored via
    ``seq_lens``).  Single KV head for simplicity; GQA replicates it.
    """
    query = np.asarray(query, dtype=np.float64)
    kv_blocks = np.asarray(kv_blocks, dtype=np.float64)
    batch, heads, dim = query.shape
    out = np.zeros_like(query)
    for b in range(batch):
        length = int(seq_lens[b])
        nblocks = math.ceil(length / block_size)
        keys = np.concatenate(
            [kv_blocks[block_table[b, i], 0] for i in range(nblocks)], axis=0
        )[:length]
        values = np.concatenate(
            [kv_blocks[block_table[b, i], 1] for i in range(nblocks)], axis=0
        )[:length]
        for h in range(heads):
            scores = keys @ query[b, h] / math.sqrt(dim)
            scores -= scores.max()
            weights = np.exp(scores)
            weights /= weights.sum()
            out[b, h] = weights @ values
    return out
