"""Embedding-lookup operators (Section 4.1, Figures 14 and 15).

Four implementations of the batched embedding-bag operator are
modelled, matching the paper's case study:

* :class:`GaudiSdkSingleTable` -- the operator shipped with the Gaudi
  SDK: one kernel launch per table, no manual unrolling, so each TPC
  keeps only a small block of gathers in flight.
* :class:`GaudiSingleTable` -- the paper's custom TPC-C SingleTable:
  per-table launches, but the lookup loop is unrolled over indices and
  gathers stage into vector local memory, so gathers keep issuing up to
  the TPC's outstanding-load window (Figure 14(a)).
* :class:`GaudiBatchedTable` -- the paper's TPC-C BatchedTable: all
  tables fused into one launch with per-table offsets (Figure 14(b)),
  multiplying the independent lookups each TPC can overlap.
* :class:`A100Fbgemm` -- FBGEMM's GPU BatchedTable operator.

The performance difference between the three Gaudi operators comes from
two mechanisms only: *kernel-launch amortization* and *memory-level
parallelism per TPC* (how many gather transactions are simultaneously
in flight), both of which the paper's Figure 15(a-c) sweeps expose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.device import A100Device, Gaudi2Device
from repro.hw.memory import HbmModel
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec, DType

#: Hardware cap on outstanding 256 B gather transactions per TPC.
_TPC_MLP_WINDOW = 64

#: Effective outstanding transactions of the SDK operator (no manual
#: unrolling: the kernel interleaves address computation with gathers
#: one small block at a time).  Calibrated once against the paper's
#: "SDK achieves 37 % of the GPU counterpart" (Section 3.5, fn. 2).
_SDK_MLP_WINDOW = 24

#: Unrolled lookup streams per TPC in the custom operators
#: (Figure 14(a): "unrolled by a factor of 4 over lookup indices").
_CUSTOM_UNROLL = 4

#: Concurrent accesses the A100 needs in flight to reach its random
#: bandwidth ceiling (occupancy fill).
_A100_FILL_ACCESSES = 32768

#: L2 reuse boost for FBGEMM on A100: hot embedding rows hit in the
#: 40 MB L2 (Gaudi's software-managed SRAM gives no equivalent),
#: lifting achieved bandwidth above the DRAM random ceiling.  This is
#: what pushes FBGEMM's peak utilization to the ~82 % of Figure 15(d).
_A100_L2_REUSE_BOOST = 1.14


@dataclass(frozen=True)
class EmbeddingConfig:
    """Shape of one batched embedding-bag workload."""

    num_tables: int
    rows_per_table: int
    embedding_dim: int          # elements per embedding vector
    pooling: int                # lookups reduced into one output row
    batch_size: int
    dtype: DType = DType.FP32   # the paper's RecSys runs use FP32

    def __post_init__(self) -> None:
        for name in ("num_tables", "rows_per_table", "embedding_dim", "pooling", "batch_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def row_bytes(self) -> int:
        return self.embedding_dim * self.dtype.itemsize

    @property
    def lookups_per_table(self) -> int:
        return self.batch_size * self.pooling

    @property
    def total_lookups(self) -> int:
        return self.num_tables * self.lookups_per_table

    @property
    def useful_bytes(self) -> float:
        return float(self.total_lookups) * self.row_bytes

    @property
    def output_bytes(self) -> float:
        return float(self.num_tables * self.batch_size) * self.row_bytes


@dataclass(frozen=True)
class EmbeddingResult:
    """Timing of one full embedding-layer lookup."""

    operator: str
    device: str
    config: EmbeddingConfig
    time: float
    launches: int
    bandwidth_utilization: float

    @property
    def achieved_bandwidth(self) -> float:
        return self.config.useful_bytes / self.time if self.time > 0 else 0.0


def reference_embedding_bag(
    tables: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Functional semantics shared by all four operators.

    ``tables``: ``[num_tables, rows, dim]``; ``indices``:
    ``[batch, num_tables, pooling]``.  Returns ``[batch, num_tables,
    dim]`` -- the pooled (summed) embedding bags.
    """
    tables = np.asarray(tables)
    indices = np.asarray(indices)
    if tables.ndim != 3 or indices.ndim != 3:
        raise ValueError("tables must be [T, R, D]; indices [B, T, L]")
    if indices.shape[1] != tables.shape[0]:
        raise ValueError("table-count mismatch between tables and indices")
    batch, num_tables, _ = indices.shape
    gathered = np.stack(
        [tables[t][indices[:, t, :]] for t in range(num_tables)], axis=1
    )  # [B, T, L, D]
    return gathered.sum(axis=2)


# ----------------------------------------------------------------------
# Gaudi operators
# ----------------------------------------------------------------------
def _gaudi_gather_phase_time(
    spec: DeviceSpec,
    lookups: int,
    row_bytes: int,
    mlp_window: int,
) -> float:
    """Time for one launch's gather phase on the 24 TPCs.

    Per-TPC gather throughput is ``window * granule / latency``
    transactions' worth of data, where the effective window is bounded
    by the hardware cap, the operator's issue discipline, and -- at
    small batches -- by how many independent lookups the TPC even has.
    """
    granule = spec.memory.min_access_bytes
    chunks = math.ceil(row_bytes / granule)
    moved_per_lookup = chunks * granule
    num_tpcs = spec.vector.num_cores
    lookups_per_tpc = math.ceil(lookups / num_tpcs)
    busy_tpcs = min(num_tpcs, lookups)

    window = min(mlp_window, _TPC_MLP_WINDOW, chunks * lookups_per_tpc)
    latency_s = spec.vector.random_load_latency / spec.vector.clock_hz
    per_tpc_bw = min(
        spec.vector.per_core_stream_bw,
        window * granule / latency_s,
    )
    chip_random_bw = spec.memory.bandwidth * spec.memory.random_efficiency
    effective_bw = min(busy_tpcs * per_tpc_bw, chip_random_bw)

    moved_total = float(lookups) * moved_per_lookup
    transfer = moved_total / effective_bw
    # At least one full memory round trip.
    return max(transfer, latency_s)


def _gaudi_reduce_time(spec: DeviceSpec, config: EmbeddingConfig, tables: int) -> float:
    """Pooling reduction on the TPC vector units.

    The reduction runs on the VPU slot while the load slot keeps
    gathering, so the caller overlaps it with the gather phase.
    """
    outputs = tables * config.batch_size
    reduce_flops = outputs * (config.pooling - 1) * config.embedding_dim
    vec_peak = spec.vector.peak_flops[config.dtype] * 0.5  # adds, not FMAs
    return reduce_flops / vec_peak if reduce_flops else 0.0


def _gaudi_store_time(spec: DeviceSpec, config: EmbeddingConfig, tables: int) -> float:
    """Streaming store of the pooled output rows."""
    store_bytes = tables * config.batch_size * config.row_bytes
    return store_bytes / (spec.memory.bandwidth * spec.memory.stream_efficiency)


class GaudiEmbeddingOperator:
    """Base class for the three Gaudi operators."""

    name = "gaudi-embedding"
    mlp_window = _TPC_MLP_WINDOW
    tables_per_launch: Optional[int] = 1  # None = all tables in one launch

    def __init__(self, spec: DeviceSpec = GAUDI2_SPEC) -> None:
        self.spec = spec

    def run(self, config: EmbeddingConfig) -> EmbeddingResult:
        if self.tables_per_launch is None:
            launches = 1
            tables_per_launch = config.num_tables
        else:
            tables_per_launch = self.tables_per_launch
            launches = math.ceil(config.num_tables / tables_per_launch)

        time = 0.0
        for _ in range(launches):
            lookups = tables_per_launch * config.lookups_per_table
            gather = _gaudi_gather_phase_time(
                self.spec, lookups, config.row_bytes, self.mlp_window
            )
            reduce = _gaudi_reduce_time(self.spec, config, tables_per_launch)
            store = _gaudi_store_time(self.spec, config, tables_per_launch)
            time += self.spec.kernel_launch_overhead + max(gather, reduce) + store
        useful = config.useful_bytes
        return EmbeddingResult(
            operator=self.name,
            device=self.spec.name,
            config=config,
            time=time,
            launches=launches,
            bandwidth_utilization=(useful / time) / self.spec.memory.bandwidth,
        )


class GaudiSdkSingleTable(GaudiEmbeddingOperator):
    """The embedding operator shipped with the Gaudi SDK."""

    name = "gaudi-sdk-single-table"
    mlp_window = _SDK_MLP_WINDOW
    tables_per_launch = 1

    def __init__(self, spec: DeviceSpec = GAUDI2_SPEC) -> None:
        super().__init__(spec)

    def run(self, config: EmbeddingConfig) -> EmbeddingResult:
        result = super().run(config)
        # The SDK path dispatches through the graph runtime per table
        # rather than a raw kernel launch.
        extra = result.launches * (
            self.spec.graph_dispatch_overhead - self.spec.kernel_launch_overhead
        )
        time = result.time + max(0.0, extra)
        return EmbeddingResult(
            operator=self.name,
            device=result.device,
            config=config,
            time=time,
            launches=result.launches,
            bandwidth_utilization=(config.useful_bytes / time) / self.spec.memory.bandwidth,
        )


class GaudiSingleTable(GaudiEmbeddingOperator):
    """The paper's custom TPC-C SingleTable operator (Figure 14(a))."""

    name = "gaudi-single-table"
    mlp_window = _TPC_MLP_WINDOW  # unrolled + VLM staging: HW window
    tables_per_launch = 1


class GaudiBatchedTable(GaudiEmbeddingOperator):
    """The paper's custom TPC-C BatchedTable operator (Figure 14(b))."""

    name = "gaudi-batched-table"
    mlp_window = _TPC_MLP_WINDOW
    tables_per_launch = None  # every table in one launch


# ----------------------------------------------------------------------
# A100 operator
# ----------------------------------------------------------------------
class A100Fbgemm:
    """FBGEMM's GPU-optimized BatchedTable operator."""

    name = "a100-fbgemm-batched-table"

    def __init__(self, spec: DeviceSpec = A100_SPEC) -> None:
        self.spec = spec
        self.hbm = HbmModel(spec.memory)

    def run(self, config: EmbeddingConfig) -> EmbeddingResult:
        bw = self.hbm.random_bandwidth(config.row_bytes) * _A100_L2_REUSE_BOOST
        fill = min(1.0, config.total_lookups / _A100_FILL_ACCESSES)
        bw *= max(fill, 1e-3)
        gather = config.useful_bytes / bw
        store = config.output_bytes / (
            self.spec.memory.bandwidth * self.spec.memory.stream_efficiency
        )
        time = self.spec.kernel_launch_overhead + gather + store
        return EmbeddingResult(
            operator=self.name,
            device=self.spec.name,
            config=config,
            time=time,
            launches=1,
            bandwidth_utilization=(config.useful_bytes / time) / self.spec.memory.bandwidth,
        )


def make_operator(name: str):
    """Factory used by the figure harness and the RecSys server."""
    operators = {
        "sdk": GaudiSdkSingleTable,
        "single": GaudiSingleTable,
        "batched": GaudiBatchedTable,
        "fbgemm": A100Fbgemm,
    }
    try:
        return operators[name]()
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; expected one of {sorted(operators)}") from None


def gaudi_embedding_operator(device: Gaudi2Device, batched: bool = True):
    """The Gaudi operator an end-to-end model should use."""
    return GaudiBatchedTable(device.spec) if batched else GaudiSingleTable(device.spec)


def a100_embedding_operator(device: A100Device):
    """The A100 (FBGEMM) embedding operator."""
    return A100Fbgemm(device.spec)


def cuda_embedding_operator(device):
    """The FBGEMM embedding operator for any CUDA-family backend."""
    return A100Fbgemm(device.spec)
