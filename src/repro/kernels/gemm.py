"""GEMM execution and roofline sweeps (Figures 4, 5, 7).

The paper drives GEMMs through the PyTorch API on both platforms
(Table 2), which resolves to cuBLAS on the A100 and to the graph
compiler's MME configuration on Gaudi-2; :func:`run_gemm` is the model
equivalent, dispatching to the device's matrix-engine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.api.compat import positional_shim
from repro.hw.device import Device, MatmulResult
from repro.hw.spec import DType

#: Square GEMM sizes evaluated in Figures 4 and 5.
SQUARE_SIZES: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192, 16384)

#: (M=K) sizes for the irregular GEMM sweep; N is fixed at 16
#: ("triangle markers" in Figure 4).
IRREGULAR_SIZES: Sequence[int] = (1024, 2048, 4096, 8192, 16384)
IRREGULAR_N = 16


@dataclass(frozen=True)
class GemmPoint:
    """One point of the GEMM roofline (Figure 4)."""

    device: str
    m: int
    k: int
    n: int
    dtype: DType
    time: float
    achieved_tflops: float
    utilization: float
    operational_intensity: float
    memory_bound: bool
    config_label: str


def operational_intensity(m: int, k: int, n: int, dtype: DType) -> float:
    """FLOPs per byte of compulsory operand traffic."""
    flops = 2.0 * m * k * n
    compulsory = dtype.itemsize * (m * k + k * n + m * n)
    return flops / compulsory


@positional_shim("device", "m", "k", "n", "dtype")
def run_gemm(
    *,
    device: Optional[Device] = None,
    m: int,
    k: int,
    n: int,
    dtype: DType = DType.BF16,
    ctx=None,
) -> GemmPoint:
    """Execute one GEMM shape on a device model.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, its
    device is the default and the kernel is recorded as a sequential
    ``kernel`` span plus ``kernels.gemm.*`` metrics.
    """
    if ctx is not None:
        device = ctx.resolve_device(device)
    if device is None:
        raise TypeError("run_gemm() needs device= (or a ctx with a default device)")
    result: MatmulResult = device.gemm(m, k, n, dtype)
    if ctx is not None:
        if ctx.tracer is not None:
            ctx.tracer.record_sequential(
                "gemm", "kernel", result.time,
                device=device.name, m=m, k=k, n=n, dtype=dtype.name,
            )
        if ctx.metrics is not None:
            ctx.metrics.counter("kernels.gemm.calls").inc()
            ctx.metrics.histogram("kernels.gemm.seconds").observe(result.time)
    return GemmPoint(
        device=device.name,
        m=m,
        k=k,
        n=n,
        dtype=dtype,
        time=result.time,
        achieved_tflops=result.achieved_flops / 1e12,
        utilization=result.utilization,
        operational_intensity=operational_intensity(m, k, n, dtype),
        memory_bound=result.memory_bound,
        config_label=result.config_label,
    )


def sweep_square(
    device: Device, sizes: Iterable[int] = SQUARE_SIZES, dtype: DType = DType.BF16
) -> List[GemmPoint]:
    """The square-shaped GEMM sweep of Figure 4 (square markers)."""
    return [run_gemm(device=device, m=s, k=s, n=s, dtype=dtype) for s in sizes]


def sweep_irregular(
    device: Device,
    sizes: Iterable[int] = IRREGULAR_SIZES,
    n: int = IRREGULAR_N,
    dtype: DType = DType.BF16,
) -> List[GemmPoint]:
    """The irregular (tall-skinny, N=16) GEMM sweep of Figure 4."""
    return [run_gemm(device=device, m=s, k=s, n=n, dtype=dtype) for s in sizes]


def utilization_grid(
    device: Device, m_sizes: Sequence[int], n_sizes: Sequence[int], k: int,
    dtype: DType = DType.BF16,
) -> List[List[float]]:
    """Compute-utilization heatmap over (M, N) with fixed K (Figures 5, 7(b))."""
    return [
        [run_gemm(device=device, m=m, k=k, n=n, dtype=dtype).utilization for n in n_sizes]
        for m in m_sizes
    ]
