"""GEMM execution and roofline sweeps (Figures 4, 5, 7).

The paper drives GEMMs through the PyTorch API on both platforms
(Table 2), which resolves to cuBLAS on the A100 and to the graph
compiler's MME configuration on Gaudi-2; :func:`run_gemm` is the model
equivalent, dispatching to the device's matrix-engine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.hw.device import Device, MatmulResult
from repro.hw.spec import DType

#: Square GEMM sizes evaluated in Figures 4 and 5.
SQUARE_SIZES: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192, 16384)

#: (M=K) sizes for the irregular GEMM sweep; N is fixed at 16
#: ("triangle markers" in Figure 4).
IRREGULAR_SIZES: Sequence[int] = (1024, 2048, 4096, 8192, 16384)
IRREGULAR_N = 16


@dataclass(frozen=True)
class GemmPoint:
    """One point of the GEMM roofline (Figure 4)."""

    device: str
    m: int
    k: int
    n: int
    dtype: DType
    time: float
    achieved_tflops: float
    utilization: float
    operational_intensity: float
    memory_bound: bool
    config_label: str


def operational_intensity(m: int, k: int, n: int, dtype: DType) -> float:
    """FLOPs per byte of compulsory operand traffic."""
    flops = 2.0 * m * k * n
    compulsory = dtype.itemsize * (m * k + k * n + m * n)
    return flops / compulsory


def run_gemm(device: Device, m: int, k: int, n: int, dtype: DType = DType.BF16) -> GemmPoint:
    """Execute one GEMM shape on a device model."""
    result: MatmulResult = device.gemm(m, k, n, dtype)
    return GemmPoint(
        device=device.name,
        m=m,
        k=k,
        n=n,
        dtype=dtype,
        time=result.time,
        achieved_tflops=result.achieved_flops / 1e12,
        utilization=result.utilization,
        operational_intensity=operational_intensity(m, k, n, dtype),
        memory_bound=result.memory_bound,
        config_label=result.config_label,
    )


def sweep_square(
    device: Device, sizes: Iterable[int] = SQUARE_SIZES, dtype: DType = DType.BF16
) -> List[GemmPoint]:
    """The square-shaped GEMM sweep of Figure 4 (square markers)."""
    return [run_gemm(device, s, s, s, dtype) for s in sizes]


def sweep_irregular(
    device: Device,
    sizes: Iterable[int] = IRREGULAR_SIZES,
    n: int = IRREGULAR_N,
    dtype: DType = DType.BF16,
) -> List[GemmPoint]:
    """The irregular (tall-skinny, N=16) GEMM sweep of Figure 4."""
    return [run_gemm(device, s, s, n, dtype) for s in sizes]


def utilization_grid(
    device: Device, m_sizes: Sequence[int], n_sizes: Sequence[int], k: int,
    dtype: DType = DType.BF16,
) -> List[List[float]]:
    """Compute-utilization heatmap over (M, N) with fixed K (Figures 5, 7(b))."""
    return [
        [run_gemm(device, m, k, n, dtype).utilization for n in n_sizes]
        for m in m_sizes
    ]
