"""Figure 7: MME geometry configuration and its utilization payoff.

(a) which geometry the compiler picks as a function of (M, N) with
K=16,384; (b) the resulting compute utilization; (c) configurable MME
vs a fixed 256x256x2 output-stationary array with the same peak.
Headline paper result: configurability buys up to ~15 pp of
utilization over the fixed array.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.device import Gaudi2Device
from repro.hw.spec import DType

_K = 16384
_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
_FIG7C_N = (32, 64, 128, 256, 512, 1024, 2048)


@register_figure("fig07")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    device = Gaudi2Device()
    sizes = _SIZES[::2] if fast else _SIZES

    rows = []
    for m in sizes:
        for n in sizes:
            config = device.mme.select_config(m, _K, n, DType.BF16)
            estimate = device.mme.gemm(m, _K, n, DType.BF16)
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "k": _K,
                    "geometry": config.geometry.label,
                    "power_gated": config.power_gated,
                    "utilization": estimate.utilization,
                }
            )

    # Figure 7(c): configurable vs fixed array, M=K=16,384, N swept.
    fig7c = []
    for n in _FIG7C_N:
        configurable = device.mme.gemm(_K, _K, n, DType.BF16).utilization
        fixed = device.mme.fixed_array_utilization(_K, _K, n)
        fig7c.append(
            {"m": _K, "k": _K, "n": n, "configurable_util": configurable,
             "fixed_util": fixed, "gain": configurable - fixed}
        )

    geometry_table = render_table(
        ["M", "N", "Geometry", "Power-gated", "Utilization"],
        [
            (r["m"], r["n"], r["geometry"], "yes" if r["power_gated"] else "no",
             f"{r['utilization']:.1%}")
            for r in rows
        ],
        title=f"Figure 7(a,b): MME geometry vs (M, N), K={_K}",
    )
    fig7c_table = render_table(
        ["N", "Configurable", "Fixed 256x256x2", "Gain (pp)"],
        [
            (r["n"], f"{r['configurable_util']:.1%}", f"{r['fixed_util']:.1%}",
             f"{100 * r['gain']:.1f}")
            for r in fig7c
        ],
        title="Figure 7(c): configurable vs fixed systolic array (M=K=16,384)",
    )
    summary = {
        "max_configurability_gain": max(r["gain"] for r in fig7c),
        "num_power_gated_configs": float(sum(1 for r in rows if r["power_gated"])),
        "distinct_geometries": float(len({r["geometry"] for r in rows})),
    }
    return FigureResult(
        figure_id="fig07",
        title="MME geometry configurability",
        rows=rows + fig7c,
        summary=summary,
        text=geometry_table + "\n\n" + fig7c_table,
    )
