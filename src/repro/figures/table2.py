"""Table 2: evaluated microbenchmarks (the suite inventory)."""

from __future__ import annotations

from repro.core.microbench import MICROBENCHMARKS, table2_rows
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure


@register_figure("table2")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this table's rows, summary, and text report."""
    rows = [
        {
            "category": spec.category,
            "microbenchmark": spec.name,
            "gaudi_impl": spec.gaudi_implementation,
            "a100_impl": spec.a100_implementation,
            "module": spec.module,
            "figure": spec.figure,
        }
        for spec in MICROBENCHMARKS
    ]
    text = render_table(
        ["Microbenchmark", "", "System", "Implementation"],
        table2_rows(),
        title="Table 2: Evaluated microbenchmarks",
    )
    return FigureResult(
        figure_id="table2",
        title="Microbenchmark inventory",
        rows=rows,
        summary={"num_microbenchmarks": float(len(MICROBENCHMARKS))},
        text=text,
    )
