"""Shared figure-harness infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.api.compat import positional_shim


@dataclass
class FigureResult:
    """Output of one table/figure regeneration."""

    figure_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    #: Headline values tracked against the paper in EXPERIMENTS.md.
    summary: Dict[str, float] = field(default_factory=dict)
    #: Rendered plain-text report (what the bench harness prints).
    text: str = ""

    def column(self, key: str) -> List:
        return [row[key] for row in self.rows]


#: Registry: figure id -> runner(fast) -> FigureResult.
FIGURES: Dict[str, Callable[[bool], FigureResult]] = {}


def register_figure(figure_id: str):
    """Decorator registering a figure runner under ``figure_id``."""

    def decorator(fn: Callable[[bool], FigureResult]):
        if figure_id in FIGURES:
            raise ValueError(f"figure {figure_id!r} registered twice")
        FIGURES[figure_id] = fn
        return fn

    return decorator


def get_figure(figure_id: str) -> Callable[[bool], FigureResult]:
    """Look up a registered figure runner by id."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None


@positional_shim("figure_id", "fast")
def run_figure(*, figure_id: str, fast: bool = True, ctx=None) -> FigureResult:
    """Run one registered table/figure regeneration.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, the
    regeneration is counted under ``figures.*`` in its metrics
    registry.
    """
    result = get_figure(figure_id)(fast)
    if ctx is not None and ctx.metrics is not None:
        ctx.metrics.counter("figures.runs").inc()
        ctx.metrics.counter(f"figures.{figure_id}.runs").inc()
    return result
