"""Figure 4: GEMM roofline of Gaudi-2 vs A100 (BF16).

Square GEMMs (M=K=N, square markers) plus irregular tall-skinny GEMMs
with N fixed at 16 (triangle markers), placed on each device's
roofline.  Headline paper result: Gaudi-2 outperforms A100 across all
shapes and reaches 429 TFLOPS (99.3 % of peak) at M=K=N=8192.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.core.roofline import Roofline
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import DEFAULT_COMPARISON, comparison_backends
from repro.hw.device import get_device
from repro.kernels.gemm import (
    IRREGULAR_N,
    IRREGULAR_SIZES,
    SQUARE_SIZES,
    run_gemm,
)


@register_figure("fig04")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report.

    Honors the registry comparison set (``REPRO_BACKENDS`` / repeated
    ``--backend``): the default pair is the paper's Gaudi-2-vs-A100
    roofline; extra backends (e.g. h100) add their points and the
    summary gains per-backend peak columns.
    """
    keys = comparison_backends()
    devices = [get_device(key) for key in keys]
    square = SQUARE_SIZES[::2] if fast else SQUARE_SIZES
    irregular = IRREGULAR_SIZES[::2] if fast else IRREGULAR_SIZES

    rows = []
    for device in devices:
        roofline = Roofline.for_device(device.spec)
        for size in square:
            point = run_gemm(device=device, m=size, k=size, n=size)
            rows.append(_row(point, roofline, "square"))
        for size in irregular:
            point = run_gemm(device=device, m=size, k=size, n=IRREGULAR_N)
            rows.append(_row(point, roofline, "irregular"))

    table = render_table(
        ["Device", "Shape", "M", "K", "N", "OI (flops/B)", "TFLOPS", "Util", "Bound"],
        [
            (
                r["device"], r["shape"], r["m"], r["k"], r["n"],
                f"{r['operational_intensity']:.1f}",
                f"{r['achieved_tflops']:.1f}",
                f"{r['utilization']:.1%}",
                "memory" if r["memory_bound"] else "compute",
            )
            for r in rows
        ],
        title="Figure 4: GEMM roofline points (BF16)",
    )
    if keys == DEFAULT_COMPARISON:
        peak_8192 = max(
            (r for r in rows if r["device"] == "Gaudi-2" and r["shape"] == "square"),
            key=lambda r: r["m"],
        )
        gaudi_square = [
            r for r in rows if r["device"] == "Gaudi-2" and r["shape"] == "square"
        ]
        a100_square = [
            r for r in rows if r["device"] == "A100" and r["shape"] == "square"
        ]
        wins = sum(
            1
            for rg, ra in zip(gaudi_square, a100_square)
            if rg["achieved_tflops"] > ra["achieved_tflops"]
        )
        summary = {
            "gaudi_peak_tflops_largest_square": peak_8192["achieved_tflops"],
            "gaudi_peak_utilization_largest_square": peak_8192["utilization"],
            "gaudi_wins_all_square_shapes": float(wins == len(gaudi_square)),
        }
    else:
        summary = {}
        for key, device in zip(keys, devices):
            peak = max(
                (r for r in rows
                 if r["device"] == device.name and r["shape"] == "square"),
                key=lambda r: r["m"],
            )
            summary[f"{key}_peak_tflops_largest_square"] = peak["achieved_tflops"]
            summary[f"{key}_peak_utilization_largest_square"] = peak["utilization"]
    return FigureResult(
        figure_id="fig04", title="GEMM roofline", rows=rows, summary=summary, text=table
    )


def _row(point, roofline: Roofline, shape: str) -> dict:
    placed = roofline.place(
        f"{point.m}x{point.k}x{point.n}",
        point.operational_intensity,
        point.achieved_tflops * 1e12,
    )
    return {
        "device": point.device,
        "shape": shape,
        "m": point.m,
        "k": point.k,
        "n": point.n,
        "operational_intensity": point.operational_intensity,
        "achieved_tflops": point.achieved_tflops,
        "utilization": point.utilization,
        "memory_bound": point.memory_bound,
        "roofline_efficiency": placed.efficiency,
    }
