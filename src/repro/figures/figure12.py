"""Figure 12: LLM serving speedup heatmaps + latency breakdown.

(a) Gaudi-2's speedup over A100 for Llama-3.1-8B on one device and
Llama-3.1-70B on 2/4/8 devices (tensor parallelism), over batch size x
output length; (b) prefill/decode latency breakdown for the 8B model.
Headline paper results: 1.47x average single-device speedup (max
1.70x); 1.29x/1.32x/1.35x for 2/4/8 devices, increasing with device
count.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_heatmap, render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.models.llama import LLAMA_3_1_70B, LLAMA_3_1_8B, LlamaCostModel
from repro.models.tensor_parallel import TensorParallelConfig

_BATCHES = (1, 4, 16, 64)
_OUTPUT_LENS = (25, 50, 100, 200, 400)
_INPUT_LEN = 100
_TP_DEGREES = (2, 4, 8)


@register_figure("fig12")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    batches = _BATCHES[::2] if fast else _BATCHES
    outputs = _OUTPUT_LENS[::2] if fast else _OUTPUT_LENS
    tp_degrees = (_TP_DEGREES[0], _TP_DEGREES[-1]) if fast else _TP_DEGREES

    rows = []
    # (a) single-device 8B
    for batch in batches:
        for out in outputs:
            eg = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(batch, _INPUT_LEN, out)
            ea = LlamaCostModel(LLAMA_3_1_8B, a100).generate(batch, _INPUT_LEN, out)
            rows.append({
                "model": "8B", "tp": 1, "batch": batch, "output_len": out,
                "speedup": ea.total_time / eg.total_time,
                "gaudi_prefill": eg.prefill_time, "gaudi_decode": eg.decode_time,
                "a100_prefill": ea.prefill_time, "a100_decode": ea.decode_time,
            })
    # (a) multi-device 70B
    for tp in tp_degrees:
        for batch in batches:
            for out in outputs:
                mg = LlamaCostModel(LLAMA_3_1_70B, gaudi,
                                    TensorParallelConfig.for_device(gaudi, tp))
                ma = LlamaCostModel(LLAMA_3_1_70B, a100,
                                    TensorParallelConfig.for_device(a100, tp))
                eg, ea = mg.generate(batch, _INPUT_LEN, out), ma.generate(batch, _INPUT_LEN, out)
                rows.append({
                    "model": "70B", "tp": tp, "batch": batch, "output_len": out,
                    "speedup": ea.total_time / eg.total_time,
                    "gaudi_prefill": eg.prefill_time, "gaudi_decode": eg.decode_time,
                    "a100_prefill": ea.prefill_time, "a100_decode": ea.decode_time,
                })

    single = [r["speedup"] for r in rows if r["tp"] == 1]
    summary = {
        "single_device_mean_speedup": arithmetic_mean(single),
        "single_device_max_speedup": max(single),
    }
    for tp in tp_degrees:
        multi = [r["speedup"] for r in rows if r["tp"] == tp and r["model"] == "70B"]
        summary[f"tp{tp}_mean_speedup"] = arithmetic_mean(multi)

    grid = [
        [next(r["speedup"] for r in rows
              if r["tp"] == 1 and r["batch"] == b and r["output_len"] == o)
         for o in outputs]
        for b in batches
    ]
    heatmap = render_heatmap(
        grid, list(batches), list(outputs),
        title="Figure 12(a): 8B single-device speedup (rows=batch, cols=output len)",
    )
    breakdown_rows = [
        (r["batch"], r["output_len"],
         f"{r['gaudi_prefill'] * 1e3:.1f}", f"{r['gaudi_decode'] * 1e3:.1f}",
         f"{r['a100_prefill'] * 1e3:.1f}", f"{r['a100_decode'] * 1e3:.1f}")
        for r in rows if r["tp"] == 1 and r["batch"] == batches[-1]
    ]
    breakdown = render_table(
        ["Batch", "Out len", "G prefill (ms)", "G decode (ms)",
         "A prefill (ms)", "A decode (ms)"],
        breakdown_rows,
        title="Figure 12(b): prefill/decode latency breakdown (8B)",
    )
    return FigureResult(figure_id="fig12", title="LLM serving speedup",
                        rows=rows, summary=summary,
                        text=heatmap + "\n\n" + breakdown)
