"""Figure 10: collective-communication bus bandwidth.

Six collectives (AllReduce, AllGather, ReduceScatter, AlltoAll, Reduce,
Broadcast), 2-8 participating devices, 2 KB - 32 MB transfer sizes, on
HCCL (Gaudi-2 P2P mesh) vs NCCL (A100 NVSwitch).  Headline paper
results: at 8 devices Gaudi-2 wins 5 of 6 collectives; its bus
bandwidth declines almost linearly as devices are removed, while the
A100's stays flat.
"""

from __future__ import annotations

from repro.comm import CollectiveOp, HcclLibrary, NcclLibrary
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure

_SIZES = tuple(2 ** p for p in range(11, 26, 2))  # 2 KB .. 32 MB
_DEVICES = (2, 4, 8)
_LARGE = 32 * 1024 * 1024


@register_figure("fig10")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    hccl, nccl = HcclLibrary(), NcclLibrary()
    sizes = (_SIZES[0], _SIZES[-1]) if fast else _SIZES

    rows = []
    for op in CollectiveOp:
        for participants in _DEVICES:
            for size in sizes:
                for library in (hccl, nccl):
                    report = library.run(op, size, participants)
                    rows.append({
                        "library": library.name,
                        "op": op.value,
                        "participants": participants,
                        "size_bytes": size,
                        "bus_bandwidth": report.bus_bandwidth,
                        "bus_utilization": report.bus_utilization,
                    })
    # Headlines at the largest size.
    wins = 0
    linear_decline = True
    for op in CollectiveOp:
        gaudi8 = _find(rows, "HCCL", op.value, 8, sizes[-1])
        a100_8 = _find(rows, "NCCL", op.value, 8, sizes[-1])
        if gaudi8 > a100_8:
            wins += 1
        gaudi2 = _find(rows, "HCCL", op.value, 2, sizes[-1])
        gaudi4 = _find(rows, "HCCL", op.value, 4, sizes[-1])
        if not gaudi2 < gaudi4 < gaudi8:
            linear_decline = False
    summary = {
        "gaudi_wins_of_6_at_8_devices": float(wins),
        "gaudi_busbw_scales_with_devices": float(linear_decline),
        "gaudi_allreduce_util_8dev": _find(rows, "HCCL", "all_reduce", 8, sizes[-1]) / 300e9,
        "a100_allreduce_util_8dev": _find(rows, "NCCL", "all_reduce", 8, sizes[-1]) / 300e9,
        "a100_allreduce_util_2dev": _find(rows, "NCCL", "all_reduce", 2, sizes[-1]) / 300e9,
        "gaudi_allreduce_util_2dev": _find(rows, "HCCL", "all_reduce", 2, sizes[-1]) / 300e9,
    }
    text = render_table(
        ["Library", "Collective", "Devices", "Size", "busBW (GB/s)", "Util"],
        [
            (r["library"], r["op"], r["participants"], _human(r["size_bytes"]),
             f"{r['bus_bandwidth'] / 1e9:.1f}", f"{r['bus_utilization']:.1%}")
            for r in rows
        ],
        title="Figure 10: collective communication bus bandwidth",
    )
    return FigureResult(figure_id="fig10", title="Collectives",
                        rows=rows, summary=summary, text=text)


def _find(rows, library, op, participants, size) -> float:
    for r in rows:
        if (r["library"] == library and r["op"] == op
                and r["participants"] == participants and r["size_bytes"] == size):
            return r["bus_bandwidth"]
    raise KeyError((library, op, participants, size))


def _human(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}MB"
    return f"{size >> 10}KB"
