"""Figure 5: GEMM compute-utilization heatmaps.

(a) square-shaped sweeps (M=K=N) and (b) irregularly-shaped sweeps
(N fixed at 16, M and K swept).  Headline paper result: Gaudi-2
averages 4.5 pp higher compute utilization than A100, with the largest
gap at M=K=N=2048.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_heatmap
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.kernels.gemm import run_gemm

_SIZES = (256, 512, 1024, 2048, 4096, 8192, 16384)
_IRREGULAR_N = 16


@register_figure("fig05")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    sizes = _SIZES[::2] if fast else _SIZES

    rows = []
    for device in (gaudi, a100):
        for s in sizes:
            square = run_gemm(device=device, m=s, k=s, n=s)
            rows.append(
                {"device": device.name, "shape": "square", "m": s, "k": s, "n": s,
                 "utilization": square.utilization}
            )
        for m in sizes:
            for k in sizes:
                irregular = run_gemm(device=device, m=m, k=k, n=_IRREGULAR_N)
                rows.append(
                    {"device": device.name, "shape": "irregular", "m": m, "k": k,
                     "n": _IRREGULAR_N, "utilization": irregular.utilization}
                )

    gaudi_sq = [r["utilization"] for r in rows if r["device"] == "Gaudi-2" and r["shape"] == "square"]
    a100_sq = [r["utilization"] for r in rows if r["device"] == "A100" and r["shape"] == "square"]
    deltas = [g - a for g, a in zip(gaudi_sq, a100_sq)]

    grid = [
        [
            next(
                r["utilization"]
                for r in rows
                if r["device"] == dev and r["shape"] == "irregular"
                and r["m"] == m and r["k"] == k
            )
            for k in sizes
        ]
        for dev in ("Gaudi-2",)
        for m in sizes
    ]
    text = render_heatmap(
        grid, list(sizes), list(sizes),
        title=f"Figure 5(b): Gaudi-2 irregular-GEMM utilization (N={_IRREGULAR_N}; rows=M, cols=K)",
    )
    summary = {
        "mean_square_utilization_delta": arithmetic_mean(deltas),
        "max_square_utilization_delta": max(deltas),
        "gaudi_mean_square_utilization": arithmetic_mean(gaudi_sq),
        "a100_mean_square_utilization": arithmetic_mean(a100_sq),
    }
    return FigureResult(
        figure_id="fig05", title="GEMM utilization heatmaps",
        rows=rows, summary=summary, text=text,
    )
