"""Figure 15: embedding-lookup memory-bandwidth utilization.

The Section 4.1 case study over the RM2 embedding configuration:
(a) utilization vs number of tables (SingleTable flat, BatchedTable
rising); (b, c) utilization vs vector size and batch for the two Gaudi
operators; (d) A100 FBGEMM.  Headline paper results: BatchedTable
averages 34.2 % utilization (peak 70.5 %), a 1.52x average improvement
over SingleTable; vs A100, ~95 % of FBGEMM's throughput for >=256 B
vectors but ~47 % below 256 B.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean, geometric_mean
from repro.core.report import render_heatmap
from repro.figures.common import FigureResult, register_figure
from repro.kernels.embedding import (
    A100Fbgemm,
    EmbeddingConfig,
    GaudiBatchedTable,
    GaudiSingleTable,
)
from repro.models.dlrm import RM2_CONFIG

_TABLE_COUNTS = (1, 2, 5, 10, 20)
_DIMS = (16, 32, 64, 128, 256)     # fp32: 64 B .. 1 KB
_BATCHES = (256, 1024, 4096, 16384)


def _config(tables: int, dim: int, batch: int) -> EmbeddingConfig:
    return EmbeddingConfig(
        num_tables=tables,
        rows_per_table=RM2_CONFIG.rows_per_table,
        embedding_dim=dim,
        pooling=RM2_CONFIG.pooling,
        batch_size=batch,
    )


@register_figure("fig15")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    single, batched, fbgemm = GaudiSingleTable(), GaudiBatchedTable(), A100Fbgemm()
    table_counts = _TABLE_COUNTS[::2] if fast else _TABLE_COUNTS
    dims = _DIMS[::2] if fast else _DIMS
    batches = _BATCHES[::2] if fast else _BATCHES

    rows = []
    # (a) tables sweep at 256 B vectors.
    for tables in table_counts:
        config = _config(tables, 64, 1024)
        for op in (single, batched, fbgemm):
            result = op.run(config)
            rows.append({"panel": "a", "operator": op.name, "tables": tables,
                         "vector_bytes": 256, "batch": 1024,
                         "utilization": result.bandwidth_utilization})
    # (b, c, d) vector-size x batch heatmaps, all tables.
    for dim in dims:
        for batch in batches:
            config = _config(RM2_CONFIG.num_tables, dim, batch)
            for op in (single, batched, fbgemm):
                result = op.run(config)
                rows.append({"panel": "bcd", "operator": op.name,
                             "tables": RM2_CONFIG.num_tables,
                             "vector_bytes": dim * 4, "batch": batch,
                             "utilization": result.bandwidth_utilization})

    bt = [r for r in rows if r["panel"] == "bcd" and r["operator"] == batched.name]
    st = [r for r in rows if r["panel"] == "bcd" and r["operator"] == single.name]
    fb = [r for r in rows if r["panel"] == "bcd" and r["operator"] == fbgemm.name]
    bt_vs_st = [b["utilization"] / s["utilization"] for b, s in zip(bt, st)]
    big = [(b, f) for b, f in zip(bt, fb) if b["vector_bytes"] >= 256]
    small = [(b, f) for b, f in zip(bt, fb) if b["vector_bytes"] < 256]
    summary = {
        "batched_mean_utilization": arithmetic_mean([r["utilization"] for r in bt]),
        "batched_peak_utilization": max(r["utilization"] for r in bt),
        "batched_over_single_mean": geometric_mean(bt_vs_st),
        "batched_vs_a100_large_vectors": arithmetic_mean(
            [b["utilization"] / f["utilization"] for b, f in big]
        ),
        "batched_vs_a100_small_vectors": arithmetic_mean(
            [b["utilization"] / f["utilization"] for b, f in small]
        ),
        "batched_small_vector_utilization": arithmetic_mean(
            [b["utilization"] for b, _ in small]
        ),
        "a100_small_vector_utilization": arithmetic_mean(
            [f["utilization"] for _, f in small]
        ),
    }
    grid = [
        [next(r["utilization"] for r in bt
              if r["vector_bytes"] == d * 4 and r["batch"] == b)
         for b in batches]
        for d in dims
    ]
    text = render_heatmap(
        grid, [d * 4 for d in dims], list(batches),
        title="Figure 15(c): BatchedTable (Gaudi-2) bandwidth utilization "
              "(rows=vector bytes, cols=batch)",
    )
    return FigureResult(figure_id="fig15", title="Embedding operators",
                        rows=rows, summary=summary, text=text)
