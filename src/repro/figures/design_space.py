"""Design-space figure: surrogate-speed MME x fabric x batch grid.

Not a paper figure -- the ISSUE 10 companion the surrogate layer earns:
a tensor-parallel degree x batch-policy x context grid for a
Llama-3-8B-shaped decoder, every cell scored through the fitted
surrogate surfaces (layer GEMMs, paged attention, per-layer
all-reduces, prefill attention).  At exact-model speed the full grid is
a design-space *sweep*; at surrogate speed it is a lookup -- which is
the point: the same scoring at 100x the cell count stays interactive.

The tracked behavior: the throughput-optimal cell and the dominant MME
geometry per cell match the exact twin (``design_space_sweep(...,
exact=True)``), which the surrogate test suite cross-checks.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.surrogate.sweep import design_space_sweep

#: Backend the figure sweeps (the paper's serving subject).
_BACKEND = "gaudi2"


@register_figure("design_space")
def run(fast: bool = True) -> FigureResult:
    """Regenerate the TP x batch x context throughput/TTFT grid."""
    result = design_space_sweep(_BACKEND, fast=fast)
    rows = result["rows"]
    best = result["best"]
    summary = {
        "cells": float(result["cells"]),
        "best_tp": float(best["tp"]),
        "best_batch": float(best["batch"]),
        "best_context": float(best["context"]),
        "best_throughput": best["throughput"],
        "best_ttft": best["ttft"],
    }
    text = render_table(
        ["TP", "Batch", "Context", "Step (ms)", "Tok/s", "TTFT (ms)", "Geometry"],
        [(
            str(r["tp"]), str(r["batch"]), str(r["context"]),
            f"{r['step_time'] * 1e3:.3f}", f"{r['throughput']:.0f}",
            f"{r['ttft'] * 1e3:.1f}", r["geometry"],
        ) for r in rows],
        title=f"Design space ({_BACKEND}@surrogate): decode throughput / TTFT",
    )
    return FigureResult(
        figure_id="design_space",
        title="Surrogate design-space sweep (TP x batch x context)",
        rows=rows,
        summary=summary,
        text=text,
    )
