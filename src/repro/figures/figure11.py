"""Figure 11: RecSys (RM1/RM2) single-device performance and energy.

Gaudi-2's speedup (a) and energy-efficiency improvement (b) over A100,
swept across batch sizes and embedding vector sizes.  Headline paper
results: average slowdowns of 22 % (RM1) and 18 % (RM2); speedups up
to 1.36x at wide vectors + large batches; up to 70 % loss on RM2 with
sub-256 B vectors; ~28 % average energy-efficiency deficit.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_heatmap
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.models.dlrm import DlrmCostModel, RM1_CONFIG, RM2_CONFIG

_DIMS = (16, 32, 64, 128, 256)         # fp32 elements: 64 B .. 1 KB vectors
_BATCHES = (256, 1024, 4096, 16384)


@register_figure("fig11")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    dims = _DIMS[::2] if fast else _DIMS
    batches = _BATCHES[::2] if fast else _BATCHES

    rows = []
    for base in (RM1_CONFIG, RM2_CONFIG):
        for dim in dims:
            config = base.with_embedding_dim(dim)
            for batch in batches:
                fg = DlrmCostModel(config, gaudi).forward(batch)
                fa = DlrmCostModel(config, a100).forward(batch)
                rows.append({
                    "model": base.name,
                    "embedding_dim": dim,
                    "vector_bytes": dim * 4,
                    "batch": batch,
                    "speedup": fa.time / fg.time,
                    "power_ratio": fg.average_power / fa.average_power,
                    "energy_efficiency": fa.energy_joules / fg.energy_joules,
                })

    def grid(model, key):
        return [
            [next(r[key] for r in rows
                  if r["model"] == model and r["embedding_dim"] == d and r["batch"] == b)
             for b in batches]
            for d in dims
        ]

    text = "\n\n".join(
        render_heatmap(
            grid(model, key), [d * 4 for d in dims], list(batches),
            title=f"Figure 11: {model} {label} (rows=vector bytes, cols=batch)",
        )
        for model in ("RM1", "RM2")
        for key, label in (("speedup", "speedup over A100"),
                           ("energy_efficiency", "energy-efficiency vs A100"))
    )
    rm1 = [r for r in rows if r["model"] == "RM1"]
    rm2 = [r for r in rows if r["model"] == "RM2"]
    small_rm2 = [r["speedup"] for r in rm2 if r["vector_bytes"] < 256]
    summary = {
        "rm1_mean_speedup": arithmetic_mean([r["speedup"] for r in rm1]),
        "rm2_mean_speedup": arithmetic_mean([r["speedup"] for r in rm2]),
        "max_speedup": max(r["speedup"] for r in rows),
        "rm2_min_speedup_small_vectors": min(small_rm2),
        "mean_energy_efficiency": arithmetic_mean([r["energy_efficiency"] for r in rows]),
        "mean_power_ratio": arithmetic_mean([r["power_ratio"] for r in rows]),
    }
    return FigureResult(figure_id="fig11", title="RecSys serving",
                        rows=rows, summary=summary, text=text)
