"""Markdown paper-vs-measured report generator.

Regenerates the quantitative core of EXPERIMENTS.md from a live run, so
the tracked numbers can never silently drift from what the code
produces: ``python -m repro figures --markdown`` (or
:func:`experiments_markdown`) re-derives the whole comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.figures.common import run_figure


@dataclass(frozen=True)
class TrackedClaim:
    """One paper claim tracked against the model."""

    figure_id: str
    summary_key: str
    description: str
    paper_value: float
    #: Accepted band for the measured value (documented tolerance).
    band: Tuple[float, float]

    def check(self, measured: float) -> bool:
        low, high = self.band
        return low <= measured <= high


#: The claims EXPERIMENTS.md tracks, with their calibration bands.
TRACKED_CLAIMS: Tuple[TrackedClaim, ...] = (
    TrackedClaim("fig04", "gaudi_peak_utilization_largest_square",
                 "Gaudi-2 peak GEMM utilization", 0.993, (0.97, 1.0)),
    TrackedClaim("fig05", "mean_square_utilization_delta",
                 "Mean square-GEMM utilization delta (pp/100)", 0.045, (0.0, 0.25)),
    TrackedClaim("fig07", "max_configurability_gain",
                 "MME configurability gain vs fixed array", 0.15, (0.08, 0.22)),
    TrackedClaim("fig08", "chip_saturation_gflops_add",
                 "STREAM ADD chip saturation (GFLOPS)", 330.0, (300.0, 380.0)),
    TrackedClaim("fig08", "chip_saturation_gflops_triad",
                 "STREAM TRIAD chip saturation (GFLOPS)", 670.0, (620.0, 740.0)),
    TrackedClaim("fig09", "gaudi_gather_util_large",
                 "Gaudi >=256 B gather utilization", 0.64, (0.58, 0.74)),
    # Fast mode samples only the 16 B/64 B sizes, pulling the average
    # down from the full-grid 0.35; the band covers both modes.
    TrackedClaim("fig09", "a100_gather_util_small",
                 "A100 <=128 B gather utilization", 0.36, (0.20, 0.44)),
    TrackedClaim("fig10", "gaudi_wins_of_6_at_8_devices",
                 "Collectives Gaudi wins at 8 devices", 5.0, (5.0, 5.0)),
    TrackedClaim("fig11", "max_speedup",
                 "RecSys max speedup (wide vectors)", 1.36, (1.2, 1.5)),
    TrackedClaim("fig12", "single_device_mean_speedup",
                 "LLM single-device mean speedup", 1.47, (1.25, 1.6)),
    TrackedClaim("fig13", "multi_device_mean_power_ratio",
                 "LLM multi-device power ratio", 0.88, (0.8, 0.96)),
    TrackedClaim("fig15", "batched_peak_utilization",
                 "BatchedTable peak bandwidth utilization", 0.705, (0.6, 0.78)),
    TrackedClaim("fig17", "opt_over_base_mean",
                 "vLLM opt-over-base mean speedup", 7.4, (4.5, 9.0)),
    TrackedClaim("fig17", "opt_vs_a100_mean",
                 "vLLM opt vs A100 kernel", 0.45, (0.35, 0.65)),
)


def collect_measurements(fast: bool = True) -> Dict[Tuple[str, str], float]:
    """Run every figure a tracked claim needs; returns measured values."""
    needed = sorted({claim.figure_id for claim in TRACKED_CLAIMS})
    summaries = {figure_id: run_figure(figure_id=figure_id, fast=fast).summary
                 for figure_id in needed}
    return {
        (claim.figure_id, claim.summary_key):
            summaries[claim.figure_id][claim.summary_key]
        for claim in TRACKED_CLAIMS
    }


def experiments_markdown(fast: bool = True) -> str:
    """The live paper-vs-measured table as markdown."""
    measured = collect_measurements(fast=fast)
    lines: List[str] = [
        "# Paper vs measured (live run)",
        "",
        "| Figure | Claim | Paper | Measured | In band |",
        "|---|---|---|---|---|",
    ]
    for claim in TRACKED_CLAIMS:
        value = measured[(claim.figure_id, claim.summary_key)]
        status = "yes" if claim.check(value) else "**NO**"
        lines.append(
            f"| {claim.figure_id} | {claim.description} | "
            f"{claim.paper_value:.4g} | {value:.4g} | {status} |"
        )
    return "\n".join(lines) + "\n"


def all_claims_in_band(fast: bool = True) -> bool:
    """True when every tracked claim sits inside its band."""
    measured = collect_measurements(fast=fast)
    return all(
        claim.check(measured[(claim.figure_id, claim.summary_key)])
        for claim in TRACKED_CLAIMS
    )
