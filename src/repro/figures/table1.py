"""Table 1: NVIDIA A100 vs Intel Gaudi-2 spec comparison."""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DType, spec_comparison_rows


@register_figure("table1")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this table's rows, summary, and text report."""
    rows = [
        {"metric": metric, "a100": a, "gaudi2": g, "ratio": r}
        for metric, a, g, r in spec_comparison_rows()
    ]
    text = render_table(
        ["Metric", "NVIDIA A100", "Intel Gaudi-2", "Ratio"],
        [(r["metric"], r["a100"], r["gaudi2"], r["ratio"]) for r in rows],
        title="Table 1: Comparison of NVIDIA A100 and Intel Gaudi-2",
    )
    summary = {
        "matrix_tflops_ratio": GAUDI2_SPEC.matrix.peak(DType.BF16)
        / A100_SPEC.matrix.peak(DType.BF16),
        "vector_tflops_ratio": GAUDI2_SPEC.vector.peak(DType.BF16)
        / A100_SPEC.vector.peak(DType.BF16),
        "bandwidth_ratio": GAUDI2_SPEC.memory.bandwidth / A100_SPEC.memory.bandwidth,
        "power_ratio": GAUDI2_SPEC.power.tdp_watts / A100_SPEC.power.tdp_watts,
    }
    return FigureResult(figure_id="table1", title="Device spec comparison",
                        rows=rows, summary=summary, text=text)
