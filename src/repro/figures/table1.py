"""Table 1: accelerator spec comparison (A100 vs Gaudi-2 by default).

Honors the registry comparison set (``REPRO_BACKENDS`` / repeated
``--backend`` flags): the default pair reproduces the paper's
two-column table byte for byte, while a wider set (e.g. adding h100)
renders one column per backend plus ratios against the first.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import DEFAULT_COMPARISON, comparison_backends
from repro.hw.spec import (
    A100_SPEC,
    GAUDI2_SPEC,
    DType,
    get_spec,
    spec_comparison_rows,
    spec_comparison_rows_for,
)


@register_figure("table1")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this table's rows, summary, and text report."""
    keys = comparison_backends()
    if keys != DEFAULT_COMPARISON:
        return _run_nway(keys)
    rows = [
        {"metric": metric, "a100": a, "gaudi2": g, "ratio": r}
        for metric, a, g, r in spec_comparison_rows()
    ]
    text = render_table(
        ["Metric", "NVIDIA A100", "Intel Gaudi-2", "Ratio"],
        [(r["metric"], r["a100"], r["gaudi2"], r["ratio"]) for r in rows],
        title="Table 1: Comparison of NVIDIA A100 and Intel Gaudi-2",
    )
    summary = {
        "matrix_tflops_ratio": GAUDI2_SPEC.matrix.peak(DType.BF16)
        / A100_SPEC.matrix.peak(DType.BF16),
        "vector_tflops_ratio": GAUDI2_SPEC.vector.peak(DType.BF16)
        / A100_SPEC.vector.peak(DType.BF16),
        "bandwidth_ratio": GAUDI2_SPEC.memory.bandwidth / A100_SPEC.memory.bandwidth,
        "power_ratio": GAUDI2_SPEC.power.tdp_watts / A100_SPEC.power.tdp_watts,
    }
    return FigureResult(figure_id="table1", title="Device spec comparison",
                        rows=rows, summary=summary, text=text)


def _run_nway(keys) -> FigureResult:
    """One column per backend in the comparison set; ratios vs the
    first (baseline) column."""
    specs = [get_spec(key) for key in keys]
    raw = spec_comparison_rows_for(specs)
    rows = [
        {"metric": row[0],
         **{key: value for key, value in zip(keys, row[1:-1])},
         "ratio": row[-1]}
        for row in raw
    ]
    text = render_table(
        ["Metric", *[s.name for s in specs], "Ratio (vs first)"],
        raw,
        title="Table 1: Comparison of " + " / ".join(s.name for s in specs),
    )
    base = specs[0]
    summary = {}
    for key, spec in zip(keys[1:], specs[1:]):
        summary[f"{key}_matrix_tflops_ratio"] = (
            spec.matrix.peak(DType.BF16) / base.matrix.peak(DType.BF16)
        )
        summary[f"{key}_bandwidth_ratio"] = (
            spec.memory.bandwidth / base.memory.bandwidth
        )
        summary[f"{key}_power_ratio"] = spec.power.tdp_watts / base.power.tdp_watts
    return FigureResult(figure_id="table1", title="Device spec comparison",
                        rows=rows, summary=summary, text=text)
