"""Figure 13: LLM serving energy-efficiency heatmaps.

Same sweeps as Figure 12 but reporting Gaudi-2's energy-efficiency
improvement over A100.  Headline paper results: ~1.48x single-device;
1.48x/1.51x/1.56x for 2/4/8 devices; Gaudi draws about 88 % of A100's
power in multi-device serving despite its 1.5x TDP.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_heatmap
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.models.llama import LLAMA_3_1_70B, LLAMA_3_1_8B, LlamaCostModel
from repro.models.tensor_parallel import TensorParallelConfig

_BATCHES = (1, 4, 16, 64)
_OUTPUT_LENS = (25, 100, 400)
_INPUT_LEN = 100
_TP_DEGREES = (2, 4, 8)


@register_figure("fig13")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    batches = _BATCHES[::2] if fast else _BATCHES
    outputs = (_OUTPUT_LENS[0], _OUTPUT_LENS[-1]) if fast else _OUTPUT_LENS
    tp_degrees = (_TP_DEGREES[0], _TP_DEGREES[-1]) if fast else _TP_DEGREES

    rows = []
    for tp, model_cfg in [(1, LLAMA_3_1_8B)] + [(t, LLAMA_3_1_70B) for t in tp_degrees]:
        for batch in batches:
            for out in outputs:
                tpg = TensorParallelConfig.for_device(gaudi, tp)
                tpa = TensorParallelConfig.for_device(a100, tp)
                eg = LlamaCostModel(model_cfg, gaudi, tpg).generate(batch, _INPUT_LEN, out)
                ea = LlamaCostModel(model_cfg, a100, tpa).generate(batch, _INPUT_LEN, out)
                rows.append({
                    "model": model_cfg.name, "tp": tp, "batch": batch, "output_len": out,
                    "gaudi_power": eg.average_power,
                    "a100_power": ea.average_power,
                    "power_ratio": eg.average_power / ea.average_power,
                    "energy_efficiency": ea.energy_joules / eg.energy_joules,
                })

    summary = {}
    single = [r for r in rows if r["tp"] == 1]
    summary["single_device_mean_energy_efficiency"] = arithmetic_mean(
        [r["energy_efficiency"] for r in single]
    )
    summary["single_device_mean_power_ratio"] = arithmetic_mean(
        [r["power_ratio"] for r in single]
    )
    multi = [r for r in rows if r["tp"] > 1]
    summary["multi_device_mean_energy_efficiency"] = arithmetic_mean(
        [r["energy_efficiency"] for r in multi]
    )
    summary["multi_device_mean_power_ratio"] = arithmetic_mean(
        [r["power_ratio"] for r in multi]
    )

    grid = [
        [next(r["energy_efficiency"] for r in single
              if r["batch"] == b and r["output_len"] == o)
         for o in outputs]
        for b in batches
    ]
    text = render_heatmap(
        grid, list(batches), list(outputs),
        title="Figure 13: 8B single-device energy-efficiency vs A100 "
              "(rows=batch, cols=output len)",
    )
    return FigureResult(figure_id="fig13", title="LLM energy efficiency",
                        rows=rows, summary=summary, text=text)
