"""Overload-protection figure: admission policy x offered load.

Not a paper figure -- a repo-native companion to the fleet simulator
(the serving-cluster layer the paper's Section 4 serving results
motivate).  It sweeps offered load from nominal to 2x saturation over
the same three-tenant fleet twice -- once with the gateway admitting
everything (baseline) and once with admission control (token-bucket
quotas, weighted-fair queueing, CoDel-style brownout/shed) -- and
reports per-tier p99 TTFT and shed fractions.

The tracked behavior: under 2x overload, admission control keeps
tier-0 (premium) p99 TTFT within its SLO by browning out and shedding
best-effort tiers first, while the baseline lets queueing delay grow
for every tier alike.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster import (
    AdmissionPolicy,
    FleetConfig,
    FleetResilienceReport,
    TenantSpec,
    run_fleet,
)
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure

#: The premium tier's TTFT SLO in seconds (tracked in the summary).
_TIER0_SLO = 2.0

_TENANTS = (
    TenantSpec(name="gold", tier=0, share=0.25, weight=4.0, ttft_slo=_TIER0_SLO),
    TenantSpec(name="silver", tier=1, share=0.35, weight=2.0),
    TenantSpec(name="bronze", tier=2, share=0.40, weight=1.0),
)

#: Offered load multipliers over the nominal rate.
_LOADS = (1.0, 2.0)

#: Nominal fleet rate in req/s -- near saturation for the small
#: 2-node, batch-4 fleet below, so 2x is genuine overload.
_BASE_RATE = 20.0


def _run_cell(
    load: float, admission: Optional[AdmissionPolicy], num_requests: int
) -> FleetResilienceReport:
    return run_fleet(FleetConfig(
        nodes=(("gaudi2", 2),),
        max_decode_batch=4,
        num_requests=num_requests,
        rate=_BASE_RATE * load,
        seed=0,
        tenants=_TENANTS,
        admission=admission,
    ))


@register_figure("fleet_overload")
def run(fast: bool = True) -> FigureResult:
    """Regenerate the policy x overload p99-TTFT comparison."""
    num_requests = 128 if fast else 256
    admission_policy = AdmissionPolicy(
        target_queue_delay=0.4,
        shed_queue_delay=0.8,
        evaluate_interval=0.25,
        brownout_max_new_tokens=48,
        max_queue_delay=20.0,
    )
    rows = []
    summary: Dict[str, float] = {}
    for load in _LOADS:
        for label, policy in (("baseline", None), ("admission", admission_policy)):
            report = _run_cell(load, policy, num_requests)
            tiers = {t.tier: t for t in report.tenant_reports}
            tier0, tier2 = tiers[0], tiers[2]
            shed_fraction = report.shed / report.admitted
            rows.append({
                "load": load,
                "policy": label,
                "tier0_p99_ttft": tier0.p99_ttft,
                "tier2_p99_ttft": tier2.p99_ttft,
                "tier0_slo_violations": tier0.slo_violations,
                "tier0_shed": tier0.shed,
                "tier2_shed": tier2.shed,
                "shed_fraction": shed_fraction,
                "brownout_entries": report.brownout_entries,
            })
            key = f"{label}_{load:g}x"
            summary[f"tier0_p99_ttft_{key}"] = tier0.p99_ttft
            summary[f"shed_fraction_{key}"] = shed_fraction
    summary["tier0_slo"] = _TIER0_SLO
    text = render_table(
        ["Load", "Policy", "T0 p99 TTFT (s)", "T2 p99 TTFT (s)",
         "T0 shed", "T2 shed", "Shed frac"],
        [(
            f"{r['load']:g}x", r["policy"],
            f"{r['tier0_p99_ttft']:.3f}", f"{r['tier2_p99_ttft']:.3f}",
            str(r["tier0_shed"]), str(r["tier2_shed"]),
            f"{r['shed_fraction']:.0%}",
        ) for r in rows],
        title="Overload protection: per-tier p99 TTFT by admission policy",
    )
    return FigureResult(
        figure_id="fleet_overload",
        title="Admission control under overload",
        rows=rows,
        summary=summary,
        text=text,
    )
