"""Figure 9: vector gather/scatter memory-bandwidth utilization.

4M vectors of 16 B - 2,048 B, gathered from / scattered to random
locations, with the accessed fraction swept.  Headline paper results:
Gaudi-2 averages 64 % utilization for >=256 B gathers vs A100's 72 %,
but only ~15 % vs A100's ~36 % below 256 B (a 2.4x gap).
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.kernels.gather_scatter import run_gather_scatter

_VECTOR_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)
_FRACTIONS = (0.125, 0.25, 0.5, 1.0)


@register_figure("fig09")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    sizes = _VECTOR_SIZES[::2] if fast else _VECTOR_SIZES
    fractions = (_FRACTIONS[0], _FRACTIONS[-1]) if fast else _FRACTIONS

    rows = []
    for device in (gaudi, a100):
        for is_scatter in (False, True):
            for size in sizes:
                for fraction in fractions:
                    result = run_gather_scatter(
                        device=device, vector_bytes=size,
                        fraction_accessed=fraction, is_scatter=is_scatter,
                    )
                    rows.append({
                        "device": device.name,
                        "op": "scatter" if is_scatter else "gather",
                        "vector_bytes": size,
                        "fraction": fraction,
                        "bandwidth_utilization": result.bandwidth_utilization,
                    })

    def avg(device, op, predicate):
        pts = [r["bandwidth_utilization"] for r in rows
               if r["device"] == device and r["op"] == op and predicate(r["vector_bytes"])]
        return arithmetic_mean(pts)

    summary = {
        "gaudi_gather_util_small": avg("Gaudi-2", "gather", lambda s: s <= 128),
        "a100_gather_util_small": avg("A100", "gather", lambda s: s <= 128),
        "gaudi_gather_util_large": avg("Gaudi-2", "gather", lambda s: s >= 256),
        "a100_gather_util_large": avg("A100", "gather", lambda s: s >= 256),
    }
    summary["small_vector_gap"] = (
        summary["a100_gather_util_small"] / summary["gaudi_gather_util_small"]
    )
    text = render_table(
        ["Device", "Op", "Vector", "Fraction", "BW util"],
        [
            (r["device"], r["op"], f"{r['vector_bytes']}B", r["fraction"],
             f"{r['bandwidth_utilization']:.1%}")
            for r in rows
        ],
        title="Figure 9: gather/scatter bandwidth utilization",
    )
    return FigureResult(figure_id="fig09", title="Gather/scatter",
                        rows=rows, summary=summary, text=text)
