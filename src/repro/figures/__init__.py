"""Regeneration harness: one module per paper table/figure.

Each module exposes ``run(fast=True) -> FigureResult`` producing the
rows/series the paper reports, plus a ``summary`` dict of the headline
numbers (the values EXPERIMENTS.md tracks against the paper).  The
registry in :mod:`repro.figures.common` lets the benchmark harness and
``repro.figures.generate_all`` enumerate everything.
"""

from repro.figures import (  # noqa: F401  (registration side effects)
    design_space,
    figure04,
    figure05,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure15,
    figure17,
    fleet_overload,
    headline,
    table1,
    table2,
)
from repro.core.parallel import map_with_retries, resolve_worker_count
from repro.figures.common import FIGURES, FigureResult, get_figure, run_figure

__all__ = ["FIGURES", "FigureResult", "generate_all", "get_figure", "run_figure"]


def _run_figure_task(task) -> FigureResult:
    """Process-pool task: one figure.  Top-level so it pickles; the
    registry repopulates in each worker via this module's imports."""
    figure_id, fast = task
    return run_figure(figure_id=figure_id, fast=fast)


def generate_all(fast: bool = True, workers=None) -> dict:
    """Run every registered table/figure; returns {id: FigureResult}.

    Figures are independent, so with ``workers`` (an int, ``"auto"``,
    or the ``REPRO_WORKERS`` environment variable; see
    :func:`repro.core.parallel.resolve_worker_count`) they fan across a
    process pool; a worker process dying mid-figure rebuilds the pool
    and retries the unfinished figures
    (:func:`repro.core.parallel.map_with_retries`).  Results are keyed
    and ordered by sorted figure id either way, and each figure's
    computation is deterministic, so the output does not depend on the
    worker count.
    """
    figure_ids = sorted(FIGURES)
    count = resolve_worker_count(workers, len(figure_ids))
    if count <= 1:
        return {figure_id: run_figure(figure_id=figure_id, fast=fast) for figure_id in figure_ids}
    tasks = [(figure_id, fast) for figure_id in figure_ids]
    results = map_with_retries(_run_figure_task, tasks, workers=count)
    return dict(zip(figure_ids, results))
