"""Regeneration harness: one module per paper table/figure.

Each module exposes ``run(fast=True) -> FigureResult`` producing the
rows/series the paper reports, plus a ``summary`` dict of the headline
numbers (the values EXPERIMENTS.md tracks against the paper).  The
registry in :mod:`repro.figures.common` lets the benchmark harness and
``repro.figures.generate_all`` enumerate everything.
"""

from repro.figures import (  # noqa: F401  (registration side effects)
    figure04,
    figure05,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure15,
    figure17,
    headline,
    table1,
    table2,
)
from repro.figures.common import FIGURES, FigureResult, get_figure, run_figure

__all__ = ["FIGURES", "FigureResult", "generate_all", "get_figure", "run_figure"]


def generate_all(fast: bool = True) -> dict:
    """Run every registered table/figure; returns {id: FigureResult}."""
    return {figure_id: run_figure(figure_id=figure_id, fast=fast) for figure_id in sorted(FIGURES)}
