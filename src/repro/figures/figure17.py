"""Figure 17: PagedAttention and end-to-end vLLM serving.

(a) vLLM_opt vs vLLM_base PagedAttention speedup over sequence length x
batch (0 % padding); (b) the zero-padding sweep; (c) vLLM_opt vs the
A100 CUDA kernel; (d, e) end-to-end serving throughput and TTFT/TPOT
vs the maximum decode batch size on the Dynamic-Sonnet-like dataset.
Headline paper results: 7.4x average opt-over-base speedup (up to
55.7x with 90 % padding); ~45 % of A100's PagedAttention throughput;
comparable end-to-end throughput and SLO sensitivity.
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean, geometric_mean
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.kernels.paged_attention import (
    PagedAttentionConfig,
    a100_paged_attention,
    vllm_base_paged_attention,
    vllm_opt_paged_attention,
)
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import LlmServingEngine, dynamic_sonnet_requests

_SEQ_LENS = (1024, 2048, 4096, 8192)
_BATCHES = (8, 16, 32, 64)
_PADDING_FRACTIONS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)
_MAX_DECODE_BATCHES = (8, 16, 32, 64, 128, 192)
_NUM_REQUESTS = 96


@register_figure("fig17")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    seqs = _SEQ_LENS[::2] if fast else _SEQ_LENS
    batches = _BATCHES[::2] if fast else _BATCHES
    paddings = (_PADDING_FRACTIONS[0], _PADDING_FRACTIONS[-1]) if fast else _PADDING_FRACTIONS
    decode_batches = _MAX_DECODE_BATCHES[::2] if fast else _MAX_DECODE_BATCHES
    num_requests = _NUM_REQUESTS // 2 if fast else _NUM_REQUESTS

    rows = []
    # (a) + (c): kernel-level grid at 0 % padding.
    for seq in seqs:
        for batch in batches:
            config = PagedAttentionConfig.uniform(batch, seq)
            base = vllm_base_paged_attention(config)
            opt = vllm_opt_paged_attention(config)
            cuda = a100_paged_attention(config)
            rows.append({
                "panel": "a", "seq": seq, "batch": batch, "padding": 0.0,
                "opt_over_base": base.time / opt.time,
                "opt_vs_a100": cuda.time / opt.time,
            })
    # (b) padding sweep at seq=4K, batch=32.
    for padding in paddings:
        config = _padded_config(32, 4096, padding)
        base = vllm_base_paged_attention(config)
        opt = vllm_opt_paged_attention(config)
        rows.append({
            "panel": "b", "seq": 4096, "batch": 32,
            "padding": config.padding_fraction,
            "opt_over_base": base.time / opt.time,
        })
    # (d, e): end-to-end serving on both devices.
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    for max_batch in decode_batches:
        gaudi_engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=max_batch,
        )
        a100_engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, a100),
            DecodeAttention.PAGED_CUDA,
            max_decode_batch=max_batch,
        )
        rg = gaudi_engine.run(dynamic_sonnet_requests(num_requests, seed=7))
        ra = a100_engine.run(dynamic_sonnet_requests(num_requests, seed=7))
        rows.append({
            "panel": "de", "max_decode_batch": max_batch,
            "gaudi_throughput": rg.throughput_tokens_per_s,
            "a100_throughput": ra.throughput_tokens_per_s,
            "gaudi_ttft": rg.mean_ttft, "a100_ttft": ra.mean_ttft,
            "gaudi_tpot": rg.mean_tpot, "a100_tpot": ra.mean_tpot,
        })

    panel_a = [r for r in rows if r["panel"] == "a"]
    panel_b = sorted((r for r in rows if r["panel"] == "b"), key=lambda r: r["padding"])
    panel_de = [r for r in rows if r["panel"] == "de"]
    summary = {
        "opt_over_base_mean": arithmetic_mean([r["opt_over_base"] for r in panel_a]),
        "opt_over_base_max_padding": panel_b[-1]["opt_over_base"],
        "opt_over_base_padding_mean": arithmetic_mean(
            [r["opt_over_base"] for r in panel_b if r["padding"] > 0]
        ),
        "opt_vs_a100_mean": arithmetic_mean([r["opt_vs_a100"] for r in panel_a]),
        "e2e_throughput_ratio": geometric_mean(
            [r["gaudi_throughput"] / r["a100_throughput"] for r in panel_de]
        ),
        # With a zero-arrival backlog, a larger decode batch drains the
        # queue sooner (TTFT falls) while each token slows down (TPOT
        # rises) -- the SLO trade-off of Figure 17(e).
        "e2e_tpot_rises_with_batch": float(
            panel_de[-1]["gaudi_tpot"] > panel_de[0]["gaudi_tpot"]
        ),
    }
    text = render_table(
        ["Panel", "Key", "Value"],
        [
            ("a", f"seq={r['seq']} b={r['batch']}",
             f"opt/base {r['opt_over_base']:.2f}x, A100/opt {1 / r['opt_vs_a100']:.2f}x")
            for r in panel_a
        ]
        + [
            ("b", f"padding={r['padding']:.0%}", f"opt/base {r['opt_over_base']:.1f}x")
            for r in panel_b
        ]
        + [
            ("de", f"max_batch={r['max_decode_batch']}",
             f"G {r['gaudi_throughput']:.0f} tok/s (TTFT {r['gaudi_ttft']:.2f}s, "
             f"TPOT {r['gaudi_tpot'] * 1e3:.1f}ms) | "
             f"A {r['a100_throughput']:.0f} tok/s (TTFT {r['a100_ttft']:.2f}s, "
             f"TPOT {r['a100_tpot'] * 1e3:.1f}ms)")
            for r in panel_de
        ],
        title="Figure 17: PagedAttention and end-to-end vLLM serving",
    )
    return FigureResult(figure_id="fig17", title="vLLM case study",
                        rows=rows, summary=summary, text=text)


def _padded_config(batch: int, max_seq: int, padding: float) -> PagedAttentionConfig:
    """Build a batch whose BlockTable padding fraction is ~``padding``."""
    block = 128
    max_blocks = max_seq // block
    target_effectual = max(batch, int(round((1.0 - padding) * batch * max_blocks)))
    others = max(1, (target_effectual - max_blocks) // (batch - 1))
    seq_lens = [max_seq] + [others * block] * (batch - 1)
    return PagedAttentionConfig(
        batch=batch, seq_lens=seq_lens, q_heads=32, kv_heads=8, head_dim=128,
        block_size=block,
    )
