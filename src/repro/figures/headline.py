"""Headline scalar claims from the abstract and Sections 3.5/4.1/4.2.

A single harness gathering the paper's quotable numbers so tests and
EXPERIMENTS.md can track them in one place:

* SDK embedding operator reaches ~37 % of FBGEMM (Section 3.5 fn. 2);
* the custom SingleTable beats the SDK operator by ~1.6x;
* BatchedTable reaches ~95 % of A100 for >=256 B vectors, ~47 % below;
* vLLM_opt beats vLLM_base by ~7.4x (0 % padding) / up to ~55.7x;
* vLLM_opt reaches ~45 % of A100's PagedAttention;
* end-to-end: RecSys ~20 % slower / ~28 % less energy-efficient;
  LLM ~1.47x faster / ~48 % more energy-efficient (single device).
"""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean
from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure, run_figure
from repro.kernels.embedding import (
    EmbeddingConfig,
    GaudiSdkSingleTable,
    GaudiSingleTable,
    A100Fbgemm,
)
from repro.models.dlrm import RM2_CONFIG

_BATCHES = (1024, 4096, 16384)
_DIMS = (64, 128)


@register_figure("headline")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this table's rows, summary, and text report."""
    sdk, single, fbgemm = GaudiSdkSingleTable(), GaudiSingleTable(), A100Fbgemm()
    sdk_vs_a100, single_vs_sdk = [], []
    for dim in _DIMS:
        for batch in _BATCHES:
            config = EmbeddingConfig(
                num_tables=RM2_CONFIG.num_tables,
                rows_per_table=RM2_CONFIG.rows_per_table,
                embedding_dim=dim,
                pooling=RM2_CONFIG.pooling,
                batch_size=batch,
            )
            t_sdk = sdk.run(config).time
            t_single = single.run(config).time
            t_a100 = fbgemm.run(config).time
            sdk_vs_a100.append(t_a100 / t_sdk)
            single_vs_sdk.append(t_sdk / t_single)

    fig15 = run_figure(figure_id="fig15", fast=fast)
    fig17 = run_figure(figure_id="fig17", fast=fast)
    fig12 = run_figure(figure_id="fig12", fast=fast)
    fig13 = run_figure(figure_id="fig13", fast=fast)
    fig11 = run_figure(figure_id="fig11", fast=fast)

    summary = {
        "sdk_embedding_vs_a100": arithmetic_mean(sdk_vs_a100),
        "custom_single_over_sdk": arithmetic_mean(single_vs_sdk),
        "batched_vs_a100_large_vectors": fig15.summary["batched_vs_a100_large_vectors"],
        "batched_vs_a100_small_vectors": fig15.summary["batched_vs_a100_small_vectors"],
        "vllm_opt_over_base": fig17.summary["opt_over_base_mean"],
        "vllm_opt_over_base_max": fig17.summary["opt_over_base_max_padding"],
        "vllm_opt_vs_a100_kernel": fig17.summary["opt_vs_a100_mean"],
        "vllm_e2e_throughput_ratio": fig17.summary["e2e_throughput_ratio"],
        "llm_single_device_speedup": fig12.summary["single_device_mean_speedup"],
        "llm_single_device_energy_eff": fig13.summary["single_device_mean_energy_efficiency"],
        "recsys_mean_speedup": arithmetic_mean(
            [fig11.summary["rm1_mean_speedup"], fig11.summary["rm2_mean_speedup"]]
        ),
        "recsys_mean_energy_eff": fig11.summary["mean_energy_efficiency"],
    }
    paper = {
        "sdk_embedding_vs_a100": 0.37,
        "custom_single_over_sdk": 1.60,
        "batched_vs_a100_large_vectors": 0.95,
        "batched_vs_a100_small_vectors": 0.47,
        "vllm_opt_over_base": 7.4,
        "vllm_opt_over_base_max": 55.7,
        "vllm_opt_vs_a100_kernel": 0.45,
        "vllm_e2e_throughput_ratio": 1.01,
        "llm_single_device_speedup": 1.47,
        "llm_single_device_energy_eff": 1.48,
        "recsys_mean_speedup": 0.80,
        "recsys_mean_energy_eff": 0.72,
    }
    rows = [
        {"claim": key, "measured": summary[key], "paper": paper[key]}
        for key in summary
    ]
    text = render_table(
        ["Claim", "Measured", "Paper"],
        [(r["claim"], f"{r['measured']:.2f}", f"{r['paper']:.2f}") for r in rows],
        title="Headline claims: measured vs paper",
    )
    return FigureResult(figure_id="headline", title="Headline claims",
                        rows=rows, summary=summary, text=text)
