"""Figure 8: STREAM ADD/SCALE/TRIAD characterization.

Six panels: (a) single-TPC throughput vs data access granularity,
(b) vs unroll factor, (c) weak scaling across TPCs, and (d, e, f)
operational-intensity sweeps comparing Gaudi-2 against A100 with the
compute-utilization saturation points.  Headline paper results: the
256-byte granularity cliff; SCALE gains most from unrolling; chip
throughput saturates around 330/530/670 GFLOPS at 11-15 TPCs; at high
intensity ADD and SCALE saturate at ~50 % of peak while TRIAD reaches
~99 % on both platforms.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.common import FigureResult, register_figure
from repro.hw.backend import A100, GAUDI2
from repro.hw.device import get_device
from repro.kernels.stream import StreamOp, run_stream

_GRANULARITIES = (2, 8, 32, 64, 128, 256, 512, 1024, 2048)
_UNROLLS = (1, 2, 4, 8)
_TPC_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24)
_INTENSITY_CHAINS = (1, 4, 16, 64, 256)
_ELEMENTS = 24_000_000
_ELEMENTS_FAST = 2_400_000


@register_figure("fig08")
def run(fast: bool = True) -> FigureResult:
    """Regenerate this figure's rows, summary, and text report."""
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    n = _ELEMENTS_FAST if fast else _ELEMENTS
    granularities = _GRANULARITIES[::2] if fast else _GRANULARITIES
    tpc_counts = _TPC_COUNTS[::2] if fast else _TPC_COUNTS
    rows = []

    # (a) granularity sweep, single TPC, no unrolling.
    for op in StreamOp:
        for g in granularities:
            result = run_stream(device=gaudi, op=op, num_elements=n, access_bytes=g, unroll=1, num_cores=1)
            rows.append({"panel": "a", "op": op.value, "granularity": g,
                         "unroll": 1, "cores": 1, "gflops": result.achieved_gflops})

    # (b) unroll sweep, single TPC, 256 B granularity.
    for op in StreamOp:
        for u in _UNROLLS:
            result = run_stream(device=gaudi, op=op, num_elements=n, unroll=u, num_cores=1)
            rows.append({"panel": "b", "op": op.value, "granularity": 256,
                         "unroll": u, "cores": 1, "gflops": result.achieved_gflops})

    # (c) weak scaling across TPCs (unrolled kernels).
    for op in StreamOp:
        for cores in tpc_counts:
            result = run_stream(device=gaudi, op=op, num_elements=n * cores // 24 + 1, unroll=4, num_cores=cores)
            rows.append({"panel": "c", "op": op.value, "granularity": 256,
                         "unroll": 4, "cores": cores, "gflops": result.achieved_gflops})

    # (d, e, f) operational-intensity sweep, both devices, all cores.
    for op in StreamOp:
        for chain in _INTENSITY_CHAINS:
            for device in (gaudi, a100):
                result = run_stream(device=device, op=op, num_elements=n, unroll=4, compute_chain=chain)
                peak = device.peak_vector_flops / 1e9
                rows.append({
                    "panel": "def", "op": op.value, "device": device.name,
                    "chain": chain, "gflops": result.achieved_gflops,
                    "vector_utilization": result.achieved_gflops / peak,
                })

    summary = _summarize(rows)
    text = render_table(
        ["Panel", "Op", "Key", "GFLOPS"],
        [
            (r["panel"], r["op"],
             f"g={r.get('granularity', '-')} u={r.get('unroll', '-')} "
             f"c={r.get('cores', '-')} chain={r.get('chain', '-')} "
             f"{r.get('device', 'Gaudi-2')}",
             f"{r['gflops']:.1f}")
            for r in rows
        ],
        title="Figure 8: STREAM microbenchmarks",
    )
    return FigureResult(figure_id="fig08", title="STREAM suite",
                        rows=rows, summary=summary, text=text)


def _summarize(rows) -> dict:
    def panel(p, op):
        return [r for r in rows if r["panel"] == p and r["op"] == op]

    saturation = {
        op.value: max(r["gflops"] for r in panel("c", op.value)) for op in StreamOp
    }
    unroll_gain = {}
    for op in StreamOp:
        series = sorted(panel("b", op.value), key=lambda r: r["unroll"])
        unroll_gain[op.value] = series[-1]["gflops"] / series[0]["gflops"]
    sat_util = {}
    for op in StreamOp:
        for device in ("Gaudi-2", "A100"):
            pts = [r for r in rows if r["panel"] == "def" and r["op"] == op.value
                   and r.get("device") == device]
            sat_util[f"{op.value}_{device}"] = max(r["vector_utilization"] for r in pts)
    return {
        "chip_saturation_gflops_add": saturation["add"],
        "chip_saturation_gflops_scale": saturation["scale"],
        "chip_saturation_gflops_triad": saturation["triad"],
        "unroll_gain_add": unroll_gain["add"],
        "unroll_gain_scale": unroll_gain["scale"],
        "unroll_gain_triad": unroll_gain["triad"],
        "intensity_sat_util_add_gaudi": sat_util["add_Gaudi-2"],
        "intensity_sat_util_triad_gaudi": sat_util["triad_Gaudi-2"],
        "intensity_sat_util_add_a100": sat_util["add_A100"],
        "intensity_sat_util_triad_a100": sat_util["triad_A100"],
    }
