"""Command-line interface.

Subcommands::

    python -m repro specs                      # Table 1
    python -m repro backends                   # registered accelerator backends
    python -m repro gemm 4096 4096 4096        # one GEMM on the comparison set
    python -m repro figures [--id fig08] [--full] [--out DIR] [--workers auto]
    python -m repro serve --model 8b --backend gaudi2 --max-batch 64
    python -m repro chaos --seed 0 --fail-device 3@t=2.0
    python -m repro trace --fast --out trace.json
    python -m repro top --backend gaudi2 --samples 10
    python -m repro smi --workload llm --backend gaudi2
    python -m repro bench --check              # perf-regression smoke gate
    python -m repro surrogate fit --backend gaudi2   # certified fast-path fit
    python -m repro surrogate sweep --backend gaudi2 # design-space grid
    python -m repro reproduce --out runs/r0    # journaled full reproduction
    python -m repro resume runs/r0             # finish an interrupted run

Every report-producing subcommand renders through the shared
:func:`repro.api.render_report` path (``--format text|json|csv``).
Subcommands that simulate accept ``--audit off|sample|strict`` to turn
on the runtime invariant auditor (equivalent to ``REPRO_AUDIT``).

Platform selection is uniform: single-platform verbs (serve, trace,
top, chaos, smi) take ``--backend NAME``; comparison verbs (specs,
gemm, figures, reproduce, fleet) take a repeatable ``--backend``
naming the comparison set.  The legacy ``--device``/``--devices``
flags still parse as deprecated aliases and warn once per process.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import List, Optional

from repro.core.report import render_table
from repro.hw.backend import (
    BACKENDS_ENV,
    DEFAULT_COMPARISON,
    comparison_backends,
    resolve_backend,
)
from repro.hw.device import get_device
from repro.hw.spec import DType, spec_comparison_rows, spec_comparison_rows_for


#: Deprecated flags already warned about this process (one line each).
_WARNED_DEPRECATED: set = set()


class _DeprecatedAlias(argparse.Action):
    """A legacy flag kept as an alias of ``--backend``.

    Stores into the replacement's ``dest`` and emits a single
    deprecation warning per flag per process (satellite: per-verb
    ad-hoc platform flags fold into one ``--backend``).
    """

    def __init__(self, *args, replacement: str = "--backend", **kwargs):
        self.replacement = replacement
        kwargs.setdefault("default", argparse.SUPPRESS)
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string not in _WARNED_DEPRECATED:
            _WARNED_DEPRECATED.add(option_string)
            print(
                f"warning: {option_string} is deprecated; use {self.replacement}",
                file=sys.stderr,
            )
        if isinstance(values, list):
            current = getattr(namespace, self.dest, None) or []
            setattr(namespace, self.dest, list(current) + values)
        else:
            setattr(namespace, self.dest, values)


def _add_backend_flag(parser: argparse.ArgumentParser, *, multiple: bool,
                      deprecated: Optional[str] = None,
                      default: Optional[str] = None) -> None:
    """The unified ``--backend`` platform flag.

    ``multiple`` verbs (gemm/figures/reproduce/fleet) take a repeatable
    flag naming the comparison set; single-platform verbs take one
    value.  ``deprecated`` registers the verb's legacy flag as an alias
    that warns once.
    """
    if multiple:
        parser.add_argument(
            "--backend", action="append", default=None, metavar="NAME",
            help="registered backend (repeatable; see `repro backends`; "
                 "default: gaudi2 + a100, or REPRO_BACKENDS)",
        )
    else:
        parser.add_argument(
            "--backend", dest="device", default=default or "gaudi2",
            metavar="NAME",
            help="registered backend name (see `repro backends`)",
        )
    if deprecated:
        nargs = "+" if multiple else None
        dest = "backend" if multiple else "device"
        parser.add_argument(
            deprecated, dest=dest, action=_DeprecatedAlias, nargs=nargs,
            help=argparse.SUPPRESS,
        )


def _comparison_set(args: argparse.Namespace, export: bool = False) -> List[str]:
    """Resolve the verb's comparison set: ``--backend`` flags, the
    ``REPRO_BACKENDS`` environment, then the default pair.

    With ``export``, explicitly passed flags are published as
    ``REPRO_BACKENDS`` so process-pool figure workers inherit them
    (cleared again when the flags name the default pair).
    """
    names = getattr(args, "backend", None)
    if not names:
        return list(comparison_backends())
    keys: List[str] = []
    for name in names:
        key = resolve_backend(name)
        if key not in keys:
            keys.append(key)
    if export:
        if tuple(keys) != DEFAULT_COMPARISON:
            os.environ[BACKENDS_ENV] = ",".join(keys)
        else:
            os.environ.pop(BACKENDS_ENV, None)
    return keys


def _cmd_specs(args: argparse.Namespace) -> int:
    keys = _comparison_set(args)
    if tuple(keys) == DEFAULT_COMPARISON:
        print(render_table(
            ["Metric", "A100", "Gaudi-2", "Ratio"],
            spec_comparison_rows(),
            title="Table 1: NVIDIA A100 vs Intel Gaudi-2",
        ))
        return 0
    from repro.hw.spec import get_spec

    specs = [get_spec(key) for key in keys]
    print(render_table(
        ["Metric", *[s.name for s in specs], "Ratio (vs first)"],
        spec_comparison_rows_for(specs),
        title="Table 1: " + " vs ".join(s.name for s in specs),
    ))
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    from repro.hw.backend import REGISTRY

    rows = []
    for info in REGISTRY.infos():
        rows.append((
            info.key,
            info.display_name,
            info.vendor,
            info.family,
            ", ".join(info.aliases),
            info.summary,
        ))
    print(render_table(
        ["Key", "Name", "Vendor", "Family", "Aliases", "Summary"],
        rows,
        title="Registered backends",
    ))
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    dtype = DType(args.dtype)
    rows = []
    for name in _comparison_set(args):
        device = get_device(name)
        result = device.gemm(args.m, args.k, args.n, dtype)
        rows.append((
            device.name,
            f"{result.achieved_flops / 1e12:.1f}",
            f"{result.utilization:.1%}",
            "memory" if result.memory_bound else "compute",
            result.config_label,
        ))
    print(render_table(
        ["Device", "TFLOPS", "Utilization", "Bound", "Engine config"],
        rows,
        title=f"GEMM {args.m}x{args.k}x{args.n} ({dtype.value})",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import FIGURES, generate_all, run_figure

    _comparison_set(args, export=True)  # validate; workers inherit env
    if args.markdown:
        from repro.figures.report_md import experiments_markdown

        print(experiments_markdown(fast=not args.full))
        return 0
    figure_ids = [args.id] if args.id else sorted(FIGURES)
    out_dir: Optional[pathlib.Path] = None
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    results = None
    if args.id is None:
        results = generate_all(fast=not args.full, workers=args.workers)
    for figure_id in figure_ids:
        if results is not None:
            result = results[figure_id]
        else:
            result = run_figure(figure_id=figure_id, fast=not args.full)
        print(f"== {figure_id}: {result.title} ==")
        for key, value in result.summary.items():
            print(f"   {key} = {value:.4g}")
        if out_dir is not None:
            (out_dir / f"{figure_id}.txt").write_text(result.text + "\n")
    if out_dir is not None:
        print(f"reports written to {out_dir}/")
    return 0


def _build_serving_engine(args: argparse.Namespace, ctx=None):
    """One serving engine per the shared serve/trace/top knobs."""
    from repro.models.llama import (
        LLAMA_3_1_70B,
        LLAMA_3_1_8B,
        LlamaCostModel,
        default_decode_attention,
    )
    from repro.models.tensor_parallel import TensorParallelConfig
    from repro.serving import LlmServingEngine

    config = LLAMA_3_1_8B if args.model == "8b" else LLAMA_3_1_70B
    device = get_device(args.device)
    attention = default_decode_attention(device)
    tp = TensorParallelConfig.for_device(device, getattr(args, "tp", 1))
    engine = LlmServingEngine(
        LlamaCostModel(config, device, tp=tp),
        attention,
        max_decode_batch=args.max_batch,
        ctx=ctx,
    )
    return engine


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import render_report
    from repro.serving import dynamic_sonnet_requests

    engine = _build_serving_engine(args)
    report = engine.run(dynamic_sonnet_requests(args.requests, seed=args.seed))
    print(render_report(report, args.format))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import RunContext
    from repro.serving import dynamic_sonnet_requests

    ctx = RunContext.create(seed=args.seed, device=args.device)
    engine = _build_serving_engine(args, ctx=ctx)
    num_requests = min(args.requests, 16) if args.fast else args.requests
    engine.run(dynamic_sonnet_requests(num_requests, seed=args.seed))
    from repro.core import memo

    memo.publish_metrics(ctx.metrics)
    out = pathlib.Path(args.out)
    out.write_text(ctx.chrome_trace() + "\n")
    print(ctx.tracer_summary())
    print()
    print(ctx.metrics_summary())
    print(f"chrome trace written to {out} (open in chrome://tracing or Perfetto)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.api import RunContext
    from repro.serving import dynamic_sonnet_requests

    ctx = RunContext.create(seed=args.seed, device=args.device)
    engine = _build_serving_engine(args, ctx=ctx)
    engine.run(dynamic_sonnet_requests(args.requests, seed=args.seed))
    tracer = ctx.tracer
    closed = [s for s in tracer.spans if s.end is not None]
    total = max((s.end for s in closed), default=0.0)
    if total <= 0:
        print("no virtual time elapsed; nothing to sample")
        return 1

    def busy_fraction(name: str, w0: float, w1: float) -> float:
        # Filter by span *name*, not category: the engine category nests
        # (run > step > prefill/decode), which would multiply-count.
        busy = sum(
            max(0.0, min(s.end, w1) - max(s.start, w0))
            for s in closed
            if s.name == name or (name == "collective" and s.category == name)
        )
        return busy / (w1 - w0)

    def counter_at(name: str, w1: float) -> float:
        value = 0.0
        for sample in tracer.counters:
            if sample.name == name and sample.t <= w1:
                value = sample.value
        return value

    rows = []
    for i in range(args.samples):
        w0 = total * i / args.samples
        w1 = total * (i + 1) / args.samples
        rows.append((
            f"{w1:.4f}",
            f"{counter_at('power.watts', w1):.0f}",
            f"{counter_at('kv.allocated_blocks', w1):.0f}",
            f"{counter_at('batch.running', w1):.0f}",
            f"{busy_fraction('prefill', w0, w1):.0%}",
            f"{busy_fraction('decode.step', w0, w1):.0%}",
            f"{busy_fraction('collective', w0, w1):.0%}",
        ))
    print(render_table(
        ["Time (s)", "Power (W)", "KV blocks", "Batch",
         "Prefill", "Decode", "Collective"],
        rows,
        title=f"repro top: {args.model} on {args.device} (virtual time)",
    ))
    from repro.core import memo

    memo.publish_metrics(ctx.metrics)
    print()
    print("Cost-model caches (shape-keyed memoization):")
    print(memo.render_stats())
    from repro.serving import engine_core

    print()
    print("Vectorized engine core:")
    print(engine_core.render_counters())
    from repro.cluster import admission

    print()
    print("Admission / tenant isolation:")
    print(admission.render_counters())
    from repro.audit import get_auditor

    auditor = get_auditor()
    print()
    print("Runtime invariant auditor:")
    if auditor is None:
        print("  mode       : off (enable with --audit or REPRO_AUDIT)")
    else:
        auditor.publish_metrics(ctx.metrics)
        print(auditor.render())
    from repro import surrogate

    print()
    print("Surrogate cost models:")
    print(surrogate.render_counters())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.core.reproduce import reproduce

    _comparison_set(args, export=True)  # validate; workers inherit env
    result = reproduce(
        args.out,
        fast=not args.full,
        figure_ids=args.id or None,
        workers=args.workers,
    )
    print(result.render())
    return _print_audit_summary()


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.core.journal import RunJournal

    header = RunJournal(args.run_dir).load_header() or {}
    if header.get("tool") == "fleet":
        from repro.cluster import resume_fleet

        print(resume_fleet(args.run_dir).render())
        return _print_audit_summary()
    from repro.core.reproduce import resume

    result = resume(args.run_dir, workers=args.workers)
    print(result.render())
    return _print_audit_summary()


def _print_audit_summary() -> int:
    """Append the auditor section when auditing is on; non-zero exit
    when violations were counted (sample mode -- strict raises)."""
    from repro.audit import get_auditor

    auditor = get_auditor()
    if auditor is None:
        return 0
    print()
    print("Runtime invariant auditor:")
    print(auditor.render())
    return 1 if auditor.total_violations else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.api import render_report
    from repro.faults import ChaosConfig, FaultPlan, run_chaos

    plan = FaultPlan.from_specs(
        seed=args.seed,
        fail_device=args.fail_device,
        degrade_link=args.degrade_link,
        flap_link=args.flap_link,
        throttle_hbm=args.throttle_hbm,
        straggler=args.straggler,
        kernel_fault_rate=args.kernel_fault_rate,
    )
    config = ChaosConfig(
        model=args.model,
        device=args.device,
        tp=args.tp,
        max_decode_batch=args.max_batch,
        num_requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        deadline=args.deadline,
        max_retries=args.max_retries,
        checkpoint_interval=args.checkpoint_interval,
        num_kv_blocks=args.kv_blocks,
        admission_watermark=args.watermark,
        plan=plan,
    )
    report = run_chaos(config=config)
    fmt = "json" if args.json else args.format
    print(render_report(report, fmt))
    return 0


def _parse_nodes_spec(spec: str):
    """``"4x gaudi2,2x a100"`` -> ``(("gaudi2", 4), ("a100", 2))``."""
    import re

    pools = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        match = re.fullmatch(r"(\d+)\s*x\s*([A-Za-z0-9_-]+)", part)
        if match is None:
            raise SystemExit(
                f"repro fleet: bad --nodes pool {part!r} "
                "(expected e.g. '4x gaudi2,2x a100')"
            )
        pools.append((match.group(2), int(match.group(1))))
    if not pools:
        raise SystemExit("repro fleet: --nodes names no pools")
    return tuple(pools)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.api import RunContext, render_report
    from repro.cluster import (
        AdmissionPolicy,
        AutoscalePolicy,
        BreakerPolicy,
        FleetConfig,
        NodeFaultPlan,
        UpgradePlan,
        parse_tenants_spec,
        run_fleet,
    )
    from repro.serving.request import RetryPolicy

    tenants = parse_tenants_spec(args.tenants) if args.tenants else ()
    admission = None
    if args.admission:
        if not tenants:
            raise SystemExit("repro fleet: --admission requires --tenants")
        admission = AdmissionPolicy(
            target_queue_delay=args.admission_target_delay,
            shed_queue_delay=args.shed_delay,
            evaluate_interval=args.admission_interval,
            brownout_max_new_tokens=args.brownout_tokens,
            max_inflight_per_node=args.max_inflight,
            max_queue_delay=args.max_queue_delay,
        )
    breaker = None
    if args.breaker:
        breaker = BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown,
        )
    upgrade = UpgradePlan.from_spec(args.upgrade) if args.upgrade else None
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(
            target_p99_ttft=args.slo_ttft,
            target_p99_tpot=args.slo_tpot,
            evaluate_interval=args.autoscale_interval,
            cooldown=args.autoscale_cooldown,
            min_nodes=args.min_nodes,
            max_nodes=args.max_nodes,
            provision_delay=args.provision_delay,
        )
    if args.backend:
        # --backend g2 --backend a100 --backend a100 -> 1x g2, 2x a100
        pools: List[tuple] = []
        for name in args.backend:
            key = resolve_backend(name)
            for i, (pool, count) in enumerate(pools):
                if pool == key:
                    pools[i] = (pool, count + 1)
                    break
            else:
                pools.append((key, 1))
        nodes = tuple(pools)
    else:
        nodes = _parse_nodes_spec(" ".join(args.nodes))
    config = FleetConfig(
        nodes=nodes,
        model=args.model,
        tp=args.tp,
        max_decode_batch=args.max_batch,
        num_kv_blocks=args.kv_blocks,
        num_requests=args.requests,
        rate=args.rate,
        diurnal=args.diurnal,
        diurnal_period=args.diurnal_period,
        seed=args.seed,
        policy=args.policy,
        timeout=args.timeout,
        retry=RetryPolicy(max_retries=args.max_retries, jitter=args.jitter),
        hedge_after=args.hedge_after,
        probe_interval=args.probe_interval,
        deadline=args.deadline,
        autoscale=autoscale,
        tenants=tenants,
        admission=admission,
        breaker=breaker,
        upgrade=upgrade,
        plan=NodeFaultPlan.from_spec(args.chaos) if args.chaos else NodeFaultPlan(),
    )
    ctx = RunContext.create(seed=args.seed) if args.trace_out else None
    report = run_fleet(config, journal=args.out, ctx=ctx)
    if args.trace_out:
        out = pathlib.Path(args.trace_out)
        out.write_text(ctx.chrome_trace() + "\n")
        print(f"chrome trace written to {out}", file=sys.stderr)
    print(render_report(report, args.format))
    if args.format == "text":
        return _print_audit_summary()
    # Machine-readable formats keep stdout parseable; violations still
    # drive the exit code (strict mode raises before reaching here).
    from repro.audit import get_auditor

    auditor = get_auditor()
    return 1 if auditor is not None and auditor.total_violations else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    cases = args.case or None
    result = bench.run_bench(
        fast=not args.full, repeats=args.repeats, cases=cases,
        backend=args.backend,
    )
    print(bench.render_result(result))
    if args.out or not args.check:
        path = bench.write_result(result, args.out)
        print(f"bench result written to {path}")
    exit_code = 0
    baseline_path = pathlib.Path(args.baseline)
    if args.check and result.get("backend"):
        print(f"note: baseline gate skipped: result timed on backend "
              f"{result['backend']!r}, baseline is gaudi2")
        return 0
    if args.check:
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; nothing to check against")
            return 1
        ok, rows = bench.compare_to_baseline(
            result, bench.load_baseline(str(baseline_path)), tolerance=args.tolerance
        )
        print()
        print(bench.render_comparison(rows, args.tolerance))
        if not ok:
            print(f"FAIL: at least one case regressed past {args.tolerance:g}x "
                  "(calibration-normalized)")
            exit_code = 1
        else:
            print("OK: no case regressed past the tolerance")
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        bench.write_result(result, str(baseline_path))
        print(f"baseline updated at {baseline_path}")
    return exit_code


def _surrogate_base_keys(args: argparse.Namespace) -> List[str]:
    """The verb's backend list with any ``@surrogate`` suffix stripped
    (the verb always operates on the *base* platform's surrogate)."""
    return [key.split("@")[0] for key in _comparison_set(args)]


def _cmd_surrogate(args: argparse.Namespace) -> int:
    from repro import surrogate as sg

    if args.action == "fit":
        import time as _time

        for base in _surrogate_base_keys(args):
            started = _time.perf_counter()
            model = sg.fit_backend(base, seed=args.seed, workers=args.workers)
            elapsed = _time.perf_counter() - started
            sg.set_surrogate_model(base, model)
            path = sg.save_model(model, sg.artifact_path(base, args.out))
            print(f"fitted {base}@surrogate in {elapsed:.2f}s -> {path}")
        print()
        print("Surrogate cost models:")
        print(sg.render_counters())
        return 0

    if args.action == "validate":
        exit_code = 0
        for base in _surrogate_base_keys(args):
            path = sg.artifact_path(base, args.out)
            model = sg.load_model(path)
            report = sg.validate_model(model, seed=args.seed, points=args.spot)
            rows = [(
                name, str(entry["points"]),
                f"{entry['max_rel_err']:.3%}", f"{entry['mean_rel_err']:.3%}",
                f"{entry['tolerance']:.0%}", "ok" if entry["ok"] else "FAIL",
            ) for name, entry in report.items()]
            print(render_table(
                ["Surface", "Spot points", "Max err", "Mean err", "Tol", "Verdict"],
                rows,
                title=f"surrogate validate: {base}@surrogate ({path})",
            ))
            if not all(entry["ok"] for entry in report.values()):
                exit_code = 1
        print("OK: every surface within tolerance" if exit_code == 0
              else "FAIL: at least one surface exceeded its tolerance")
        return exit_code

    # action == "sweep"
    from repro.surrogate.sweep import design_space_sweep

    base = _surrogate_base_keys(args)[0]
    result = design_space_sweep(
        base, fast=not args.full, exact=args.exact,
    )
    rows = [(
        str(r["tp"]), str(r["batch"]), str(r["context"]),
        f"{r['step_time'] * 1e3:.3f}", f"{r['throughput']:.0f}",
        f"{r['ttft'] * 1e3:.1f}", r["geometry"],
    ) for r in result["rows"]]
    print(render_table(
        ["TP", "Batch", "Context", "Step (ms)", "Tok/s", "TTFT (ms)", "Geometry"],
        rows,
        title=f"design-space sweep: {base} ({result['mode']}, "
              f"{result['cells']} cells)",
    ))
    best = result["best"]
    print(f"best cell: tp={best['tp']} batch={best['batch']} "
          f"context={best['context']} -> {best['throughput']:.0f} tok/s, "
          f"TTFT {best['ttft'] * 1e3:.1f} ms")
    return _print_audit_summary()


def _cmd_smi(args: argparse.Namespace) -> int:
    from repro.hw.power import ActivityAccumulator
    from repro.models.dlrm import DlrmCostModel, RM2_CONFIG
    from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
    from repro.tools.smi import smi

    device = get_device(args.device)
    if args.workload == "llm":
        model = LlamaCostModel(LLAMA_3_1_8B, device)
        phase = model.decode_step(32, 1024)
        activity = phase.activity.profile(phase.time)
    else:
        dlrm = DlrmCostModel(RM2_CONFIG, device)
        acc = ActivityAccumulator()
        time = dlrm.embedding_time(4096, acc)
        activity = acc.profile(time)
    print(smi(device, activity).render())
    return 0


def _add_audit_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit", default=None, choices=["off", "sample", "strict"],
        help="runtime invariant auditor mode (same as REPRO_AUDIT; "
             "strict raises on the first violation)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulator-based reproduction of 'Debunking the CUDA Myth' (ISCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    specs = sub.add_parser("specs", help="print the Table 1 spec comparison")
    _add_backend_flag(specs, multiple=True)
    specs.set_defaults(fn=_cmd_specs)

    backends = sub.add_parser(
        "backends", help="list the registered accelerator backends"
    )
    backends.set_defaults(fn=_cmd_backends)

    gemm = sub.add_parser("gemm", help="run one GEMM shape on the device models")
    gemm.add_argument("m", type=int)
    gemm.add_argument("k", type=int)
    gemm.add_argument("n", type=int)
    gemm.add_argument("--dtype", default="bf16", choices=[d.value for d in DType])
    _add_backend_flag(gemm, multiple=True, deprecated="--devices")
    gemm.set_defaults(fn=_cmd_gemm)

    figures = sub.add_parser("figures", help="regenerate paper tables/figures")
    figures.add_argument("--id", help="one figure id (default: all)")
    figures.add_argument("--full", action="store_true", help="full parameter grids")
    figures.add_argument("--out", help="directory for rendered reports")
    figures.add_argument("--markdown", action="store_true",
                         help="print the live paper-vs-measured table")
    figures.add_argument("--workers", default=None,
                         help="process-pool size for regenerating all figures "
                              "(an int or 'auto'; default: REPRO_WORKERS or serial)")
    _add_backend_flag(figures, multiple=True)
    _add_audit_flag(figures)
    figures.set_defaults(fn=_cmd_figures)

    reproduce = sub.add_parser(
        "reproduce",
        help="journaled, crash-safe reproduction of every figure",
        description=(
            "Run the full figure set, durably journaling each completed "
            "figure under the run directory.  If the process dies, "
            "`repro resume <run-dir>` re-runs only the missing figures "
            "and produces byte-identical report.txt/report.json."
        ),
    )
    reproduce.add_argument("--out", default="runs/reproduce",
                           help="run directory for the journal and reports")
    reproduce.add_argument("--full", action="store_true",
                           help="full parameter grids (default: fast)")
    reproduce.add_argument("--id", action="append", default=[],
                           help="one figure id (repeatable; default: all)")
    reproduce.add_argument("--workers", default=None,
                           help="process-pool size (an int or 'auto')")
    _add_backend_flag(reproduce, multiple=True)
    _add_audit_flag(reproduce)
    reproduce.set_defaults(fn=_cmd_reproduce)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted `repro reproduce` run from its journal",
    )
    resume.add_argument("run_dir", help="run directory holding journal.jsonl")
    resume.add_argument("--workers", default=None,
                        help="process-pool size (an int or 'auto')")
    _add_audit_flag(resume)
    resume.set_defaults(fn=_cmd_resume)

    serve = sub.add_parser("serve", help="run the vLLM-style serving simulation")
    serve.add_argument("--model", default="8b", choices=["8b", "70b"])
    _add_backend_flag(serve, multiple=False, deprecated="--device")
    serve.add_argument("--tp", type=int, default=1, help="tensor-parallel degree")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--format", default="text", choices=["text", "json", "csv"])
    _add_audit_flag(serve)
    serve.set_defaults(fn=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="traced serving run; exports chrome://tracing JSON",
        description=(
            "Run the serving simulation with a RunContext bound, then "
            "export the virtual-clock trace (engine steps, prefill/decode "
            "phases, scheduler events, KV-pool occupancy, collectives, "
            "and per-step power) as chrome://tracing JSON."
        ),
    )
    trace.add_argument("--model", default="8b", choices=["8b", "70b"])
    _add_backend_flag(trace, multiple=False, deprecated="--device")
    trace.add_argument("--tp", type=int, default=4, help="tensor-parallel degree")
    trace.add_argument("--max-batch", type=int, default=32)
    trace.add_argument("--requests", type=int, default=64)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--fast", action="store_true",
                       help="cap the workload at 16 requests")
    trace.add_argument("--out", default="trace.json",
                       help="output path for the chrome trace")
    _add_audit_flag(trace)
    trace.set_defaults(fn=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="hl-smi/top style sampled view of a traced serving run",
    )
    top.add_argument("--model", default="8b", choices=["8b", "70b"])
    _add_backend_flag(top, multiple=False, deprecated="--device")
    top.add_argument("--tp", type=int, default=4, help="tensor-parallel degree")
    top.add_argument("--max-batch", type=int, default=32)
    top.add_argument("--requests", type=int, default=32)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--samples", type=int, default=10,
                     help="number of virtual-time sampling windows")
    _add_audit_flag(top)
    top.set_defaults(fn=_cmd_top)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injected serving run with graceful degradation",
        description=(
            "Run the vLLM-style serving simulation under a seeded fault "
            "plan: device failures, link degradation/flaps, HBM "
            "throttling, stragglers, and transient kernel faults. "
            "Example: repro chaos --seed 0 --fail-device 3@t=2.0"
        ),
    )
    chaos.add_argument("--model", default="8b", choices=["8b", "70b"])
    _add_backend_flag(chaos, multiple=False, deprecated="--device")
    chaos.add_argument("--tp", type=int, default=8,
                       help="tensor-parallel degree (the fault domain size)")
    chaos.add_argument("--max-batch", type=int, default=32)
    chaos.add_argument("--requests", type=int, default=128)
    chaos.add_argument("--rate", type=float, default=None,
                       help="Poisson offered rate in req/s (default: backlog)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--deadline", type=float, default=None,
                       help="TTFT SLO in seconds (drives retries and goodput)")
    chaos.add_argument("--max-retries", type=int, default=3)
    chaos.add_argument("--checkpoint-interval", type=int, default=32,
                       help="tokens between recompute checkpoints")
    chaos.add_argument("--kv-blocks", type=int, default=None,
                       help="constrain the KV pool to force shedding")
    chaos.add_argument("--watermark", type=float, default=1.0,
                       help="KV-pool admission watermark in (0, 1]")
    chaos.add_argument("--fail-device", action="append", default=[],
                       metavar="D@t=T[,recover=T]",
                       help="kill device D at time T (repeatable)")
    chaos.add_argument("--degrade-link", action="append", default=[],
                       metavar="A-B@t=T,factor=F[,until=T]")
    chaos.add_argument("--flap-link", action="append", default=[],
                       metavar="A-B@t=T,period=P,cycles=N")
    chaos.add_argument("--throttle-hbm", action="append", default=[],
                       metavar="F@t=T[,until=T]")
    chaos.add_argument("--straggler", action="append", default=[],
                       metavar="D@t=T,factor=F[,until=T]")
    chaos.add_argument("--kernel-fault-rate", type=float, default=0.0,
                       help="per-step transient kernel-failure probability")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON (same as --format json)")
    chaos.add_argument("--format", default="text", choices=["text", "json", "csv"])
    _add_audit_flag(chaos)
    chaos.set_defaults(fn=_cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="multi-node fleet simulation with chaos, failover, autoscaling",
        description=(
            "Simulate a heterogeneous serving fleet on one virtual clock: "
            "Gaudi-2/A100 node pools behind a health-checked gateway "
            "(timeout -> jittered-backoff retry -> failover -> shed, "
            "optional hedging), node-level chaos, and SLO-driven "
            "autoscaling. Example: repro fleet --nodes 4x gaudi2,2x a100 "
            "--chaos 'crash:gaudi2-1@t=2,recover=6' --audit strict"
        ),
    )
    fleet.add_argument("--backend", action="append", default=None, metavar="NAME",
                       help="shorthand for one single-node pool per backend "
                            "(repeatable; overrides --nodes)")
    fleet.add_argument("--nodes", nargs="+", default=["2x", "gaudi2"],
                       metavar="SPEC",
                       help="pools as 'Nx device' comma-separated, "
                            "e.g. '4x gaudi2,2x a100'")
    fleet.add_argument("--model", default="8b", choices=["8b", "70b"])
    fleet.add_argument("--tp", type=int, default=8,
                       help="tensor-parallel degree inside each node")
    fleet.add_argument("--max-batch", type=int, default=32)
    fleet.add_argument("--kv-blocks", type=int, default=None,
                       help="constrain each node's KV pool to force shedding")
    fleet.add_argument("--requests", type=int, default=64)
    fleet.add_argument("--rate", type=float, default=8.0,
                       help="offered rate in req/s across the fleet")
    fleet.add_argument("--diurnal", action="store_true",
                       help="sinusoidally-modulated arrivals (exercises "
                            "the autoscaler)")
    fleet.add_argument("--diurnal-period", type=float, default=60.0)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--policy", default="round-robin",
                       choices=["round-robin", "least-loaded", "latency-aware"],
                       help="gateway routing policy")
    fleet.add_argument("--chaos", default=None, metavar="PLAN",
                       help="';'-separated node fault events, e.g. "
                            "'crash:gaudi2-1@t=2,recover=6;"
                            "brownout:a100-0@t=1,factor=0.5,until=4'")
    fleet.add_argument("--timeout", type=float, default=None,
                       help="per-attempt gateway timeout in seconds")
    fleet.add_argument("--max-retries", type=int, default=3)
    fleet.add_argument("--jitter", type=float, default=0.5,
                       help="backoff jitter fraction in [0, 1]")
    fleet.add_argument("--hedge-after", type=float, default=None,
                       help="hedge a second attempt after this many "
                            "quiet seconds")
    fleet.add_argument("--probe-interval", type=float, default=1.0,
                       help="gateway health-probe period in seconds")
    fleet.add_argument("--deadline", type=float, default=None,
                       help="engine-level TTFT SLO inside each node")
    fleet.add_argument("--tenants", default=None, metavar="SPEC",
                       help="';'-separated tenant traffic classes, e.g. "
                            "'gold:tier=0,share=0.25,weight=4,slo=2;"
                            "bronze:tier=2,rate=4,burst=8' "
                            "(keys: tier, share, weight, rate, burst, slo)")
    fleet.add_argument("--admission", action="store_true",
                       help="gateway admission control: per-tenant quotas, "
                            "weighted-fair queueing, and brownout/shed "
                            "overload response (requires --tenants)")
    fleet.add_argument("--admission-target-delay", type=float, default=0.5,
                       help="queue delay entering brownout (seconds)")
    fleet.add_argument("--shed-delay", type=float, default=2.0,
                       help="queue delay entering overload shedding (seconds)")
    fleet.add_argument("--admission-interval", type=float, default=0.25,
                       help="admission evaluation tick period (seconds)")
    fleet.add_argument("--brownout-tokens", type=int, default=64,
                       help="per-attempt new-token cap during brownout")
    fleet.add_argument("--max-inflight", type=int, default=None,
                       help="gateway concurrency cap per routable node "
                            "(default: --max-batch)")
    fleet.add_argument("--max-queue-delay", type=float, default=30.0,
                       help="hard bound on gateway queueing before any-tier "
                            "shedding")
    fleet.add_argument("--breaker", action="store_true",
                       help="per-node circuit breakers on consecutive "
                            "timeouts/failures")
    fleet.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures that open a breaker")
    fleet.add_argument("--breaker-cooldown", type=float, default=2.0,
                       help="seconds a breaker stays open before probing")
    fleet.add_argument("--upgrade", default=None, metavar="SPEC",
                       help="rolling-upgrade drain schedule "
                            "'start=T[,restart=D][,poll=P]' -- drains each "
                            "node in turn with a zero-loss audit")
    fleet.add_argument("--autoscale", action="store_true",
                       help="enable the SLO-driven autoscaler")
    fleet.add_argument("--slo-ttft", type=float, default=5.0,
                       help="autoscaler p99 TTFT target in seconds")
    fleet.add_argument("--slo-tpot", type=float, default=None,
                       help="autoscaler p99 TPOT target in seconds")
    fleet.add_argument("--autoscale-interval", type=float, default=2.0)
    fleet.add_argument("--autoscale-cooldown", type=float, default=4.0)
    fleet.add_argument("--min-nodes", type=int, default=1)
    fleet.add_argument("--max-nodes", type=int, default=8)
    fleet.add_argument("--provision-delay", type=float, default=1.0)
    fleet.add_argument("--out", default=None,
                       help="run directory: journal the run for "
                            "`repro resume`")
    fleet.add_argument("--trace-out", default=None,
                       help="write a chrome://tracing JSON of the fleet run")
    fleet.add_argument("--format", default="text", choices=["text", "json", "csv"])
    _add_audit_flag(fleet)
    fleet.set_defaults(fn=_cmd_fleet)

    bench = sub.add_parser(
        "bench",
        help="time canonical simulator workloads; gate against a baseline",
        description=(
            "Performance-regression harness for the simulator itself: times "
            "figure grids, serving runs, and a chaos load test with cleared "
            "cost caches, writes BENCH_<stamp>.json, and (with --check) "
            "fails when a case regresses past the tolerance relative to the "
            "committed baseline, normalized by a host-speed calibration loop."
        ),
    )
    bench.add_argument("--full", action="store_true",
                       help="full-size workloads (default: fast CI-sized grids)")
    bench.add_argument("--check", action="store_true",
                       help="compare against the baseline and exit non-zero "
                            "on regression; skips writing BENCH_<stamp>.json")
    bench.add_argument("--tolerance", type=float, default=2.0,
                       help="allowed normalized slowdown factor (default 2.0)")
    bench.add_argument("--baseline", default="benchmarks/perf/baseline.json",
                       help="baseline result document to compare against")
    bench.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline file with this run's numbers")
    bench.add_argument("--repeats", type=int, default=3,
                       help="samples per case; the best is kept (default 3)")
    bench.add_argument("--case", action="append", default=[],
                       help="run only this case (repeatable)")
    bench.add_argument("--backend", default=None, metavar="NAME",
                       help="backend the serving/chaos cases run on "
                            "(default gaudi2; non-default results are "
                            "never gated against the baseline)")
    bench.add_argument("--out", default=None,
                       help="explicit output path instead of BENCH_<stamp>.json")
    bench.set_defaults(fn=_cmd_bench)

    surrogate = sub.add_parser(
        "surrogate",
        help="fit / validate / sweep the certified surrogate cost models",
        description=(
            "Fitted fast-path predictors for the exact per-backend cost "
            "models (ISSUE 10).  `fit` samples the exact models, fits "
            "per-surface predictors, and writes a checksummed artifact "
            "with held-out validation certificates; `validate` reloads "
            "an artifact (checksum + certificate enforcement) and "
            "spot-checks it on fresh samples; `sweep` runs the "
            "design-space grid at surrogate speed (--exact for the "
            "exact twin)."
        ),
    )
    surrogate_sub = surrogate.add_subparsers(dest="action", required=True)

    surrogate_fit = surrogate_sub.add_parser(
        "fit", help="fit + certify + save one artifact per backend"
    )
    _add_backend_flag(surrogate_fit, multiple=True)
    surrogate_fit.add_argument("--out", default=None,
                               help="artifact directory "
                                    "(default artifacts/surrogate)")
    surrogate_fit.add_argument("--seed", type=int, default=0,
                               help="holdout sampling seed")
    surrogate_fit.add_argument("--workers", default=None,
                               help="process-pool size for per-surface fits "
                                    "(an int or 'auto'; bit-identical to "
                                    "serial)")
    _add_audit_flag(surrogate_fit)
    surrogate_fit.set_defaults(fn=_cmd_surrogate, action="fit")

    surrogate_validate = surrogate_sub.add_parser(
        "validate", help="reload artifacts and spot-check against the "
                         "exact models"
    )
    _add_backend_flag(surrogate_validate, multiple=True)
    surrogate_validate.add_argument("--out", default=None,
                                    help="artifact directory "
                                         "(default artifacts/surrogate)")
    surrogate_validate.add_argument("--seed", type=int, default=1,
                                    help="spot-check sampling seed")
    surrogate_validate.add_argument("--spot", type=int, default=32,
                                    help="fresh spot samples per surface")
    _add_audit_flag(surrogate_validate)
    surrogate_validate.set_defaults(fn=_cmd_surrogate, action="validate")

    surrogate_sweep = surrogate_sub.add_parser(
        "sweep", help="TP x batch x context design-space grid at "
                      "surrogate speed"
    )
    _add_backend_flag(surrogate_sweep, multiple=True)
    surrogate_sweep.add_argument("--full", action="store_true",
                                 help="full design-space grid "
                                      "(default: fast subset)")
    surrogate_sweep.add_argument("--exact", action="store_true",
                                 help="price every cell through the exact "
                                      "models instead of the surrogate")
    _add_audit_flag(surrogate_sweep)
    surrogate_sweep.set_defaults(fn=_cmd_surrogate, action="sweep")

    smi = sub.add_parser("smi", help="hl-smi / nvidia-smi style readout")
    _add_backend_flag(smi, multiple=False, deprecated="--device")
    smi.add_argument("--workload", default="llm", choices=["llm", "recsys"])
    smi.set_defaults(fn=_cmd_smi)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "audit", None):
        from repro.audit import configure

        configure(args.audit)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
