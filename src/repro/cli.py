"""Command-line interface.

Subcommands::

    python -m repro specs                      # Table 1
    python -m repro gemm 4096 4096 4096        # one GEMM on both devices
    python -m repro figures [--id fig08] [--full] [--out DIR]
    python -m repro serve --model 8b --device gaudi2 --max-batch 64
    python -m repro chaos --seed 0 --fail-device 3@t=2.0
    python -m repro smi --workload llm --device gaudi2
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core.report import render_table
from repro.hw.device import get_device
from repro.hw.spec import DType, spec_comparison_rows


def _cmd_specs(_args: argparse.Namespace) -> int:
    print(render_table(
        ["Metric", "A100", "Gaudi-2", "Ratio"],
        spec_comparison_rows(),
        title="Table 1: NVIDIA A100 vs Intel Gaudi-2",
    ))
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    dtype = DType(args.dtype)
    rows = []
    for name in args.devices:
        device = get_device(name)
        result = device.gemm(args.m, args.k, args.n, dtype)
        rows.append((
            device.name,
            f"{result.achieved_flops / 1e12:.1f}",
            f"{result.utilization:.1%}",
            "memory" if result.memory_bound else "compute",
            result.config_label,
        ))
    print(render_table(
        ["Device", "TFLOPS", "Utilization", "Bound", "Engine config"],
        rows,
        title=f"GEMM {args.m}x{args.k}x{args.n} ({dtype.value})",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import FIGURES, run_figure

    if args.markdown:
        from repro.figures.report_md import experiments_markdown

        print(experiments_markdown(fast=not args.full))
        return 0
    figure_ids = [args.id] if args.id else sorted(FIGURES)
    out_dir: Optional[pathlib.Path] = None
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    for figure_id in figure_ids:
        result = run_figure(figure_id, fast=not args.full)
        print(f"== {figure_id}: {result.title} ==")
        for key, value in result.summary.items():
            print(f"   {key} = {value:.4g}")
        if out_dir is not None:
            (out_dir / f"{figure_id}.txt").write_text(result.text + "\n")
    if out_dir is not None:
        print(f"reports written to {out_dir}/")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.models.llama import (
        LLAMA_3_1_70B,
        LLAMA_3_1_8B,
        DecodeAttention,
        LlamaCostModel,
    )
    from repro.serving import LlmServingEngine, dynamic_sonnet_requests

    config = LLAMA_3_1_8B if args.model == "8b" else LLAMA_3_1_70B
    device = get_device(args.device)
    attention = (
        DecodeAttention.PAGED_CUDA
        if device.name == "A100"
        else DecodeAttention.PAGED_OPT
    )
    engine = LlmServingEngine(
        LlamaCostModel(config, device), attention, max_decode_batch=args.max_batch
    )
    report = engine.run(dynamic_sonnet_requests(args.requests, seed=args.seed))
    print(f"{config.name} on {device.name} (max decode batch {args.max_batch}):")
    print(f"  throughput : {report.throughput_tokens_per_s:.0f} tokens/s")
    print(f"  mean TTFT  : {report.mean_ttft:.3f} s")
    print(f"  mean TPOT  : {report.mean_tpot * 1e3:.1f} ms")
    print(f"  power      : {report.average_power:.0f} W")
    print(f"  energy     : {report.energy_per_token * 1e3:.2f} mJ/token")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults import ChaosConfig, FaultPlan, run_chaos

    plan = FaultPlan.from_specs(
        seed=args.seed,
        fail_device=args.fail_device,
        degrade_link=args.degrade_link,
        flap_link=args.flap_link,
        throttle_hbm=args.throttle_hbm,
        straggler=args.straggler,
        kernel_fault_rate=args.kernel_fault_rate,
    )
    config = ChaosConfig(
        model=args.model,
        device=args.device,
        tp=args.tp,
        max_decode_batch=args.max_batch,
        num_requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        deadline=args.deadline,
        max_retries=args.max_retries,
        checkpoint_interval=args.checkpoint_interval,
        num_kv_blocks=args.kv_blocks,
        admission_watermark=args.watermark,
        plan=plan,
    )
    report = run_chaos(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_smi(args: argparse.Namespace) -> int:
    from repro.hw.power import ActivityAccumulator
    from repro.models.dlrm import DlrmCostModel, RM2_CONFIG
    from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
    from repro.tools.smi import hl_smi, nvidia_smi

    device = get_device(args.device)
    if args.workload == "llm":
        model = LlamaCostModel(LLAMA_3_1_8B, device)
        phase = model.decode_step(32, 1024)
        activity = phase.activity.profile(phase.time)
    else:
        dlrm = DlrmCostModel(RM2_CONFIG, device)
        acc = ActivityAccumulator()
        time = dlrm.embedding_time(4096, acc)
        activity = acc.profile(time)
    reader = hl_smi if device.spec.vendor == "Intel" else nvidia_smi
    print(reader(activity, device.spec).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulator-based reproduction of 'Debunking the CUDA Myth' (ISCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("specs", help="print the Table 1 spec comparison").set_defaults(
        fn=_cmd_specs
    )

    gemm = sub.add_parser("gemm", help="run one GEMM shape on the device models")
    gemm.add_argument("m", type=int)
    gemm.add_argument("k", type=int)
    gemm.add_argument("n", type=int)
    gemm.add_argument("--dtype", default="bf16", choices=[d.value for d in DType])
    gemm.add_argument("--devices", nargs="+", default=["gaudi2", "a100"])
    gemm.set_defaults(fn=_cmd_gemm)

    figures = sub.add_parser("figures", help="regenerate paper tables/figures")
    figures.add_argument("--id", help="one figure id (default: all)")
    figures.add_argument("--full", action="store_true", help="full parameter grids")
    figures.add_argument("--out", help="directory for rendered reports")
    figures.add_argument("--markdown", action="store_true",
                         help="print the live paper-vs-measured table")
    figures.set_defaults(fn=_cmd_figures)

    serve = sub.add_parser("serve", help="run the vLLM-style serving simulation")
    serve.add_argument("--model", default="8b", choices=["8b", "70b"])
    serve.add_argument("--device", default="gaudi2")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(fn=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injected serving run with graceful degradation",
        description=(
            "Run the vLLM-style serving simulation under a seeded fault "
            "plan: device failures, link degradation/flaps, HBM "
            "throttling, stragglers, and transient kernel faults. "
            "Example: repro chaos --seed 0 --fail-device 3@t=2.0"
        ),
    )
    chaos.add_argument("--model", default="8b", choices=["8b", "70b"])
    chaos.add_argument("--device", default="gaudi2", choices=["gaudi2", "a100"])
    chaos.add_argument("--tp", type=int, default=8,
                       help="tensor-parallel degree (the fault domain size)")
    chaos.add_argument("--max-batch", type=int, default=32)
    chaos.add_argument("--requests", type=int, default=128)
    chaos.add_argument("--rate", type=float, default=None,
                       help="Poisson offered rate in req/s (default: backlog)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--deadline", type=float, default=None,
                       help="TTFT SLO in seconds (drives retries and goodput)")
    chaos.add_argument("--max-retries", type=int, default=3)
    chaos.add_argument("--checkpoint-interval", type=int, default=32,
                       help="tokens between recompute checkpoints")
    chaos.add_argument("--kv-blocks", type=int, default=None,
                       help="constrain the KV pool to force shedding")
    chaos.add_argument("--watermark", type=float, default=1.0,
                       help="KV-pool admission watermark in (0, 1]")
    chaos.add_argument("--fail-device", action="append", default=[],
                       metavar="D@t=T[,recover=T]",
                       help="kill device D at time T (repeatable)")
    chaos.add_argument("--degrade-link", action="append", default=[],
                       metavar="A-B@t=T,factor=F[,until=T]")
    chaos.add_argument("--flap-link", action="append", default=[],
                       metavar="A-B@t=T,period=P,cycles=N")
    chaos.add_argument("--throttle-hbm", action="append", default=[],
                       metavar="F@t=T[,until=T]")
    chaos.add_argument("--straggler", action="append", default=[],
                       metavar="D@t=T,factor=F[,until=T]")
    chaos.add_argument("--kernel-fault-rate", type=float, default=0.0,
                       help="per-step transient kernel-failure probability")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    chaos.set_defaults(fn=_cmd_chaos)

    smi = sub.add_parser("smi", help="hl-smi / nvidia-smi style readout")
    smi.add_argument("--device", default="gaudi2")
    smi.add_argument("--workload", default="llm", choices=["llm", "recsys"])
    smi.set_defaults(fn=_cmd_smi)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
