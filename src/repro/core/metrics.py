"""Metric helpers used across experiments and figures."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def tflops(flops: float, seconds: float) -> float:
    """Achieved TFLOPS."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops / seconds / 1e12


def utilization(achieved: float, peak: float) -> float:
    """Achieved / peak, as a fraction."""
    if peak <= 0:
        raise ValueError("peak must be positive")
    return achieved / peak


def ratio(numerator: float, denominator: float) -> float:
    """Plain ratio with a divide-by-zero guard."""
    if denominator == 0:
        raise ZeroDivisionError("denominator is zero")
    return numerator / denominator


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain arithmetic mean."""
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)


def bandwidth_utilization(useful_bytes: float, seconds: float, peak_bandwidth: float) -> float:
    """Useful bandwidth as a fraction of peak."""
    if seconds <= 0 or peak_bandwidth <= 0:
        raise ValueError("seconds and peak_bandwidth must be positive")
    return (useful_bytes / seconds) / peak_bandwidth


def goodput_fraction(good_units: float, total_units: float) -> float:
    """Share of delivered work that met its service objective.

    ``total_units == 0`` (an empty or fully-shed run) yields 0.0 rather
    than an error: resilience reports must render for any outcome.
    """
    if good_units < 0 or total_units < 0:
        raise ValueError("units must be non-negative")
    if good_units > total_units:
        raise ValueError("good_units cannot exceed total_units")
    return good_units / total_units if total_units else 0.0


def slo_violation_rate(latencies: Sequence[float], slo: float) -> float:
    """Fraction of latencies above the SLO (empty input counts 0.0)."""
    if slo <= 0:
        raise ValueError("slo must be positive")
    if not latencies:
        return 0.0
    return sum(1 for latency in latencies if latency > slo) / len(latencies)


def percentile(values: Iterable[float], q: float) -> float:
    """Simple nearest-rank percentile (q in [0, 100])."""
    data = sorted(values)
    if not data:
        raise ValueError("need at least one value")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, math.ceil(q / 100 * len(data)))
    return data[rank - 1]
