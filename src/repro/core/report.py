"""Plain-text rendering of tables and heatmaps.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output readable in a terminal and in the
captured ``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: Shade ramp for text heatmaps (cold -> warm).
_SHADES = " .:-=+*#%@"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: Optional[str] = None
) -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ValueError("need at least one header")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(
    grid: Sequence[Sequence[float]],
    row_labels: Sequence,
    col_labels: Sequence,
    title: Optional[str] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Numeric heatmap with a shade column per cell (warmer = higher)."""
    if not grid:
        raise ValueError("grid is empty")
    flat = [v for row in grid for v in row]
    lo, hi = min(flat), max(flat)
    span = hi - lo if hi > lo else 1.0

    def shade(value: float) -> str:
        index = int((value - lo) / span * (len(_SHADES) - 1))
        return _SHADES[index]

    label_width = max(len(str(lbl)) for lbl in row_labels)
    cell_width = max(
        max(len(fmt.format(v)) for v in flat) + 2,
        max(len(str(c)) for c in col_labels) + 1,
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (label_width + 2) + "".join(str(c).rjust(cell_width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, grid):
        cells = "".join((fmt.format(v) + shade(v)).rjust(cell_width) for v in row)
        lines.append(f"{str(label).rjust(label_width)}  {cells}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
