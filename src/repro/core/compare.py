"""Two-device comparison summaries (the 'Gaudi-2 improvement over
A100' framing used throughout the paper's evaluation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.metrics import arithmetic_mean, geometric_mean


@dataclass(frozen=True)
class ComparisonSummary:
    """Summary statistics of per-point ratios (device A over device B)."""

    metric: str
    ratios: tuple
    mean: float
    geomean: float
    minimum: float
    maximum: float

    @property
    def wins(self) -> int:
        """Points where device A is ahead (ratio > 1)."""
        return sum(1 for r in self.ratios if r > 1.0)

    @property
    def count(self) -> int:
        return len(self.ratios)


def compare_metric(
    metric: str,
    values_a: Sequence[float],
    values_b: Sequence[float],
    higher_is_better: bool = True,
) -> ComparisonSummary:
    """Summarize per-point ratios of A over B.

    For latency-like metrics pass ``higher_is_better=False`` and the
    ratio is inverted so >1 still means "A ahead".
    """
    if len(values_a) != len(values_b):
        raise ValueError("value sequences must have equal length")
    if not values_a:
        raise ValueError("need at least one data point")
    ratios: List[float] = []
    for a, b in zip(values_a, values_b):
        if a <= 0 or b <= 0:
            raise ValueError("comparison values must be positive")
        ratios.append(a / b if higher_is_better else b / a)
    return ComparisonSummary(
        metric=metric,
        ratios=tuple(ratios),
        mean=arithmetic_mean(ratios),
        geomean=geometric_mean(ratios),
        minimum=min(ratios),
        maximum=max(ratios),
    )


def paired_rows(
    rows_a: Sequence[Dict],
    rows_b: Sequence[Dict],
    keys: Sequence[str],
) -> List[tuple]:
    """Join two row lists on shared parameter keys."""
    index = {tuple(row[k] for k in keys): row for row in rows_b}
    pairs = []
    for row in rows_a:
        key = tuple(row[k] for k in keys)
        if key in index:
            pairs.append((row, index[key]))
    if not pairs:
        raise ValueError("no rows matched on the join keys")
    return pairs
