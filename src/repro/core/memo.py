"""Bounded shape-keyed memoization for pure cost-model functions.

The simulator's hot paths (MME geometry search, GEMM estimates,
element-wise costs, collective pricing, per-layer Llama terms) are pure
functions of a small shape key -- ``(m, k, n, dtype)`` and friends --
yet every figure grid and serving step re-derived them from scratch.
:class:`CostCache` gives each call site a bounded LRU keyed on the
shape, with hit/miss/eviction counters that aggregate per cache *name*
(several device instances may share a name; their stats merge).

Caches register themselves in a process-global weak registry so the
CLI and tests can inspect (:func:`cache_stats`, :func:`render_stats`),
reset (:func:`clear_caches`), or export (:func:`publish_metrics`)
everything without holding references.  Cached values must be treated
as immutable by callers; ``None`` is not a cacheable value (it encodes
a miss).

Memoization can be switched off globally -- :func:`disabled` for a
scope (the golden-equivalence tests), or the ``REPRO_NO_MEMO=1``
environment variable for a whole process (the perf harness's cold-path
baseline).
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Hashable, Iterator, List, Optional

from repro.audit import get_auditor

__all__ = [
    "CostCache",
    "cache_stats",
    "clear_caches",
    "disabled",
    "iter_caches",
    "memoization_enabled",
    "publish_metrics",
    "render_stats",
    "set_enabled",
]

#: Default LRU bound; large enough for the full figure grids, small
#: enough that a runaway key space stays bounded.
DEFAULT_MAXSIZE = 4096

_REGISTRY: "weakref.WeakSet[CostCache]" = weakref.WeakSet()

_enabled = os.environ.get("REPRO_NO_MEMO", "").lower() not in ("1", "true", "yes")


def memoization_enabled() -> bool:
    """Whether caches currently store and serve entries."""
    return _enabled


def set_enabled(on: bool) -> None:
    """Globally enable/disable all caches (lookups miss, stores drop)."""
    global _enabled
    _enabled = bool(on)


@contextmanager
def disabled() -> Iterator[None]:
    """Scope with memoization off -- the cold-path reference for
    equivalence tests.  Existing entries are kept (and ignored)."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class CostCache:
    """One bounded LRU cache with hit/miss/eviction counters."""

    __slots__ = (
        "name", "maxsize", "hits", "misses", "evictions", "_data",
        "_pending_verify", "__weakref__",
    )

    def __init__(self, name: str, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: Keys whose next put() is a sampled audit recompute to compare
        #: against the cached entry (see repro.audit memo-equivalence).
        self._pending_verify: set = set()
        _REGISTRY.add(self)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or None on a miss (counted).

        With auditing enabled (``REPRO_AUDIT=sample|strict``), a seeded
        fraction of hits is deliberately reported as a miss: the caller
        recomputes, and the following :meth:`put` compares the fresh
        value against the cached one (memo-equivalence check).
        """
        if not _enabled:
            return None
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            return None
        auditor = get_auditor()
        if auditor is not None and auditor.should_verify_memo():
            self._pending_verify.add(key)
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` (must not be None), evicting the LRU entry
        when full."""
        if not _enabled:
            return
        data = self._data
        if self._pending_verify and key in self._pending_verify:
            self._pending_verify.discard(key)
            auditor = get_auditor()
            if auditor is not None and key in data:
                auditor.on_memo_result(self.name, key, data[key], value)
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        if len(data) >= self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self._pending_verify.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        """This cache's counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:
        return (
            f"CostCache({self.name!r}, {len(self._data)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


# -- registry-wide views -------------------------------------------------
def iter_caches() -> List[CostCache]:
    """All live caches, sorted by name (ties broken arbitrarily)."""
    return sorted(_REGISTRY, key=lambda cache: cache.name)


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Aggregated counters per cache name, in sorted-name order."""
    merged: Dict[str, Dict[str, int]] = {}
    for cache in iter_caches():
        entry = merged.setdefault(
            cache.name,
            {"hits": 0, "misses": 0, "evictions": 0, "entries": 0, "caches": 0},
        )
        entry["hits"] += cache.hits
        entry["misses"] += cache.misses
        entry["evictions"] += cache.evictions
        entry["entries"] += len(cache)
        entry["caches"] += 1
    return merged


def clear_caches(name: Optional[str] = None) -> int:
    """Clear every cache (or only those named ``name``); returns how
    many caches were cleared."""
    cleared = 0
    for cache in iter_caches():
        if name is None or cache.name == name:
            cache.clear()
            cleared += 1
    return cleared


def render_stats() -> str:
    """Fixed-format text table of the aggregated cache counters."""
    stats = cache_stats()
    if not stats:
        return "  (no cost-model caches created)"
    lines = []
    for name, entry in stats.items():
        total = entry["hits"] + entry["misses"]
        rate = entry["hits"] / total if total else 0.0
        lines.append(
            f"  {name:<32s} {entry['hits']:>9d} hits {entry['misses']:>8d} misses "
            f"({rate:>5.1%}) {entry['evictions']:>6d} evicted {entry['entries']:>6d} entries"
        )
    return "\n".join(lines)


def publish_metrics(registry) -> None:
    """Export the aggregated counters into a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``memo.*`` metrics.

    Counters are monotone, so repeated publishes add only the delta
    since the previous publish (idempotent when nothing changed).
    """
    for name, entry in cache_stats().items():
        for field in ("hits", "misses", "evictions"):
            counter = registry.counter(f"memo.{name}.{field}")
            delta = entry[field] - counter.value
            if delta > 0:
                counter.inc(delta)
        registry.gauge(f"memo.{name}.entries").set(entry["entries"])
