"""Append-only, checksummed journal of completed run points.

Long runs (``repro reproduce``, load sweeps) record each completed
point as one JSONL line the moment it finishes, so a crash -- a killed
worker, an OOM, a power cut -- loses at most the in-flight point.
``repro resume <run-dir>`` then re-runs only the missing or corrupt
points; because every point derives its randomness from its own
:func:`~repro.serving.loadgen.sweep_seeds` child seed, the resumed
output is bit-identical to an uninterrupted run.

Line format (one JSON object per line)::

    {"kind": "header"|"point", "key": str, "crc": int, "payload": {...}}

``crc`` is the CRC32 of the *canonical* JSON encoding of ``payload``
(sorted keys, compact separators), so a torn write -- the usual
crash-at-the-wrong-moment artifact -- is detected and the line is
skipped on load rather than poisoning the resume.  Appends flush and
fsync before returning: once :meth:`RunJournal.append` returns, the
point survives the process.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.audit.errors import JournalError

__all__ = ["RunJournal", "canonical_json", "checksum"]

#: File name used for the journal inside a run directory.
JOURNAL_NAME = "journal.jsonl"


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum(payload: object) -> int:
    """CRC32 over the canonical JSON encoding of ``payload``."""
    return zlib.crc32(canonical_json(payload).encode("utf-8")) & 0xFFFFFFFF


class RunJournal:
    """One append-only JSONL journal (see module docstring).

    ``path`` may be the journal file itself or a run directory (the
    journal is then ``<dir>/journal.jsonl``).  The directory is created
    on first append.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        if path.suffix != ".jsonl":
            path = path / JOURNAL_NAME
        self.path = path

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r})"

    # -- writing -------------------------------------------------------
    def _append_line(self, record: Dict[str, object]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def write_header(self, payload: Dict[str, object]) -> None:
        """Record the run's configuration as the journal's first line.

        On an existing journal the stored header must match ``payload``
        exactly -- resuming a run with different parameters would
        silently mix incompatible points, so it raises
        :class:`~repro.audit.JournalError` instead.
        """
        existing = self.load_header()
        if existing is not None:
            if existing != payload:
                raise JournalError(
                    f"journal {self.path} was written by a different run "
                    f"configuration: stored {canonical_json(existing)} "
                    f"!= requested {canonical_json(payload)}"
                )
            return
        self._append_line(
            {"kind": "header", "key": "header", "crc": checksum(payload),
             "payload": payload}
        )

    def append(self, key: str, payload: Dict[str, object]) -> None:
        """Durably record one completed point under ``key``.

        ``payload`` must be JSON-serializable; if the same key is
        appended twice (e.g. a retry raced a crash), the *last* valid
        line wins on load.
        """
        if not key or key == "header":
            raise JournalError(f"invalid journal key {key!r}")
        self._append_line(
            {"kind": "point", "key": key, "crc": checksum(payload),
             "payload": payload}
        )

    # -- reading -------------------------------------------------------
    def _iter_valid(self) -> Iterable[Tuple[str, str, Dict[str, object]]]:
        """(kind, key, payload) for every line that parses and checks."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (ValueError, TypeError):
                    self._skipped += 1
                    continue
                if not isinstance(record, dict):
                    self._skipped += 1
                    continue
                payload = record.get("payload")
                if record.get("crc") != checksum(payload):
                    self._skipped += 1
                    continue
                kind = record.get("kind")
                key = record.get("key")
                if kind not in ("header", "point") or not isinstance(key, str):
                    self._skipped += 1
                    continue
                yield kind, key, payload

    def load(self) -> Tuple[Optional[Dict[str, object]], Dict[str, Dict[str, object]], int]:
        """``(header, {key: payload}, skipped)`` from the journal.

        Corrupt lines (torn writes, bad checksums) are counted in
        ``skipped`` and ignored; a missing journal loads as
        ``(None, {}, 0)``.
        """
        self._skipped = 0
        header: Optional[Dict[str, object]] = None
        points: Dict[str, Dict[str, object]] = {}
        for kind, key, payload in self._iter_valid():
            if kind == "header":
                if header is None:
                    header = payload
            else:
                points[key] = payload
        return header, points, self._skipped

    def load_header(self) -> Optional[Dict[str, object]]:
        """Just the header payload (None when absent/corrupt)."""
        header, _, _ = self.load()
        return header

    def completed_keys(self) -> Dict[str, Dict[str, object]]:
        """The valid point payloads, keyed (last write wins)."""
        _, points, _ = self.load()
        return points
