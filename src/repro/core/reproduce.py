"""Journaled, crash-safe reproduction of the paper's figures.

``python -m repro reproduce`` runs every registered figure and records
each completed one in an append-only :class:`~repro.core.journal.RunJournal`
under the run directory.  If the process dies mid-run -- a killed
worker, an interrupt, an OOM -- ``python -m repro resume <run-dir>``
re-runs only the figures whose journal entries are missing or corrupt.
Each figure's computation is deterministic, so the resumed run's
``report.txt`` / ``report.json`` are byte-identical to an
uninterrupted run: both are rendered *from the journal payloads*, in
sorted figure order, never from in-memory state.

The ``REPRO_TEST_DIE_AFTER_POINTS=N`` environment variable makes the
parent process hard-exit after journaling ``N`` new figures -- the
deterministic "crash" the resume tests rely on.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.audit.errors import JournalError
from repro.core.journal import RunJournal
from repro.core.parallel import map_with_retries

__all__ = ["ReproduceResult", "reproduce", "resume"]

#: Exit code used by the deterministic test-crash hook.
DIE_EXIT_CODE = 86


def _jsonable(value):
    """Recursively coerce numpy scalars etc. into JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _figure_payload(result) -> Dict[str, object]:
    """One figure's journal payload (plain JSON types only)."""
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "rows": _jsonable(result.rows),
        "summary": _jsonable(result.summary),
        "text": result.text,
    }


def _run_one(task) -> Dict[str, object]:
    """Process-pool task: run one figure, return its payload.  Top
    level so it pickles; workers inherit ``REPRO_AUDIT`` via env."""
    figure_id, fast = task
    from repro.figures import run_figure

    return _figure_payload(run_figure(figure_id=figure_id, fast=fast))


@dataclass
class ReproduceResult:
    """Outcome of one (possibly resumed) reproduction run."""

    run_dir: pathlib.Path
    fast: bool
    #: figure id -> journal payload, for every requested figure.
    figures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Figures computed by this invocation.
    ran: List[str] = field(default_factory=list)
    #: Figures reused from the journal (already completed earlier).
    reused: List[str] = field(default_factory=list)
    #: Corrupt/torn journal lines skipped on load.
    skipped_corrupt: int = 0

    @property
    def report_txt(self) -> pathlib.Path:
        return self.run_dir / "report.txt"

    @property
    def report_json(self) -> pathlib.Path:
        return self.run_dir / "report.json"

    def render(self) -> str:
        lines = [
            f"Reproduction run: {self.run_dir} "
            f"({'fast' if self.fast else 'full'} mode)",
            f"  figures    : {len(self.figures)} total | "
            f"{len(self.ran)} computed | {len(self.reused)} reused from journal",
        ]
        if self.skipped_corrupt:
            lines.append(
                f"  journal    : {self.skipped_corrupt} corrupt line(s) skipped"
            )
        for figure_id in sorted(self.figures):
            payload = self.figures[figure_id]
            marker = "journal" if figure_id in self.reused else "ran"
            lines.append(f"    {figure_id:<10s} [{marker:<7s}] {payload['title']}")
        lines.append(f"  reports    : {self.report_txt} | {self.report_json}")
        return "\n".join(lines)


def _render_report_text(
    header: Dict[str, object], figures: Dict[str, Dict[str, object]]
) -> str:
    """The final plain-text report, rendered purely from journal
    payloads in sorted figure order (the bit-identity contract)."""
    blocks = [
        "Reproduction report "
        f"({'fast' if header.get('fast') else 'full'} mode, "
        f"{len(figures)} figures)",
        "",
    ]
    for figure_id in sorted(figures):
        payload = figures[figure_id]
        blocks.append(f"== {figure_id}: {payload['title']} ==")
        for key in sorted(payload["summary"]):
            blocks.append(f"   {key} = {payload['summary'][key]:.4g}")
        blocks.append(payload["text"])
        blocks.append("")
    return "\n".join(blocks)


def reproduce(
    run_dir: Union[str, pathlib.Path],
    fast: bool = True,
    figure_ids: Optional[Sequence[str]] = None,
    workers=None,
) -> ReproduceResult:
    """Run the figure set, journaling each completed figure.

    Safe to call on a run directory that already holds a partial
    journal: already-completed figures are reused, not recomputed.  The
    stored header must match (same ``fast`` mode and figure set) or
    :class:`~repro.audit.JournalError` raises.
    """
    from repro.figures import FIGURES, get_figure

    run_dir = pathlib.Path(run_dir)
    if figure_ids is None:
        figure_ids = sorted(FIGURES)
    else:
        figure_ids = sorted(figure_ids)
        for figure_id in figure_ids:
            get_figure(figure_id)  # raises KeyError on unknown ids
    journal = RunJournal(run_dir)
    header = {"tool": "reproduce", "fast": bool(fast), "figures": list(figure_ids)}
    journal.write_header(header)

    _, points, skipped = journal.load()
    reused = [figure_id for figure_id in figure_ids if figure_id in points]
    pending = [figure_id for figure_id in figure_ids if figure_id not in points]

    die_after = int(os.environ.get("REPRO_TEST_DIE_AFTER_POINTS", "0") or "0")
    journaled = [0]

    def _journal_result(_index: int, payload: Dict[str, object]) -> None:
        journal.append(payload["figure_id"], payload)
        journaled[0] += 1
        if die_after and journaled[0] >= die_after:
            # Test hook: simulate a crash the instant the Nth point is
            # durable.  os._exit skips atexit/finally, like a real kill.
            os._exit(DIE_EXIT_CODE)

    if pending:
        map_with_retries(
            _run_one,
            [(figure_id, fast) for figure_id in pending],
            workers=workers,
            on_result=_journal_result,
        )

    _, points, skipped = journal.load()
    missing = [figure_id for figure_id in figure_ids if figure_id not in points]
    if missing:
        raise JournalError(
            f"journal {journal.path} is still missing figures {missing} "
            "after the run"
        )
    figures = {figure_id: points[figure_id] for figure_id in figure_ids}

    result = ReproduceResult(
        run_dir=run_dir,
        fast=bool(fast),
        figures=figures,
        ran=pending,
        reused=reused,
        skipped_corrupt=skipped,
    )
    result.report_txt.write_text(_render_report_text(header, figures) + "\n")
    result.report_json.write_text(
        json.dumps(
            {"config": header, "figures": figures}, indent=2, sort_keys=True
        )
        + "\n"
    )
    return result


def resume(run_dir: Union[str, pathlib.Path], workers=None) -> ReproduceResult:
    """Finish an interrupted reproduction run from its journal.

    Reads the journal header for the original parameters, re-runs only
    the missing/corrupt figures, and rewrites the reports -- which come
    out byte-identical to an uninterrupted run.
    """
    journal = RunJournal(pathlib.Path(run_dir))
    header = journal.load_header()
    if header is None:
        raise JournalError(
            f"no valid journal header under {run_dir}; nothing to resume "
            "(was the run started with `repro reproduce`?)"
        )
    if header.get("tool") != "reproduce":
        raise JournalError(
            f"journal under {run_dir} was written by "
            f"{header.get('tool')!r}, not `repro reproduce`"
        )
    return reproduce(
        run_dir,
        fast=bool(header.get("fast", True)),
        figure_ids=header.get("figures"),
        workers=workers,
    )
