"""Worker-count policy and fault-tolerant fan-out for process pools.

Figure regeneration and load sweeps can fan across a process pool
(:mod:`repro.figures`, :mod:`repro.serving.loadgen`).
:func:`resolve_worker_count` centralizes how a ``workers`` knob
resolves: ``None`` defers to the ``REPRO_WORKERS`` environment
variable (default serial, so tests and library callers stay
single-process unless asked), ``"auto"``/``0`` uses the machine's
cores capped at :data:`MAX_AUTO_WORKERS`, and any positive integer is
taken literally.  The result is always clamped to the task count --
spawning more workers than tasks only costs fork time.

:func:`map_with_retries` is the crash-safe ``pool.map``: a worker
process dying (OOM-killed, segfaulted) breaks a plain
``ProcessPoolExecutor`` and loses every queued task, so it rebuilds
the pool with exponential backoff and resubmits only the tasks that
had not completed.  Ordinary task exceptions still propagate; only
*worker death* is retried, and past the budget it raises the typed
:class:`~repro.audit.WorkerRetryExhausted`.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Sequence, Union

from repro.audit.errors import WorkerRetryExhausted

__all__ = ["MAX_AUTO_WORKERS", "map_with_retries", "resolve_worker_count"]

#: Cap for "auto": figure regeneration has ~14 tasks and heavy imports
#: per worker, so more processes than this never pays for itself.
MAX_AUTO_WORKERS = 8


def resolve_worker_count(workers: Optional[Union[int, str]], tasks: int) -> int:
    """Resolve a ``workers`` knob to a concrete process count >= 1."""
    if tasks <= 0:
        return 1
    if workers is None:
        workers = os.environ.get("REPRO_WORKERS", 1)
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = 0
        else:
            workers = int(workers)
    if workers <= 0:  # "auto"
        workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    return max(1, min(int(workers), tasks))


def map_with_retries(
    fn: Callable,
    tasks: Sequence,
    workers: Optional[Union[int, str]] = None,
    max_retries: int = 2,
    backoff_base: float = 0.5,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List:
    """``[fn(t) for t in tasks]`` over a crash-tolerant process pool.

    Results come back in task order.  ``on_result(index, result)``
    fires in the parent as each task completes (journaling hook) --
    completion order, not task order.  A dead worker breaks the pool;
    the pool is rebuilt after ``backoff_base * 2**attempt`` seconds and
    only the unfinished tasks are resubmitted, up to ``max_retries``
    rebuilds, after which :class:`~repro.audit.WorkerRetryExhausted`
    raises.  Exceptions *raised by* a task are not retried -- they
    propagate immediately, exactly like serial execution.

    ``fn`` must be deterministic per task for resumed results to match
    uninterrupted ones (true for every sweep in this repo: each point
    derives its RNG from its own child seed).
    """
    tasks = list(tasks)
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    count = resolve_worker_count(workers, len(tasks))
    results: List = [None] * len(tasks)
    done = [False] * len(tasks)
    if count <= 1:
        for index, task in enumerate(tasks):
            results[index] = fn(task)
            done[index] = True
            if on_result is not None:
                on_result(index, results[index])
        return results

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    attempt = 0
    while not all(done):
        pending = [index for index, finished in enumerate(done) if not finished]
        pool = ProcessPoolExecutor(max_workers=min(count, len(pending)))
        try:
            futures = {pool.submit(fn, tasks[index]): index for index in pending}
            from concurrent.futures import as_completed

            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done[index] = True
                if on_result is not None:
                    on_result(index, results[index])
        except BrokenProcessPool as error:
            attempt += 1
            remaining = sum(1 for finished in done if not finished)
            if attempt > max_retries:
                raise WorkerRetryExhausted(
                    f"process pool broke {attempt} times "
                    f"({remaining} tasks unfinished); giving up: {error}"
                ) from error
            time.sleep(backoff_base * 2 ** (attempt - 1))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    return results
