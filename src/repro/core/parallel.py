"""Worker-count policy for process-pool fan-out.

Figure regeneration and load sweeps can fan across a process pool
(:mod:`repro.figures`, :mod:`repro.serving.loadgen`).  This helper
centralizes how a ``workers`` knob resolves: ``None`` defers to the
``REPRO_WORKERS`` environment variable (default serial, so tests and
library callers stay single-process unless asked), ``"auto"``/``0``
uses the machine's cores capped at :data:`MAX_AUTO_WORKERS`, and any
positive integer is taken literally.  The result is always clamped to
the task count -- spawning more workers than tasks only costs fork
time.
"""

from __future__ import annotations

import os
from typing import Optional, Union

__all__ = ["MAX_AUTO_WORKERS", "resolve_worker_count"]

#: Cap for "auto": figure regeneration has ~14 tasks and heavy imports
#: per worker, so more processes than this never pays for itself.
MAX_AUTO_WORKERS = 8


def resolve_worker_count(workers: Optional[Union[int, str]], tasks: int) -> int:
    """Resolve a ``workers`` knob to a concrete process count >= 1."""
    if tasks <= 0:
        return 1
    if workers is None:
        workers = os.environ.get("REPRO_WORKERS", 1)
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = 0
        else:
            workers = int(workers)
    if workers <= 0:  # "auto"
        workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    return max(1, min(int(workers), tasks))
