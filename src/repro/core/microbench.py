"""The Table 2 microbenchmark registry.

Table 2 of the paper inventories the microbenchmark suite: what is
measured, on which system, and with which implementation technology.
The registry below is that table as data, with each entry pointing at
the module implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class MicrobenchmarkSpec:
    """One row of Table 2."""

    category: str
    name: str
    gaudi_implementation: str
    a100_implementation: str
    module: str
    figure: str


MICROBENCHMARKS: Tuple[MicrobenchmarkSpec, ...] = (
    MicrobenchmarkSpec(
        category="Compute",
        name="GEMM",
        gaudi_implementation="PyTorch API (MME via graph compiler)",
        a100_implementation="PyTorch API (cuBLAS)",
        module="repro.kernels.gemm",
        figure="Figures 4, 5, 7",
    ),
    MicrobenchmarkSpec(
        category="Compute",
        name="non-GEMM (STREAM ADD/SCALE/TRIAD)",
        gaudi_implementation="TPC-C",
        a100_implementation="CUDA",
        module="repro.kernels.stream",
        figure="Figure 8",
    ),
    MicrobenchmarkSpec(
        category="Memory",
        name="Vector gather-scatter",
        gaudi_implementation="TPC-C",
        a100_implementation="CUDA",
        module="repro.kernels.gather_scatter",
        figure="Figure 9",
    ),
    MicrobenchmarkSpec(
        category="Communication",
        name="Collective communication",
        gaudi_implementation="Intel HCCL",
        a100_implementation="NVIDIA NCCL",
        module="repro.comm",
        figure="Figure 10",
    ),
)


def table2_rows() -> list:
    """Rows of Table 2 for rendering."""
    rows = []
    for spec in MICROBENCHMARKS:
        rows.append(
            (spec.category, spec.name, "Gaudi-2", spec.gaudi_implementation)
        )
        rows.append(("", "", "A100", spec.a100_implementation))
    return rows
