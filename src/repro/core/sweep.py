"""Parameter sweeps for the heatmap experiments."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence


class Sweep:
    """A named Cartesian parameter grid.

    >>> list(Sweep(batch=[1, 2], dim=[64]))
    [{'batch': 1, 'dim': 64}, {'batch': 2, 'dim': 64}]
    """

    def __init__(self, **axes: Sequence) -> None:
        if not axes:
            raise ValueError("need at least one axis")
        for name, values in axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} is empty")
        self.axes: Dict[str, List] = {name: list(values) for name, values in axes.items()}

    @property
    def size(self) -> int:
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Dict]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))

    def subset(self, stride: int) -> "Sweep":
        """Every ``stride``-th value per axis (for fast benchmark mode)."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        return Sweep(
            **{
                name: values[::stride] if len(values) > stride else [values[0], values[-1]]
                if len(values) > 1
                else values
                for name, values in self.axes.items()
            }
        )
