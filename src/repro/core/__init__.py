"""The characterization framework -- the paper's methodological core.

The paper's contribution is a *methodology*: a microbenchmark suite
plus end-to-end workloads, run on two platforms, reported as rooflines,
utilization heatmaps, and device-vs-device comparisons.  This package
is that methodology as a library:

* :mod:`repro.core.metrics` -- utilization/throughput metric helpers.
* :mod:`repro.core.roofline` -- the roofline model of Figure 4.
* :mod:`repro.core.sweep` -- parameter grids for the heatmap sweeps.
* :mod:`repro.core.experiment` -- experiment runner producing row-wise
  results.
* :mod:`repro.core.compare` -- two-device comparison summaries.
* :mod:`repro.core.microbench` -- the Table 2 microbenchmark registry.
* :mod:`repro.core.report` -- plain-text tables and heatmaps.
"""

from repro.core.compare import ComparisonSummary, compare_metric
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.metrics import geometric_mean, ratio, tflops, utilization
from repro.core.microbench import MICROBENCHMARKS, MicrobenchmarkSpec
from repro.core.roofline import Roofline
from repro.core.report import render_heatmap, render_table
from repro.core.sweep import Sweep

__all__ = [
    "ComparisonSummary",
    "Experiment",
    "ExperimentResult",
    "MICROBENCHMARKS",
    "MicrobenchmarkSpec",
    "Roofline",
    "Sweep",
    "compare_metric",
    "geometric_mean",
    "ratio",
    "render_heatmap",
    "render_table",
    "tflops",
    "utilization",
]
