"""Experiment runner: a sweep plus a measurement function.

Each experiment materializes one table or figure's data as a list of
row dicts, which the figure modules then shape into the paper's
series/heatmaps and the benchmark harness prints.  Results export to
CSV/JSON for downstream plotting.
"""

from __future__ import annotations

import csv
import io
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.sweep import Sweep


@dataclass
class ExperimentResult:
    """Rows produced by one experiment run."""

    name: str
    rows: List[Dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    def column(self, key: str) -> List:
        return [row[key] for row in self.rows]

    def where(self, **conditions) -> List[Dict]:
        """Rows matching all key=value conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]

    def __len__(self) -> int:
        return len(self.rows)

    # -- export ----------------------------------------------------------
    def fieldnames(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def to_csv(self) -> str:
        """Rows as CSV text (missing keys left empty)."""
        if not self.rows:
            raise ValueError(f"experiment {self.name!r} has no rows to export")
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.fieldnames())
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def to_json(self) -> str:
        """Rows plus metadata as a JSON document."""
        return json.dumps(
            {
                "name": self.name,
                "wall_seconds": self.wall_seconds,
                "rows": self.rows,
            },
            indent=1,
            default=str,
        )

    def render(self) -> str:
        """Rows as a fixed-width ASCII table (the Report protocol's
        text form)."""
        from repro.core.report import render_table

        if not self.rows:
            raise ValueError(f"experiment {self.name!r} has no rows to render")
        names = self.fieldnames()
        return render_table(
            names,
            [[row.get(name, "") for name in names] for row in self.rows],
            title=self.name,
        )


class Experiment:
    """A named measurement over a parameter sweep.

    ``fn(**params)`` returns one row dict (or a list of row dicts); the
    sweep's parameters are merged into each returned row.
    """

    def __init__(self, name: str, sweep: Sweep, fn: Callable[..., object]) -> None:
        self.name = name
        self.sweep = sweep
        self.fn = fn

    def run(self, fast: bool = False, stride: int = 2) -> ExperimentResult:
        """Execute the sweep; ``fast`` thins each axis by ``stride``."""
        sweep = self.sweep.subset(stride) if fast else self.sweep
        result = ExperimentResult(name=self.name)
        started = time.perf_counter()
        for params in sweep:
            out = self.fn(**params)
            rows = out if isinstance(out, list) else [out]
            for row in rows:
                if not isinstance(row, dict):
                    raise TypeError(
                        f"experiment {self.name!r}: fn must return dict rows, "
                        f"got {type(row).__name__}"
                    )
                merged = dict(params)
                merged.update(row)
                result.rows.append(merged)
        result.wall_seconds = time.perf_counter() - started
        return result
