"""Roofline model (Figure 4).

``attainable(oi) = min(peak_flops, oi * peak_bandwidth)`` -- the
standard two-ceiling roofline, parameterized per device, with helpers
to place measured kernels on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hw.spec import DeviceSpec, DType


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    label: str
    operational_intensity: float
    achieved_flops: float
    attainable_flops: float

    @property
    def efficiency(self) -> float:
        """Achieved relative to the roofline ceiling at this intensity."""
        return self.achieved_flops / self.attainable_flops


class Roofline:
    """A device's roofline: compute ceiling + memory slope."""

    def __init__(self, peak_flops: float, peak_bandwidth: float, name: str = "") -> None:
        if peak_flops <= 0 or peak_bandwidth <= 0:
            raise ValueError("peaks must be positive")
        self.peak_flops = peak_flops
        self.peak_bandwidth = peak_bandwidth
        self.name = name

    @classmethod
    def for_device(cls, spec: DeviceSpec, dtype: DType = DType.BF16) -> "Roofline":
        return cls(
            peak_flops=spec.matrix.peak(dtype),
            peak_bandwidth=spec.memory.bandwidth,
            name=spec.name,
        )

    @property
    def ridge_point(self) -> float:
        """Operational intensity where the two ceilings meet."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, operational_intensity: float) -> float:
        """FLOPS attainable at a given operational intensity."""
        if operational_intensity <= 0:
            raise ValueError("operational_intensity must be positive")
        return min(self.peak_flops, operational_intensity * self.peak_bandwidth)

    def is_memory_bound(self, operational_intensity: float) -> bool:
        return operational_intensity < self.ridge_point

    def place(self, label: str, operational_intensity: float, achieved_flops: float) -> RooflinePoint:
        return RooflinePoint(
            label=label,
            operational_intensity=operational_intensity,
            achieved_flops=achieved_flops,
            attainable_flops=self.attainable(operational_intensity),
        )

    def curve(self, intensities: List[float]) -> List[Tuple[float, float]]:
        """(intensity, attainable) pairs for plotting."""
        return [(oi, self.attainable(oi)) for oi in intensities]
