"""Timeline scheduler: lowers a compiled graph to engine-busy intervals.

Ops execute in topological (insertion) order; each op's duration is the
roofline maximum of its engine-compute time and its HBM traffic time,
plus a small on-device dispatch overhead.  Pipelined super-ops created
by :mod:`repro.graph.pipeliner` occupy both engines for the overlapped
window.  The resulting :class:`Timeline` also aggregates the engine
activity profile the power model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graph.ir import Engine, Graph, Op
from repro.graph.pipeliner import SLICE_OVERHEAD, pipelined_duration
from repro.hw.power import ActivityProfile
from repro.hw.spec import DeviceSpec

#: On-device dispatch cost per lowered op (HPU-graph replay, not a host
#: kernel launch).
DEFAULT_OP_DISPATCH = 1e-6


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled op."""

    name: str
    engine: Engine
    start: float
    end: float
    compute_time: float
    traffic_bytes: float
    pipelined: bool = False
    #: Busy time of the *other* engine during a pipelined window.
    partner_busy: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Schedule of a whole graph on one device."""

    entries: List[TimelineEntry] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.entries[-1].end if self.entries else 0.0

    def engine_busy(self, engine: Engine) -> float:
        busy = 0.0
        for e in self.entries:
            if e.engine is engine:
                busy += min(e.compute_time, e.duration)
            elif e.pipelined:
                busy += min(e.partner_busy, e.duration)
        return busy

    def total_traffic(self) -> float:
        return sum(e.traffic_bytes for e in self.entries)

    def activity_profile(
        self, spec: DeviceSpec, matrix_active_fraction: float = 1.0
    ) -> ActivityProfile:
        """Time-averaged activity for the power model."""
        total = self.total_time
        if total <= 0:
            return ActivityProfile()
        memory_util = min(
            1.0, self.total_traffic() / (total * spec.memory.bandwidth)
        )
        return ActivityProfile(
            matrix_busy=min(1.0, self.engine_busy(Engine.MME) / total),
            matrix_active_fraction=matrix_active_fraction,
            vector_busy=min(1.0, self.engine_busy(Engine.TPC) / total),
            memory_util=memory_util,
        )


def schedule(
    graph: Graph,
    spec: DeviceSpec,
    op_dispatch_overhead: float = DEFAULT_OP_DISPATCH,
) -> Timeline:
    """Serially schedule ``graph`` on a device, honoring pipelined ops."""
    graph.validate()
    stream_bw = spec.memory.bandwidth * spec.memory.stream_efficiency
    timeline = Timeline()
    clock = 0.0
    for op in graph.ops:
        pipe = op.annotations.get("pipelined")
        if pipe is not None:
            duration, partner_busy, compute = _pipelined_times(op, stream_bw)
        else:
            memory_time = op.traffic_bytes / stream_bw if op.traffic_bytes else 0.0
            duration = max(op.compute_time, memory_time)
            partner_busy = 0.0
            compute = op.compute_time
        duration += op_dispatch_overhead
        entry = TimelineEntry(
            name=op.name,
            engine=op.engine,
            start=clock,
            end=clock + duration,
            compute_time=compute,
            traffic_bytes=op.traffic_bytes,
            pipelined=pipe is not None,
            partner_busy=partner_busy,
        )
        timeline.entries.append(entry)
        clock = entry.end
    return timeline


def _pipelined_times(op: Op, stream_bw: float) -> tuple:
    """Duration and engine-busy split of a pipelined super-op."""
    producer_compute = float(op.annotations["producer_compute"])
    consumer_compute = float(op.annotations["consumer_compute"])
    producer_traffic = float(op.annotations.get("producer_traffic", 0.0))
    consumer_traffic = float(op.annotations.get("consumer_traffic", 0.0))
    slices = int(op.annotations.get("slices", 8))
    producer_time = max(producer_compute, producer_traffic / stream_bw)
    consumer_time = max(consumer_compute, consumer_traffic / stream_bw)
    duration = pipelined_duration(producer_time, consumer_time, slices, SLICE_OVERHEAD)
    # The op's nominal engine gets the longer phase as its busy time;
    # the partner engine is busy for the shorter phase.
    if op.annotations.get("producer_engine") == op.engine.value:
        own, partner = producer_compute, consumer_compute
    else:
        own, partner = consumer_compute, producer_compute
    return duration, partner, own
