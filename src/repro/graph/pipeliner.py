"""MME <-> TPC pipelining pass.

When an MME op feeds a TPC op (GEMM then activation) or vice versa
(gather then batched GEMM, as in PagedAttention), the graph compiler
breaks both into smaller, independent sub-operations and overlaps them,
staging slices through the on-chip shared SRAM (Section 2.2).  With
``k`` slices a producer/consumer pair of durations ``t_p`` and ``t_c``
completes in roughly

    ``max(t_p, t_c) + min(t_p, t_c) / k + k * slice_overhead``

instead of ``t_p + t_c``.  The pass rewrites eligible pairs into a
single pipelined super-op; ineligible pairs (not sliceable, or the
consumer has other inputs materialized elsewhere) are left serial --
that is exactly the failure mode of vLLM\\ :sub:`base` in Figure 16(a).
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.ir import Engine, Graph, Op

#: Default number of sub-operation slices the compiler carves.
DEFAULT_SLICES = 8

#: Per-slice scheduling/staging overhead, seconds.
SLICE_OVERHEAD = 0.5e-6


def pipelined_duration(
    producer_time: float,
    consumer_time: float,
    slices: int = DEFAULT_SLICES,
    slice_overhead: float = SLICE_OVERHEAD,
) -> float:
    """Completion time of a k-slice pipelined producer/consumer pair."""
    if slices <= 0:
        raise ValueError("slices must be positive")
    longer = max(producer_time, consumer_time)
    shorter = min(producer_time, consumer_time)
    return longer + shorter / slices + slices * slice_overhead


def _eligible(producer: Op, consumer: Op, graph: Graph) -> bool:
    if not (producer.sliceable and consumer.sliceable):
        return False
    if consumer.inputs != [producer]:
        return False
    if len(graph.consumers(producer)) != 1:
        return False
    engines = {producer.engine, consumer.engine}
    return engines == {Engine.MME, Engine.TPC} or engines == {Engine.TPC, Engine.MME}


def pipeline_mme_tpc(graph: Graph, slices: int = DEFAULT_SLICES) -> Graph:
    """Return a new graph with eligible MME/TPC pairs fused into
    pipelined super-ops."""
    graph.validate()
    out = Graph(name=graph.name)
    replaced: Dict[Op, Op] = {}
    skip: set = set()

    ops: List[Op] = list(graph.ops)
    for index, op in enumerate(ops):
        if op in skip:
            continue
        partner = None
        for candidate in graph.consumers(op):
            if _eligible(op, candidate, graph):
                partner = candidate
                break
        if partner is not None:
            new_op = Op(
                name=f"pipe({op.name}|{partner.name})",
                engine=Engine.MME if Engine.MME in (op.engine, partner.engine) else Engine.TPC,
                compute_time=0.0,  # duration handled via annotation
                input_bytes=op.input_bytes,
                output_bytes=partner.output_bytes,
                inputs=[replaced[p] for p in op.inputs],
                fusable=False,
                sliceable=False,
                annotations={
                    "pipelined": (op.name, partner.name),
                    "producer_compute": op.compute_time,
                    "consumer_compute": partner.compute_time,
                    "producer_engine": op.engine.value,
                    "consumer_engine": partner.engine.value,
                    "producer_traffic": op.traffic_bytes,
                    "consumer_traffic": partner.traffic_bytes - op.output_bytes,
                    "slices": slices,
                },
            )
            out.add(new_op)
            replaced[op] = new_op
            replaced[partner] = new_op
            skip.add(partner)
        else:
            clone = Op(
                name=op.name,
                engine=op.engine,
                compute_time=op.compute_time,
                input_bytes=op.input_bytes,
                output_bytes=op.output_bytes,
                inputs=[replaced[p] for p in op.inputs],
                fusable=op.fusable,
                sliceable=op.sliceable,
                annotations=dict(op.annotations),
            )
            out.add(clone)
            replaced[op] = clone
    return out
