"""Element-wise operator fusion pass.

The Gaudi SDK's MLIR-based fuser selects subgraphs of element-wise,
reduction, and normalization ops and JIT-compiles them into a single
TPC kernel (Section 2.2), which removes the intermediate tensors' trips
through HBM.  The pass below fuses maximal chains of ``fusable`` TPC
ops where each link has exactly one consumer: the fused op keeps the
first op's input traffic and the last op's output traffic, and sums the
compute time.
"""

from __future__ import annotations

from typing import List

from repro.graph.ir import Engine, Graph, Op


def _chain_from(start: Op, graph: Graph) -> List[Op]:
    """Longest fusable single-consumer chain starting at ``start``."""
    chain = [start]
    current = start
    while True:
        consumers = graph.consumers(current)
        if len(consumers) != 1:
            break
        nxt = consumers[0]
        if not (nxt.fusable and nxt.engine is Engine.TPC and nxt.inputs == [current]):
            break
        chain.append(nxt)
        current = nxt
    return chain


def fuse_elementwise(graph: Graph) -> Graph:
    """Return a new graph with fusable TPC chains collapsed."""
    graph.validate()
    fused = Graph(name=graph.name)
    replaced: dict = {}  # original op -> op in the fused graph
    consumed: set = set()

    for op in graph.ops:
        if op in consumed:
            continue
        if op.fusable and op.engine is Engine.TPC:
            chain = _chain_from(op, graph)
        else:
            chain = [op]
        head, tail = chain[0], chain[-1]
        new_inputs = [replaced[p] for p in head.inputs]
        if len(chain) == 1:
            new_op = Op(
                name=op.name,
                engine=op.engine,
                compute_time=op.compute_time,
                input_bytes=op.input_bytes,
                output_bytes=op.output_bytes,
                inputs=new_inputs,
                fusable=op.fusable,
                sliceable=op.sliceable,
                annotations=dict(op.annotations),
            )
        else:
            new_op = Op(
                name="+".join(o.name for o in chain),
                engine=Engine.TPC,
                compute_time=sum(o.compute_time for o in chain),
                input_bytes=head.input_bytes,
                output_bytes=tail.output_bytes,
                inputs=new_inputs,
                fusable=True,
                sliceable=all(o.sliceable for o in chain),
                annotations={"fused": [o.name for o in chain]},
            )
        fused.add(new_op)
        for original in chain:
            replaced[original] = new_op
            consumed.add(original)
    return fused
