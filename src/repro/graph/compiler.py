"""GraphCompiler facade: the pass pipeline.

Mirrors the Gaudi SDK's compiler flow (Section 2.2): element-wise
fusion, MME geometry selection, MME/TPC pipelining, then lowering to a
timeline.  The paper stresses that the user cannot steer these passes;
the model exposes toggles anyway so experiments can *ablate* them --
which is how we quantify the passes the real compiler hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.fusion import fuse_elementwise
from repro.graph.ir import Engine, Graph
from repro.graph.mme_config import annotate_mme_configs
from repro.graph.pipeliner import DEFAULT_SLICES, pipeline_mme_tpc
from repro.graph.scheduler import DEFAULT_OP_DISPATCH, Timeline, schedule
from repro.hw.mme import MmeModel
from repro.hw.power import PowerModel
from repro.hw.spec import DeviceSpec, GAUDI2_SPEC


@dataclass
class CompiledGraph:
    """A lowered graph with its schedule and activity accounting."""

    graph: Graph
    timeline: Timeline
    spec: DeviceSpec

    @property
    def total_time(self) -> float:
        return self.timeline.total_time

    def average_power(self, matrix_active_fraction: float = 1.0) -> float:
        profile = self.timeline.activity_profile(self.spec, matrix_active_fraction)
        return PowerModel(self.spec.power).power(profile)

    def energy(self, matrix_active_fraction: float = 1.0) -> float:
        return self.average_power(matrix_active_fraction) * self.total_time


class GraphCompiler:
    """The model of Intel's Gaudi graph compiler."""

    def __init__(
        self,
        spec: DeviceSpec = GAUDI2_SPEC,
        enable_fusion: bool = True,
        enable_pipelining: bool = True,
        pipeline_slices: int = DEFAULT_SLICES,
        op_dispatch_overhead: float = DEFAULT_OP_DISPATCH,
    ) -> None:
        self.spec = spec
        self.enable_fusion = enable_fusion
        self.enable_pipelining = enable_pipelining
        self.pipeline_slices = pipeline_slices
        self.op_dispatch_overhead = op_dispatch_overhead
        self.mme = MmeModel(spec) if spec.matrix.configurable else None

    def compile(self, graph: Graph) -> CompiledGraph:
        """Run the pass pipeline and lower to a timeline."""
        graph.validate()
        lowered = graph
        if self.enable_fusion:
            lowered = fuse_elementwise(lowered)
        if self.mme is not None:
            lowered = annotate_mme_configs(lowered, self.mme)
        if self.enable_pipelining:
            lowered = pipeline_mme_tpc(lowered, slices=self.pipeline_slices)
        timeline = schedule(lowered, self.spec, self.op_dispatch_overhead)
        return CompiledGraph(graph=lowered, timeline=timeline, spec=self.spec)

    def num_ops_by_engine(self, graph: Graph) -> dict:
        counts = {engine: 0 for engine in Engine}
        for op in graph.ops:
            counts[op.engine] += 1
        return counts
