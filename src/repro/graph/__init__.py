"""Gaudi graph-compiler model.

Users cannot program the MME directly; GEMMs are only reachable from
the PyTorch level, and the proprietary graph compiler decides how a
model graph maps onto MME, TPCs and DMA (Section 2.2).  This package
models the three optimization passes the paper identifies as
performance-critical:

* :mod:`repro.graph.fusion` -- JIT fusion of element-wise / reduction /
  normalization chains into single TPC kernels, saving the intermediate
  tensor traffic;
* :mod:`repro.graph.mme_config` -- MME geometry selection per GEMM
  shape (Figure 7(a));
* :mod:`repro.graph.pipeliner` -- slicing a dependent MME-op/TPC-op
  pair into sub-operations so the two engines overlap, with on-chip
  SRAM as the staging buffer.  This pass is the mechanism behind the
  vLLM\\ :sub:`opt` speedups of Section 4.2.

:mod:`repro.graph.ir` defines the operator graph, and
:mod:`repro.graph.compiler` ties the passes together into a
:class:`~repro.graph.compiler.GraphCompiler` that lowers a graph to an
executable :class:`~repro.graph.scheduler.Timeline`.
"""

from repro.graph.compiler import CompiledGraph, GraphCompiler
from repro.graph.ir import Engine, Graph, Op
from repro.graph.scheduler import Timeline, TimelineEntry

__all__ = [
    "CompiledGraph",
    "Engine",
    "Graph",
    "GraphCompiler",
    "Op",
    "Timeline",
    "TimelineEntry",
]
