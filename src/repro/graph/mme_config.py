"""MME geometry-selection pass.

Annotates every MME op that carries a GEMM shape with the geometry the
reconfigurable MME would use (Figure 7(a)) and with whether the shape
power-gates part of the MAC array -- the power model consumes the
latter.  GEMM shapes are attached by workload builders as the
``"gemm_shape"`` annotation, ``(batch, m, k, n)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.ir import Engine, Graph
from repro.hw.mme import MmeModel
from repro.hw.spec import DType


def annotate_mme_configs(graph: Graph, mme: MmeModel, dtype: DType = DType.BF16) -> Graph:
    """Attach chosen MME geometry labels to MME ops, in place."""
    for op in graph.ops:
        if op.engine is not Engine.MME:
            continue
        shape = op.annotations.get("gemm_shape")
        if shape is None:
            continue
        batch, m, k, n = _as_shape(shape)
        config = mme.select_config(m, k, n, dtype)
        op.annotations["mme_geometry"] = config.geometry.label
        op.annotations["mme_power_gated"] = config.power_gated
        op.annotations["mme_active_fraction"] = (
            config.geometry.active_macs / mme.spec.matrix.total_macs
        )
    return graph


def _as_shape(shape: object) -> Tuple[int, int, int, int]:
    try:
        batch, m, k, n = shape  # type: ignore[misc]
        return int(batch), int(m), int(k), int(n)
    except (TypeError, ValueError):
        raise ValueError(
            f"gemm_shape annotation must be (batch, m, k, n), got {shape!r}"
        ) from None
