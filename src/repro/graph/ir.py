"""Operator-graph intermediate representation.

Each :class:`Op` carries enough cost structure for the compiler passes
to reason about: which engine executes it, its pure compute time, and
its input/output traffic (so fusion can delete intermediate tensors and
the scheduler can apply the memory roofline per op).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


class Engine(enum.Enum):
    """Execution engines of the Gaudi device (and their A100 analogs)."""

    MME = "mme"      # matrix engine (Tensor Cores on A100)
    TPC = "tpc"      # vector engine (SIMD cores on A100)
    DMA = "dma"      # pure data movement


@dataclass
class Op:
    """One operator node.

    ``compute_time`` is the engine-busy time excluding memory traffic;
    ``input_bytes``/``output_bytes`` are off-chip traffic the op would
    generate when *not* fused with its neighbours.  ``sliceable`` marks
    ops the pipeliner may split into independent sub-operations along
    their batch-like dimension.
    """

    name: str
    engine: Engine
    compute_time: float
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    inputs: List["Op"] = field(default_factory=list)
    fusable: bool = False
    sliceable: bool = False
    #: Free-form annotations filled in by compiler passes.
    annotations: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError(f"op {self.name!r}: costs must be non-negative")

    @property
    def traffic_bytes(self) -> float:
        return self.input_bytes + self.output_bytes

    def __repr__(self) -> str:
        return f"Op({self.name!r}, {self.engine.value})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class Graph:
    """A DAG of ops in insertion order (must be topological)."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.ops: List[Op] = []

    def add(self, op: Op) -> Op:
        for producer in op.inputs:
            if producer not in self.ops:
                raise ValueError(
                    f"op {op.name!r} depends on {producer.name!r} "
                    "which is not in the graph (insertion must be topological)"
                )
        self.ops.append(op)
        return op

    def add_op(
        self,
        name: str,
        engine: Engine,
        compute_time: float,
        input_bytes: float = 0.0,
        output_bytes: float = 0.0,
        inputs: Optional[Sequence[Op]] = None,
        fusable: bool = False,
        sliceable: bool = False,
    ) -> Op:
        """Convenience constructor + insertion."""
        op = Op(
            name=name,
            engine=engine,
            compute_time=compute_time,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            inputs=list(inputs or []),
            fusable=fusable,
            sliceable=sliceable,
        )
        return self.add(op)

    def consumers(self, op: Op) -> List[Op]:
        return [o for o in self.ops if op in o.inputs]

    def validate(self) -> None:
        """Check topological order and dependency membership."""
        seen: set = set()
        for op in self.ops:
            for producer in op.inputs:
                if producer not in seen:
                    raise ValueError(
                        f"graph {self.name!r}: op {op.name!r} appears before "
                        f"its producer {producer.name!r}"
                    )
            seen.add(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterable[Op]:
        return iter(self.ops)
