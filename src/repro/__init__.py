"""repro: a simulator-based reproduction of "Debunking the CUDA Myth
Towards GPU-based AI Systems" (ISCA 2025).

The paper characterizes Intel's Gaudi-2 NPU against NVIDIA's A100 GPU
for AI model serving.  This library rebuilds the entire study on
mechanistic performance/energy models of both devices:

* :mod:`repro.hw` -- device models (MME, Tensor Cores, TPC vector
  engines, HBM, power).
* :mod:`repro.tpc` -- a TPC-C programming-model simulator (VLIW
  scoreboard pipeline, index space, kernel DSL).
* :mod:`repro.cuda` -- the A100 CUDA-kernel analog.
* :mod:`repro.comm` -- P2P-mesh vs NVSwitch collectives (HCCL/NCCL).
* :mod:`repro.graph` -- the Gaudi graph-compiler model (fusion, MME
  configuration, MME/TPC pipelining).
* :mod:`repro.kernels` -- GEMM, STREAM, gather/scatter, embedding
  operators, attention, PagedAttention.
* :mod:`repro.models` -- DLRM-DCNv2 (RM1/RM2) and Llama-3.1 (8B/70B).
* :mod:`repro.serving` -- paged-KV continuous-batching LLM engine and
  the RecSys server.
* :mod:`repro.core` -- the characterization framework (experiments,
  sweeps, rooflines, comparisons).
* :mod:`repro.figures` -- regeneration of every table and figure in
  the paper's evaluation.

Quickstart::

    from repro import A100, GAUDI2, get_device
    gaudi, a100 = get_device(GAUDI2), get_device(A100)
    print(gaudi.gemm(8192, 8192, 8192).utilization)   # ~0.997
    print(a100.gemm(8192, 8192, 8192).utilization)    # ~0.91
"""

from repro.hw import (
    A100Device,
    A100_SPEC,
    A100,
    GAUDI2,
    GAUDI3,
    H100,
    Backend,
    DType,
    Device,
    DeviceSpec,
    GAUDI2_SPEC,
    Gaudi2Device,
    get_backend,
    get_device,
    list_backends,
    register_backend,
    resolve_backend,
)

__version__ = "1.0.0"

__all__ = [
    "A100Device",
    "A100_SPEC",
    "A100",
    "Backend",
    "GAUDI2",
    "GAUDI3",
    "H100",
    "DType",
    "Device",
    "DeviceSpec",
    "GAUDI2_SPEC",
    "Gaudi2Device",
    "__version__",
    "get_backend",
    "get_device",
    "list_backends",
    "register_backend",
    "resolve_backend",
]
