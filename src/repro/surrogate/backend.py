"""``SurrogateBackend``: fitted predictors behind the Backend protocol.

Registering ``<base>@surrogate`` (done lazily by the backend registry
the first time such a name is resolved) exposes a drop-in platform
whose GEMM and collective cost queries are served by the certified
fitted predictors of :mod:`repro.surrogate.fitting`, falling back to
the exact base backend outside the fitted domain (non-BF16 dtypes,
off-lattice topology degrees, degraded fabrics).  The facade *is* the
base platform in every other respect: it shares the base ``DeviceSpec``
object (so spec lookups, attention closed forms, and the power model
are identical) and copies the base kernel-dialect attributes.

Fitted models are cached process-wide, so every instance -- including
``fresh=True`` ones from the conformance suite -- serves bit-identical
predictions from one fit.

Runtime honesty is enforced by the audit layer: a seeded fraction of
fast-path predictions is recomputed through the exact model and held to
the surface's certified error bound (``SurrogateEquivalence`` check;
strict mode raises).  All traffic is counted in
:data:`SURROGATE_COUNTERS` for ``repro top``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Union

from repro.audit.auditor import get_auditor
from repro.comm.api import CollectiveLibrary, CollectiveReport
from repro.comm.busbw import bus_bandwidth_factor
from repro.hw.backend import BackendInfo, REGISTRY, get_backend, register_backend, resolve_backend
from repro.hw.device import Device, MatmulResult
from repro.hw.spec import DType, register_spec
from repro.surrogate.fitting import SurrogateModel, fit_backend
from repro.surrogate.surfaces import COLLECTIVE_PARTICIPANTS

__all__ = [
    "SURROGATE_COUNTERS",
    "SurrogateBackend",
    "SurrogateCollectiveLibrary",
    "ensure_registered",
    "fitted_models",
    "get_surrogate_model",
    "set_surrogate_model",
]

#: Registry-key suffix that requests the surrogate facade of a backend.
SUFFIX = "@surrogate"

#: Process-wide fast-path/fallback/spot-check counters (``repro top``).
SURROGATE_COUNTERS: Counter = Counter()

#: Process-wide fitted models, keyed by base backend key.
_MODELS: Dict[str, SurrogateModel] = {}


def get_surrogate_model(
    base_key: str, workers: Optional[Union[int, str]] = None
) -> SurrogateModel:
    """The (process-cached) fitted model for one base backend."""
    base_key = resolve_backend(base_key)
    model = _MODELS.get(base_key)
    if model is None:
        model = fit_backend(base_key, workers=workers)
        _MODELS[base_key] = model
    return model


def set_surrogate_model(base_key: str, model: SurrogateModel) -> None:
    """Install a model (e.g. loaded from an artifact) as the process's
    fitted model for ``base_key``.  Existing backend instances pick it
    up on their next uncached query."""
    _MODELS[resolve_backend(base_key)] = model
    # Invalidate the registry's cached instance so new lookups bind the
    # installed model rather than a previously fitted one.
    REGISTRY._instances.pop(f"{resolve_backend(base_key)}{SUFFIX}", None)


def fitted_models() -> Dict[str, SurrogateModel]:
    """Read-only view of the models fitted so far (may be empty)."""
    return dict(_MODELS)


class SurrogateCollectiveLibrary(CollectiveLibrary):
    """Collective library serving fitted per-op tables.

    Off-table traffic -- participant counts outside the fitted lattice,
    unknown ops -- goes to the exact library; rebinding onto another
    topology (including every degraded fault-state view) returns the
    *exact* library, because fitted tables only describe the healthy
    fabric they were sampled on.
    """

    def __init__(self, exact: CollectiveLibrary, model: SurrogateModel) -> None:
        super().__init__(
            topology=exact.topology,
            protocol_efficiency=exact.protocol_efficiency,
            op_efficiency=exact.op_efficiency,
            name=f"{exact.name}{SUFFIX}",
        )
        self._exact = exact
        self._model = model

    def run(self, op, size_bytes: float, participants: int) -> CollectiveReport:
        surface = f"collective.{op.value}"
        if (
            surface not in self._model.surfaces
            or participants not in COLLECTIVE_PARTICIPANTS
            or size_bytes <= 0
        ):
            SURROGATE_COUNTERS["collective.fallback"] += 1
            return self._exact.run(op, size_bytes, participants)
        time = float(self._model.collective_time(op.value, float(size_bytes), participants))
        SURROGATE_COUNTERS["collective.predicted"] += 1
        auditor = get_auditor()
        if auditor is not None and auditor.should_verify_surrogate():
            exact_time = self._exact.run(op, size_bytes, participants).time
            passed = auditor.on_surrogate_result(
                surface, (float(size_bytes), participants), time, exact_time,
                self._model.tolerance(surface),
            )
            SURROGATE_COUNTERS["spot.pass" if passed else "spot.fail"] += 1
        algbw = size_bytes / time if time > 0 else 0.0
        busbw = algbw * bus_bandwidth_factor(op, participants)
        return CollectiveReport(
            op=op,
            size_bytes=size_bytes,
            participants=participants,
            time=time,
            algorithm_bandwidth=algbw,
            bus_bandwidth=busbw,
            bus_utilization=busbw / self.NOMINAL_BANDWIDTH,
        )

    def with_topology(self, topology) -> CollectiveLibrary:
        # Fault-state and what-if views are priced exactly.
        return self._exact.with_topology(topology)


class SurrogateBackend(Device):
    """Drop-in backend facade over one base platform's fitted model."""

    def __init__(self, base_key: str) -> None:
        self.base_key = resolve_backend(base_key)
        base = get_backend(self.base_key)
        super().__init__(base.spec)
        self.family = base.family
        self.decode_attention = base.decode_attention
        self.smi_style = base.smi_style
        self.attention_efficiency = base.attention_efficiency
        self._base = base
        # Fitting is triggered here (process-cached), so the first
        # instantiation pays the fit and every later one is free.
        get_surrogate_model(self.base_key)

    @property
    def model(self) -> SurrogateModel:
        return get_surrogate_model(self.base_key)

    def __repr__(self) -> str:
        return f"SurrogateBackend({self.base_key})"

    # -- GEMM fast path ------------------------------------------------
    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        model = self.model
        if dtype is not DType.BF16 or not model.gemm_in_domain(m, k, n, batch):
            SURROGATE_COUNTERS["gemm.fallback"] += 1
            return self._base.gemm(m, k, n, dtype=dtype, batch=batch)
        out = model.gemm_predict(m, k, n, batch)
        time = float(out["time"])
        SURROGATE_COUNTERS["gemm.predicted"] += 1
        auditor = get_auditor()
        if auditor is not None and auditor.should_verify_surrogate():
            exact_time = self._base.gemm(m, k, n, dtype=dtype, batch=batch).time
            passed = auditor.on_surrogate_result(
                "gemm", (m, k, n, batch), time, exact_time,
                model.tolerance("gemm"),
            )
            SURROGATE_COUNTERS["spot.pass" if passed else "spot.fail"] += 1
        flops = 2.0 * batch * m * k * n
        achieved = flops / time if time > 0 else 0.0
        peak = self.spec.matrix.peak(dtype)
        label = model.predictor("gemm").labels()[int(out["piece"])]
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=achieved / peak,
            memory_bound=bool(out["memory_bound"]),
            active_mac_fraction=float(out["mac_fraction"]),
            config_label=label,
        )

    # -- fabric --------------------------------------------------------
    def collective_library(self, num_devices: int = 8):
        exact = self._base.collective_library(num_devices)
        if num_devices != max(COLLECTIVE_PARTICIPANTS):
            # Tables were sampled on the full healthy node fabric.
            return exact
        return SurrogateCollectiveLibrary(exact, self.model)


def ensure_registered(base_name: str) -> str:
    """Register ``<base>@surrogate`` (idempotent); returns its key.

    Called lazily by :meth:`repro.hw.backend.BackendRegistry.resolve`
    the first time a ``...@surrogate`` name is looked up.  Registration
    is declaration-only -- fitting happens at first instantiation.
    """
    base_key = resolve_backend(base_name)
    key = f"{base_key}{SUFFIX}"
    if key in REGISTRY.keys():
        return key
    info = REGISTRY.info(base_key)
    spec = REGISTRY.spec(base_key)
    register_backend(BackendInfo(
        key=key,
        display_name=f"{info.display_name}{SUFFIX}",
        vendor=info.vendor,
        family=info.family,
        factory=lambda base_key=base_key: SurrogateBackend(base_key),
        spec=spec,
        summary=f"Certified fitted surrogate of {info.display_name} "
                "(ISSUE 10: design-space sweeps beyond exact-simulator speed)",
    ))
    # Spec lookups must return the *same* object as the base platform.
    register_spec(key, spec)
    return key
