"""Design-space sweeps that only pencil out at surrogate speed.

Two sweeps live here:

* :func:`gemm_grid_sweep` -- a fig07-style dense m x n utilization grid
  at fixed K.  The exact path walks ``device.gemm`` point by point
  (every shape distinct, so memoization cannot help); the surrogate
  path answers the whole grid in one vectorized predictor call.  This
  is the ``sweep_surrogate`` bench case's workload.
* :func:`design_space_sweep` -- the ISSUE 10 figure: MME geometry x
  fabric (tensor-parallel degree) x batch-policy grid scoring decode
  throughput and a TTFT proxy for a Llama-3-8B-shaped decoder, with
  every cost term (layer GEMMs, paged attention, per-layer all-reduces,
  prefill attention) served by the fitted surfaces.  An exact twin
  exists for spot comparison and the bench before-path.

Model shapes follow Llama-3-8B (the paper's serving workload): 32
layers, hidden 4096, 32 query / 8 KV heads of dim 128, FFN 14336,
fused QKV and gate+up projections, TP-sharded along the head/FFN dim.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.surrogate.surfaces import ATTENTION_HEAD_DIM, exact_paged_time

__all__ = ["design_space_sweep", "gemm_grid_sweep", "LLAMA_8B"]

#: Llama-3-8B decoder dimensions (per layer, unsharded).
LLAMA_8B = {
    "layers": 32,
    "hidden": 4096,
    "q_heads": 32,
    "kv_heads": 8,
    "head_dim": ATTENTION_HEAD_DIM,
    "ffn": 14336,
    "dtype_bytes": 2,
}

#: Default design-space grid (fast mode trims each axis).
TP_GRID = (2, 4, 8)
BATCH_POLICY_GRID = (8, 16, 32, 64, 128)
CONTEXT_GRID = (1024, 4096, 16384)
#: Prompt length used by the TTFT (prefill) proxy.
PREFILL_TOKENS = 1024


def _layer_gemm_shapes(tp: int, model: Dict = LLAMA_8B) -> List[tuple]:
    """Per-layer decode GEMM ``(k, n)`` shapes at TP degree ``tp``
    (m is the token count: batch for decode, prompt tokens for prefill)."""
    hidden = model["hidden"]
    q = model["q_heads"] * model["head_dim"]
    kv = model["kv_heads"] * model["head_dim"]
    ffn = model["ffn"]
    return [
        (hidden, (q + 2 * kv) // tp),   # fused QKV projection
        (q // tp, hidden),              # attention output projection
        (hidden, 2 * ffn // tp),        # fused gate + up
        (ffn // tp, hidden),            # down projection
    ]


def gemm_grid_sweep(
    backend_key: str,
    k: int = 16384,
    lo: int = 16,
    hi: int = 16384,
    per_octave: int = 16,
    exact: bool = False,
) -> Dict:
    """Dense m x n GEMM utilization grid at fixed ``k`` (fig07-style).

    With ``exact`` the grid walks the exact cost model shape by shape;
    otherwise the fitted surrogate answers it in one vectorized call.
    Returns summary statistics (so both paths produce comparable,
    deterministic output) plus the grid extent.
    """
    from repro.hw.backend import get_backend
    from repro.surrogate.backend import get_surrogate_model

    octaves = math.log2(hi / lo)
    count = int(round(octaves * per_octave)) + 1
    axis = np.unique(np.round(
        np.exp2(np.linspace(math.log2(lo), math.log2(hi), count))
    ).astype(int))
    m_grid, n_grid = np.meshgrid(axis, axis, indexing="ij")

    if exact:
        base_key = backend_key.split("@")[0]
        device = get_backend(base_key, fresh=True)
        times = np.empty(m_grid.size, dtype=float)
        flat_m, flat_n = m_grid.ravel(), n_grid.ravel()
        for index in range(times.size):
            times[index] = device.gemm(int(flat_m[index]), k, int(flat_n[index])).time
        times = times.reshape(m_grid.shape)
    else:
        model = get_surrogate_model(backend_key.split("@")[0])
        times = model.gemm_predict(m_grid, k, n_grid, 1)["time"]

    flops = 2.0 * m_grid.astype(float) * k * n_grid.astype(float)
    utilization = flops / times
    return {
        "backend": backend_key,
        "k": k,
        "points": int(m_grid.size),
        "axis": [int(v) for v in axis],
        "total_time": float(np.sum(times)),
        "mean_achieved_tflops": float(np.mean(utilization) / 1e12),
        "peak_point": [int(m_grid.ravel()[int(np.argmax(utilization))]),
                       int(n_grid.ravel()[int(np.argmax(utilization))])],
        "exact": bool(exact),
    }


def _surrogate_cell(model, tp: int, batch: int, context: int,
                    shapes: Sequence[tuple], layers: int, hidden: int,
                    dtype_bytes: int) -> Dict:
    """Score one (tp, batch-policy, context) cell via fitted surfaces."""
    gemm_k = np.array([shape[0] for shape in shapes], dtype=float)
    gemm_n = np.array([shape[1] for shape in shapes], dtype=float)
    decode = model.gemm_predict(float(batch), gemm_k, gemm_n, 1.0)
    gemm_time = float(np.sum(decode["time"]))
    paged = float(model.paged_time(tp, batch, context))
    allreduce_bytes = float(batch * hidden * dtype_bytes)
    comm = 2.0 * float(model.collective_time("all_reduce", allreduce_bytes, tp))
    step = layers * (gemm_time + paged + comm)

    prefill = model.gemm_predict(float(PREFILL_TOKENS), gemm_k, gemm_n, 1.0)
    prefill_attention = float(model.attention_time(tp, 1, PREFILL_TOKENS))
    prefill_comm = 2.0 * float(
        model.collective_time("all_reduce", float(PREFILL_TOKENS * hidden * dtype_bytes), tp)
    )
    ttft = layers * (float(np.sum(prefill["time"])) + prefill_attention + prefill_comm)

    labels = model.predictor("gemm").labels()
    dominant = labels[int(decode["piece"][int(np.argmax(decode["time"]))])]
    return {
        "step_time": step,
        "throughput": batch / step,
        "ttft": ttft,
        "geometry": dominant,
    }


def _exact_cell(device, tp: int, batch: int, context: int,
                shapes: Sequence[tuple], layers: int, hidden: int,
                dtype_bytes: int) -> Dict:
    """Exact twin of :func:`_surrogate_cell` (same cost terms)."""
    from repro.comm.collectives import CollectiveOp
    from repro.kernels.attention import AttentionConfig, attention_time

    decode = [device.gemm(batch, k, n) for k, n in shapes]
    gemm_time = math.fsum(r.time for r in decode)
    paged = exact_paged_time(device, tp, batch, context)
    library = device.collective_library(8)
    comm = 2.0 * library.run(
        CollectiveOp.ALL_REDUCE, float(batch * hidden * dtype_bytes), tp
    ).time
    step = layers * (gemm_time + paged + comm)

    prefill = math.fsum(device.gemm(PREFILL_TOKENS, k, n).time for k, n in shapes)
    config = AttentionConfig(
        batch=1, q_heads=LLAMA_8B["q_heads"] // tp,
        kv_heads=max(1, LLAMA_8B["kv_heads"] // tp),
        head_dim=LLAMA_8B["head_dim"], seq_q=PREFILL_TOKENS, seq_kv=PREFILL_TOKENS,
    )
    prefill_attention = attention_time(device, config).time
    prefill_comm = 2.0 * library.run(
        CollectiveOp.ALL_REDUCE, float(PREFILL_TOKENS * hidden * dtype_bytes), tp
    ).time
    ttft = layers * (prefill + prefill_attention + prefill_comm)

    worst = max(decode, key=lambda r: r.time)
    return {
        "step_time": step,
        "throughput": batch / step,
        "ttft": ttft,
        "geometry": worst.config_label,
    }


def design_space_sweep(
    backend_key: str,
    fast: bool = False,
    exact: bool = False,
    tp_grid: Optional[Sequence[int]] = None,
    batch_grid: Optional[Sequence[int]] = None,
    context_grid: Optional[Sequence[int]] = None,
) -> Dict:
    """The MME-geometry x fabric x batch-policy design-space grid.

    Returns ``{"rows": [...], "best": {...}, ...}`` where each row
    scores one cell with decode throughput (tokens/s at steady state),
    the TTFT proxy, and the dominant engine geometry label.
    """
    from repro.hw.backend import get_backend

    tps = list(tp_grid or (TP_GRID[:2] if fast else TP_GRID))
    batches = list(batch_grid or (BATCH_POLICY_GRID[:3] if fast else BATCH_POLICY_GRID))
    contexts = list(context_grid or (CONTEXT_GRID[:2] if fast else CONTEXT_GRID))

    layers = LLAMA_8B["layers"]
    hidden = LLAMA_8B["hidden"]
    dtype_bytes = LLAMA_8B["dtype_bytes"]

    if exact:
        device = get_backend(backend_key.split("@")[0], fresh=True)
    else:
        from repro.surrogate.backend import get_surrogate_model

        model = get_surrogate_model(backend_key.split("@")[0])

    rows: List[Dict] = []
    for tp in tps:
        shapes = _layer_gemm_shapes(tp)
        for batch in batches:
            for context in contexts:
                if exact:
                    cell = _exact_cell(device, tp, batch, context, shapes,
                                       layers, hidden, dtype_bytes)
                else:
                    cell = _surrogate_cell(model, tp, batch, context, shapes,
                                           layers, hidden, dtype_bytes)
                rows.append({"tp": tp, "batch": batch, "context": context, **cell})

    best = max(rows, key=lambda row: row["throughput"])
    return {
        "backend": backend_key,
        "mode": "exact" if exact else "surrogate",
        "cells": len(rows),
        "rows": rows,
        "best": best,
    }
