"""Cost-surface catalogue: what the surrogate fits, and how to sample it.

Each :class:`Surface` names one exact cost model, the structured lattice
it is sampled over, the predictor family that fits it, and the
certificate tolerance it must meet on held-out points.  The catalogue is
deliberately *data*: the fitting pipeline (:mod:`repro.surrogate.fitting`)
iterates it, and the per-surface exact evaluators double as the
spot-check oracles for the runtime ``SurrogateEquivalence`` audit.

Lattice conventions
-------------------
Shape-like axes are geometric (``per_octave`` values per doubling) so
relative interpolation error is uniform across scales.  Axes the cost
models treat as categorical -- tensor-parallel degree, collective
participants -- are ``exact``-match: off-lattice queries fall back to
the exact model rather than interpolating across topology changes.
The paged-attention surface is tabulated over *KV blocks* rather than
context length: decode cost is a function of ``ceil(context / 128)``,
so interpolating in block space steps over the block-quantization
cliffs that defeat a context-space table (measured: 7-25% error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = [
    "ATTENTION_HEAD_DIM",
    "ATTENTION_KV_HEADS",
    "ATTENTION_Q_HEADS",
    "COLLECTIVE_OPS",
    "COLLECTIVE_PARTICIPANTS",
    "PAGED_BLOCK_SIZE",
    "Surface",
    "SURFACES",
    "geometric_lattice",
    "surface_names",
]

#: Default certificate tolerance (held-out max relative error bound).
DEFAULT_TOLERANCE = 0.05

#: Llama-3-style GQA attention head layout the attention/paged surfaces
#: are tabulated for (heads shard by the exact-match TP axis).
ATTENTION_Q_HEADS = 32
ATTENTION_KV_HEADS = 8
ATTENTION_HEAD_DIM = 128
#: KV block size the paged surface's block axis is quantized in.
PAGED_BLOCK_SIZE = 128

#: Tensor-parallel degrees the attention/paged tables cover.
TP_DEGREES = (1, 2, 4, 8)
#: Collective participant counts the fabric tables cover.
COLLECTIVE_PARTICIPANTS = (2, 4, 8)
#: Collective op value strings with fitted tables (one surface each).
COLLECTIVE_OPS = ("all_reduce", "all_gather", "reduce_scatter", "all_to_all")


def geometric_lattice(lo: int, hi: int, per_octave: int) -> List[int]:
    """Deduplicated integer lattice with ``per_octave`` points per
    doubling, inclusive of both endpoints."""
    steps = int(round(math.log2(hi / lo) * per_octave))
    values: List[int] = []
    for step in range(steps + 1):
        value = int(round(lo * 2.0 ** (step / per_octave)))
        if not values or value > values[-1]:
            values.append(value)
    if values[-1] != hi:
        values.append(hi)
    return values


@dataclass(frozen=True)
class Surface:
    """One fitted cost surface (see module docstring)."""

    name: str
    #: Predictor family: "structured-gemm" | "log-grid".
    family: str
    #: Ordered axis declarations (log-grid) or sampling grid (gemm).
    axes: Tuple[Dict, ...]
    #: ``evaluate(device, point) -> float`` against the exact model.
    evaluate: Callable
    #: Held-out max relative error the certificate must stay under.
    tolerance: float = DEFAULT_TOLERANCE
    #: Held-out points drawn per certificate.
    holdout_points: int = 128
    extra: Dict = field(default_factory=dict)

    def lattice_points(self) -> List[Tuple[int, ...]]:
        """Row-major cartesian product of the axis lattices."""
        points: List[Tuple[int, ...]] = [()]
        for axis in self.axes:
            points = [p + (v,) for p in points for v in axis["values"]]
        return points


# -- exact evaluators --------------------------------------------------
def _attention_heads(tp: int) -> Tuple[int, int]:
    return ATTENTION_Q_HEADS // tp, max(1, ATTENTION_KV_HEADS // tp)


def eval_gemm(device, point: Tuple[int, ...]) -> float:
    """Exact BF16 GEMM time for an ``(m, k, n, batch)`` point."""
    m, k, n, batch = point
    return device.gemm(m, k, n, batch=batch).time


def eval_attention(device, point: Tuple[int, ...]) -> float:
    """Exact prefill attention time for a ``(tp, batch, seq)`` point."""
    from repro.kernels.attention import AttentionConfig, attention_time

    tp, batch, seq = point
    q_heads, kv_heads = _attention_heads(tp)
    config = AttentionConfig(
        batch=batch, q_heads=q_heads, kv_heads=kv_heads,
        head_dim=ATTENTION_HEAD_DIM, seq_q=seq, seq_kv=seq,
    )
    return attention_time(device, config).time


def eval_paged(device, point: Tuple[int, ...]) -> float:
    """Exact decode paged-attention time for a ``(tp, batch, blocks)`` point."""
    tp, batch, blocks = point
    return exact_paged_time(device, tp, batch, blocks * PAGED_BLOCK_SIZE)


def exact_paged_time(device, tp: int, batch: int, context: int) -> float:
    """Exact per-layer decode paged-attention time for one device."""
    from repro.kernels.paged_attention import (
        PagedAttentionConfig,
        a100_paged_attention,
        vllm_opt_paged_attention,
    )

    q_heads, kv_heads = _attention_heads(tp)
    config = PagedAttentionConfig.uniform(
        batch=batch, seq_len=context, q_heads=q_heads, kv_heads=kv_heads,
        head_dim=ATTENTION_HEAD_DIM, block_size=PAGED_BLOCK_SIZE,
    )
    impl = vllm_opt_paged_attention if device.family == "gaudi" else a100_paged_attention
    return impl(config, device.spec).time


def _collective_evaluator(op_value: str) -> Callable:
    def evaluate(device, point: Tuple[int, ...]) -> float:
        from repro.comm.collectives import CollectiveOp

        size, participants = point
        library = device.collective_library(max(COLLECTIVE_PARTICIPANTS))
        return library.run(CollectiveOp(op_value), size, participants).time

    return evaluate


def eval_stream(device, point: Tuple[int, ...]) -> float:
    """Exact TPC STREAM-triad time for a ``(num_elements,)`` point."""
    from repro.kernels.stream import StreamOp, run_stream

    (num_elements,) = point
    return run_stream(device=device, op=StreamOp.TRIAD, num_elements=num_elements).time


# -- catalogue ---------------------------------------------------------
def _build_surfaces() -> Dict[str, Surface]:
    shape_lattice = geometric_lattice(16, 16384, 2)
    surfaces: Dict[str, Surface] = {}

    surfaces["gemm"] = Surface(
        name="gemm",
        family="structured-gemm",
        axes=(
            {"name": "m", "values": shape_lattice, "mode": "interp"},
            {"name": "k", "values": [16, 512, 16384], "mode": "interp"},
            {"name": "n", "values": shape_lattice, "mode": "interp"},
            {"name": "batch", "values": [1, 4], "mode": "interp"},
        ),
        evaluate=eval_gemm,
        holdout_points=160,
    )

    surfaces["attention"] = Surface(
        name="attention",
        family="structured-attention",
        axes=(
            {"name": "tp", "values": list(TP_DEGREES), "mode": "exact"},
            {"name": "batch",
             "values": [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64],
             "mode": "interp"},
            {"name": "seq", "values": geometric_lattice(128, 16384, 4),
             "mode": "interp"},
        ),
        evaluate=eval_attention,
    )

    surfaces["paged"] = Surface(
        name="paged",
        family="log-grid",
        axes=(
            {"name": "tp", "values": list(TP_DEGREES), "mode": "exact"},
            {"name": "batch",
             "values": [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128],
             "mode": "interp"},
            {"name": "blocks", "values": geometric_lattice(1, 128, 4),
             "mode": "interp"},
        ),
        evaluate=eval_paged,
    )

    for op_value in COLLECTIVE_OPS:
        surfaces[f"collective.{op_value}"] = Surface(
            name=f"collective.{op_value}",
            family="log-grid",
            axes=(
                {"name": "size", "values": geometric_lattice(1 << 10, 1 << 30, 2),
                 "mode": "interp"},
                {"name": "participants", "values": list(COLLECTIVE_PARTICIPANTS),
                 "mode": "exact"},
            ),
            evaluate=_collective_evaluator(op_value),
            holdout_points=64,
            extra={"op": op_value},
        )

    surfaces["tpc_stream"] = Surface(
        name="tpc_stream",
        family="log-grid",
        axes=(
            {"name": "num_elements",
             "values": geometric_lattice(1 << 14, 1 << 26, 4),
             "mode": "interp"},
        ),
        evaluate=eval_stream,
        holdout_points=48,
    )
    return surfaces


#: The full catalogue, keyed by surface name (deterministic order).
SURFACES: Dict[str, Surface] = _build_surfaces()


def surface_names() -> List[str]:
    """Catalogue surface names in deterministic (insertion) order."""
    return list(SURFACES)
