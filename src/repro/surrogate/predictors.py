"""Fitted fast-path predictor families for the surrogate layer.

Two predictor shapes cover every cost surface the exact simulator
exposes (see DESIGN.md §12 for the why):

* :class:`StructuredGemmPredictor` -- GEMM cost is a *staircase* of the
  engine geometry (``ceil(m/h)·ceil(n/w)`` tile counts snapping to
  engine/SM waves), which no smooth interpolant can track within the
  5% certificate (measured: plain log-log trilinear interpolation errs
  up to 40% at geometry cliffs).  Instead the predictor keeps the exact
  *structure* -- one piece per engine configuration observed in the
  sampled grid, with the per-piece cycle model ``time = a·(Q·k) + b·Q +
  c·u + d`` fitted by least squares (``Q`` = engine passes / SM waves,
  ``u`` = stream-K fixup indicator), plus a fitted inverse-bandwidth
  memory roofline over the exact blocked-GEMM traffic basis.
* :class:`LogGridPredictor` -- attention, paged attention, collectives,
  and STREAM surfaces are smooth (piecewise log-log linear) in their
  shape parameters, so N-D multilinear interpolation in ``log2`` space
  over a declared lattice is accurate and trivially vectorized.  Axes
  that must match exactly (TP degree, collective participants) are
  declared ``exact`` and gate :meth:`LogGridPredictor.in_domain`.

Both predictors serialize to plain-JSON payloads (``to_payload`` /
``from_payload``) so fitted models round-trip byte-identically through
the checksummed artifact format of :mod:`repro.surrogate.artifact`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "LogGridPredictor",
    "StructuredAttentionPredictor",
    "StructuredGemmPredictor",
    "parse_geometry_label",
]

#: Feature modes for one GEMM piece: how the pass/wave count ``Q`` is
#: derived from the batch-1 tile count ``T``.
_MODES = ("fill", "wave", "streamk")


def parse_geometry_label(label: str) -> Tuple[int, int, int]:
    """``(height, width, engines)`` parsed from a config label.

    Handles every built-in backend's label dialect: ``"MME 256x256x2"``
    (reconfigurable MME with engine count), ``"MME 512x128"`` (single
    engine), ``"CTA 128x256, 3 waves"``, ``"Tile 128x256+TMA, 2.43
    waves"``.
    """
    match = re.search(r"(\d+)x(\d+)(?:x(\d+))?", label)
    if match is None:
        raise ValueError(f"unparseable geometry label {label!r}")
    height, width = int(match.group(1)), int(match.group(2))
    engines = int(match.group(3)) if match.group(3) else 1
    return height, width, engines


def _tiles(m: np.ndarray, n: np.ndarray, height: int, width: int) -> np.ndarray:
    return np.ceil(m / height) * np.ceil(n / width)


def _passes(tiles: np.ndarray, mode: str, engines: int, cores: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(Q, u)`` feature pair for one mode (see module docstring)."""
    if mode == "fill":
        return np.ceil(tiles / engines), np.zeros_like(tiles)
    if mode == "wave":
        return np.ceil(tiles / cores), np.zeros_like(tiles)
    if mode == "streamk":
        full = np.floor(tiles / cores)
        rem = tiles - full * cores
        return full + rem / cores, (rem > 0).astype(float)
    raise ValueError(f"unknown piece mode {mode!r}")


def blocked_traffic(
    m: np.ndarray, k: np.ndarray, n: np.ndarray, itemsize: int, sram_bytes: int
) -> np.ndarray:
    """Vectorized twin of :func:`repro.hw.systolic.blocked_gemm_traffic`.

    Backend-specific derates (skinny-shape efficiency, cluster reuse)
    are *not* replicated here -- they are absorbed by the per-class
    fitted inverse bandwidths, whose class boundary (``min(m, n) <
    128``) matches the exact models' conditionals.
    """
    block = np.maximum(64.0, (sram_bytes // itemsize) // (3 * np.minimum(k, 512)))
    return itemsize * (
        np.ceil(n / block) * m * k + np.ceil(m / block) * k * n + m * n
    )


class StructuredGemmPredictor:
    """Piecewise structural GEMM cost model (one piece per geometry)."""

    def __init__(
        self,
        pieces: Sequence[Dict],
        memory: Dict,
        peak_flops: float,
        cores: int,
    ) -> None:
        if not pieces:
            raise ValueError("a GEMM predictor needs at least one piece")
        self.pieces = [dict(piece) for piece in pieces]
        self.memory = dict(memory)
        self.peak_flops = float(peak_flops)
        self.cores = int(cores)

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict:
        return {
            "kind": "structured-gemm",
            "pieces": [dict(piece) for piece in self.pieces],
            "memory": dict(self.memory),
            "peak_flops": self.peak_flops,
            "cores": self.cores,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "StructuredGemmPredictor":
        if payload.get("kind") != "structured-gemm":
            raise ValueError(f"not a structured-gemm payload: {payload.get('kind')!r}")
        return cls(
            pieces=payload["pieces"],
            memory=payload["memory"],
            peak_flops=payload["peak_flops"],
            cores=payload["cores"],
        )

    # -- prediction ----------------------------------------------------
    def _compute_times(
        self, m: np.ndarray, k: np.ndarray, n: np.ndarray, batch: np.ndarray
    ) -> np.ndarray:
        """``(pieces, points)`` compute-side times at the given batch."""
        times = np.empty((len(self.pieces), m.size), dtype=float)
        for index, piece in enumerate(self.pieces):
            tiles = batch * _tiles(m, n, piece["height"], piece["width"])
            q, u = _passes(tiles, piece["mode"], piece["engines"], self.cores)
            times[index] = (
                piece["alpha"] * (q * k)
                + piece["beta"] * q
                + piece["gamma"] * u
                + piece["delta"]
            )
        return times

    def predict(
        self,
        m: np.ndarray,
        k: np.ndarray,
        n: np.ndarray,
        batch: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Vectorized GEMM estimate over parallel shape arrays.

        Returns ``time``, ``memory_bound``, ``piece`` (index into
        :attr:`pieces` -- map through :meth:`labels` for display), and
        ``mac_fraction``.  Mirrors the exact models' two-step shape
        handling: the engine configuration is chosen at batch 1, then
        evaluated at the requested batch.
        """
        m = np.asarray(m, dtype=float)
        k = np.asarray(k, dtype=float)
        n = np.asarray(n, dtype=float)
        batch = np.asarray(batch, dtype=float)
        m, k, n, batch = np.broadcast_arrays(m, k, n, batch)
        shape = m.shape
        m, k, n, batch = (a.ravel() for a in (m, k, n, batch))

        ones = np.ones_like(m)
        # The exact models choose the engine configuration at batch 1
        # by minimum cycles, breaking ties toward fewer active MACs; a
        # MAC-proportional relative bias far below the certificate
        # tolerance reproduces that tie-break without disturbing real
        # cost differences.
        fractions = np.array([p["mac_fraction"] for p in self.pieces])
        selection_key = (
            self._compute_times(m, k, n, ones) * (1.0 + 1e-9 * fractions)[:, None]
        )
        choice = np.argmin(selection_key, axis=0)
        compute = np.take_along_axis(
            self._compute_times(m, k, n, batch), choice[None, :], axis=0
        )[0]

        mem = self.memory
        traffic = blocked_traffic(m, k, n, mem["itemsize"], mem["sram_bytes"])
        narrow = np.minimum(m, n) < mem["narrow_below"]
        inv_bw = np.where(narrow, mem["inv_bw_narrow"], mem["inv_bw_wide"])
        memory_time = batch * traffic * inv_bw

        flops = 2.0 * batch * m * k * n
        time = np.maximum(np.maximum(compute, memory_time), flops / self.peak_flops)
        return {
            "time": time.reshape(shape),
            "memory_bound": (memory_time > compute).reshape(shape),
            "piece": choice.reshape(shape),
            "mac_fraction": fractions[choice].reshape(shape),
        }

    def labels(self) -> List[str]:
        return [piece["label"] for piece in self.pieces]


class StructuredAttentionPredictor:
    """Fitted dense-attention roofline (one head layout, TP-sharded).

    Dense attention has one jump discontinuity tabulation cannot cross
    -- Gaudi's FusedSDPA spills a score-matrix fraction through HBM
    once the staged slice outgrows SRAM -- so, like GEMM, the surrogate
    keeps the exact *structure* (``max(compute, memory)`` over flops /
    traffic / spill-indicator features, the indicator replicated from
    the spec's SRAM size) and fits the coefficients by least squares
    on compute-bound and memory-bound samples respectively.
    """

    def __init__(self, coef: Dict, heads: Dict, spill: Dict) -> None:
        self.coef = dict(coef)
        self.heads = dict(heads)
        self.spill = dict(spill)

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict:
        return {
            "kind": "structured-attention",
            "coef": dict(self.coef),
            "heads": dict(self.heads),
            "spill": dict(self.spill),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "StructuredAttentionPredictor":
        if payload.get("kind") != "structured-attention":
            raise ValueError(
                f"not a structured-attention payload: {payload.get('kind')!r}"
            )
        return cls(coef=payload["coef"], heads=payload["heads"],
                   spill=payload["spill"])

    def features(self, tp, batch, seq) -> Dict[str, np.ndarray]:
        """Exact closed-form feature basis for equal-length causal
        self-attention at TP degree ``tp`` (heads shard with TP)."""
        tp = np.asarray(tp, dtype=float)
        batch = np.asarray(batch, dtype=float)
        seq = np.asarray(seq, dtype=float)
        tp, batch, seq = np.broadcast_arrays(tp, batch, seq)
        q_heads = self.heads["q_heads"] / tp
        kv_heads = np.maximum(1.0, self.heads["kv_heads"] / tp)
        dim = self.heads["head_dim"]
        itemsize = self.heads["itemsize"]
        flops = 2.0 * batch * q_heads * seq * seq * dim  # causal half
        qo_kv = 2.0 * batch * (q_heads + kv_heads) * seq * dim * itemsize
        score = batch * q_heads * seq * seq * itemsize
        slice_bytes = batch * q_heads * np.minimum(seq, 512.0) * seq * itemsize
        spilled = (
            (slice_bytes > self.spill["sram_bytes"])
            if self.spill["enabled"]
            else np.zeros(seq.shape, dtype=bool)
        )
        return {
            "flops": flops,
            "qo_kv_bytes": qo_kv,
            "spill_bytes": np.where(spilled, score, 0.0),
        }

    def predict(self, tp, batch, seq) -> np.ndarray:
        f = self.features(tp, batch, seq)
        coef = self.coef
        compute = coef["compute_flops"] * f["flops"] + coef["compute_const"]
        memory = (
            coef["mem_traffic"] * f["qo_kv_bytes"]
            + coef["mem_spill"] * f["spill_bytes"]
            + coef["mem_const"]
        )
        return np.maximum(compute, memory)


class LogGridPredictor:
    """N-D multilinear interpolation in ``log2`` space over a lattice.

    ``axes`` is an ordered list of ``{"name", "values", "mode"}`` where
    ``mode`` is ``"interp"`` (log2 multilinear between lattice values,
    clamped at the edges) or ``"exact"`` (queries must hit a lattice
    value; anything else is out of domain and the caller falls back to
    the exact model).  ``log2_times`` is the row-major table of
    ``log2(time)`` over the axis product.
    """

    def __init__(self, axes: Sequence[Dict], log2_times: Sequence[float]) -> None:
        self.axes = [
            {
                "name": axis["name"],
                "values": [int(v) for v in axis["values"]],
                "mode": axis["mode"],
            }
            for axis in axes
        ]
        expected = 1
        for axis in self.axes:
            expected *= len(axis["values"])
        table = np.asarray(log2_times, dtype=float)
        if table.size != expected:
            raise ValueError(
                f"table size {table.size} != lattice size {expected}"
            )
        self.table = table.reshape([len(axis["values"]) for axis in self.axes])

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict:
        return {
            "kind": "log-grid",
            "axes": [dict(axis) for axis in self.axes],
            "log2_times": [float(v) for v in self.table.ravel()],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "LogGridPredictor":
        if payload.get("kind") != "log-grid":
            raise ValueError(f"not a log-grid payload: {payload.get('kind')!r}")
        return cls(axes=payload["axes"], log2_times=payload["log2_times"])

    # -- prediction ----------------------------------------------------
    def in_domain(self, *coords) -> np.ndarray:
        """Whether each point can be served by the table.

        ``exact`` axes must hit a lattice value; ``interp`` axes only
        need to be positive (edge clamping covers the rest)."""
        coords = [np.asarray(c) for c in np.broadcast_arrays(*coords)]
        ok = np.ones(coords[0].shape, dtype=bool)
        for axis, values in zip(self.axes, coords):
            if axis["mode"] == "exact":
                ok &= np.isin(values, axis["values"])
            else:
                ok &= values > 0
        return ok

    def predict(self, *coords) -> np.ndarray:
        """Interpolated times for parallel coordinate arrays (one array
        per axis, in declaration order)."""
        coords = [np.asarray(c, dtype=float) for c in np.broadcast_arrays(*coords)]
        shape = coords[0].shape
        flat = [c.ravel() for c in coords]
        points = flat[0].size

        # Per axis: bracketing lower index + interpolation fraction.
        lows: List[np.ndarray] = []
        fracs: List[np.ndarray] = []
        for axis, values in zip(self.axes, flat):
            lattice = np.asarray(axis["values"], dtype=float)
            if axis["mode"] == "exact":
                low = np.searchsorted(lattice, values)
                low = np.clip(low, 0, lattice.size - 1)
                if not np.all(lattice[low] == values):
                    bad = values[lattice[np.clip(low, 0, lattice.size - 1)] != values]
                    raise ValueError(
                        f"axis {axis['name']!r} is exact-match; "
                        f"off-lattice value {bad[0]!r}"
                    )
                lows.append(low)
                fracs.append(np.zeros(points))
                continue
            logs = np.log2(np.clip(values, lattice[0], lattice[-1]))
            log_lattice = np.log2(lattice)
            low = np.searchsorted(log_lattice, logs, side="right") - 1
            low = np.clip(low, 0, lattice.size - 2 if lattice.size > 1 else 0)
            if lattice.size > 1:
                span = log_lattice[low + 1] - log_lattice[low]
                frac = (logs - log_lattice[low]) / span
            else:
                frac = np.zeros(points)
            lows.append(low)
            fracs.append(np.clip(frac, 0.0, 1.0))

        # Multilinear combine over the 2^d corners (d = #interp axes
        # with >1 lattice value; other axes contribute one corner).
        result = np.zeros(points)
        active = [
            index
            for index, axis in enumerate(self.axes)
            if axis["mode"] == "interp" and len(axis["values"]) > 1
        ]
        for corner in range(1 << len(active)):
            weight = np.ones(points)
            index = [low.copy() for low in lows]
            for bit, axis_index in enumerate(active):
                if corner >> bit & 1:
                    index[axis_index] = index[axis_index] + 1
                    weight = weight * fracs[axis_index]
                else:
                    weight = weight * (1.0 - fracs[axis_index])
            result += weight * self.table[tuple(index)]
        return np.exp2(result).reshape(shape)
