"""Checksummed, byte-identical surrogate artifacts.

One fitted :class:`~repro.surrogate.fitting.SurrogateModel` serializes
to one JSON file::

    {"payload": {...canonical model payload...}, "sha256": "..."}

The checksum is SHA-256 over the *canonical* JSON encoding of the
payload (sorted keys, compact separators -- the same
:func:`repro.core.journal.canonical_json` discipline the run journal
uses), so ``save -> load -> save`` is byte-identical and any tampering
or torn write fails loudly with a typed
:class:`~repro.audit.errors.ConfigError`.  Loading also re-checks every
surface certificate against its tolerance: an artifact whose held-out
error exceeds the bound refuses to load, no matter how it was produced.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Union

from repro.audit.errors import ConfigError
from repro.core.journal import canonical_json
from repro.surrogate.fitting import SurrogateModel

__all__ = ["artifact_path", "load_model", "save_model"]

#: Default directory artifacts are written under.
DEFAULT_DIR = pathlib.Path("artifacts") / "surrogate"


def artifact_path(base_key: str, out_dir: Union[str, pathlib.Path, None] = None) -> pathlib.Path:
    """Canonical artifact location for one backend's surrogate."""
    directory = pathlib.Path(out_dir) if out_dir is not None else DEFAULT_DIR
    return directory / f"{base_key}@surrogate.json"


def _digest(payload: dict) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def save_model(model: SurrogateModel, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one checksummed artifact (parents created as needed)."""
    path = pathlib.Path(path)
    payload = model.to_payload()
    record = {"payload": payload, "sha256": _digest(payload)}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(record) + "\n", encoding="utf-8")
    return path


def load_model(path: Union[str, pathlib.Path], enforce: bool = True) -> SurrogateModel:
    """Load + verify one artifact.

    Raises :class:`~repro.audit.errors.ConfigError` when the file is
    unreadable, the checksum mismatches, or (with ``enforce``) any
    surface certificate exceeds its tolerance.
    """
    path = pathlib.Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(
            f"no surrogate artifact at {path} (run `repro surrogate fit`)"
        ) from None
    except json.JSONDecodeError as error:
        raise ConfigError(f"surrogate artifact {path} is not valid JSON: {error}") from None
    if not isinstance(record, dict) or "payload" not in record:
        raise ConfigError(f"surrogate artifact {path} has no payload")
    digest = _digest(record["payload"])
    if digest != record.get("sha256"):
        raise ConfigError(
            f"surrogate artifact {path} failed its checksum "
            f"(stored {record.get('sha256')!r}, computed {digest!r}); "
            "refusing to load a tampered or torn artifact"
        )
    return SurrogateModel.from_payload(record["payload"], enforce=enforce)
