"""Deterministic fitting pipeline: exact samples -> certified predictors.

``fit_backend`` samples every surface in the catalogue against one
backend's exact cost models, fits the surface's predictor family, and
validates it on *held-out* points (drawn off-lattice from a
``SeedSequence``-derived generator, never from the training grid).  The
result is a :class:`SurrogateModel` whose payload is pure JSON: fitting
assembles the model *through* the payload, so a freshly fitted model and
one loaded from an artifact are bit-identical by construction.

Determinism contract (ISSUE 10 satellite): every per-surface fit is a
self-contained task of ``(backend, surface, seed)`` -- sampling grids
are fixed lattices, the holdout generator derives from
``SeedSequence([seed, surface_index])``, and summary statistics use
``math.fsum`` -- so ``repro surrogate fit`` is bit-identical across
runs and across the serial/process-pool paths
(:func:`repro.core.parallel.map_with_retries` preserves task order).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.audit.errors import ConfigError
from repro.surrogate.predictors import (
    LogGridPredictor,
    StructuredAttentionPredictor,
    StructuredGemmPredictor,
    _passes,
    _tiles,
    blocked_traffic,
    parse_geometry_label,
)
from repro.surrogate.surfaces import SURFACES, Surface, surface_names

__all__ = ["SCHEMA", "SurrogateModel", "fit_backend", "fit_surface", "validate_model"]

#: Artifact schema identifier (bump on any payload layout change).
SCHEMA = "repro-surrogate/v1"

#: Boundary of the "narrow" memory class -- must match the skinny-shape
#: conditionals in the exact models (``min(m, n) < 128``).
_NARROW_BELOW = 128

#: Deterministic mode preference when residuals tie.
_MODE_ORDER = ("fill", "wave", "streamk")

#: GEMM fast-path domain (outside it the backend falls back to exact).
GEMM_DOMAIN = {"min_dim": 1, "max_dim": 16384, "max_batch": 1024}


class SurrogateModel:
    """Fitted predictors + validation certificates for one backend."""

    def __init__(self, backend: str, surfaces: Dict[str, Dict]) -> None:
        self.backend = backend
        self.surfaces = surfaces
        self._predictors: Dict[str, object] = {}

    # -- payload (pure JSON both ways) ---------------------------------
    def to_payload(self) -> Dict:
        return {
            "schema": SCHEMA,
            "backend": self.backend,
            "surfaces": self.surfaces,
        }

    @classmethod
    def from_payload(cls, payload: Dict, enforce: bool = True) -> "SurrogateModel":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ConfigError(
                f"surrogate artifact schema {schema!r} != expected {SCHEMA!r}"
            )
        model = cls(backend=payload["backend"], surfaces=payload["surfaces"])
        if enforce:
            for name in model.surfaces:
                certificate = model.certificate(name)
                tolerance = model.tolerance(name)
                if not (certificate["max_rel_err"] <= tolerance):
                    raise ConfigError(
                        f"surrogate surface {name!r} for {model.backend!r} "
                        f"certifies max relative error "
                        f"{certificate['max_rel_err']:.4%} > tolerance "
                        f"{tolerance:.2%}; refusing to load"
                    )
        return model

    # -- accessors -----------------------------------------------------
    def certificate(self, name: str) -> Dict:
        return self.surfaces[name]["certificate"]

    def tolerance(self, name: str) -> float:
        return self.surfaces[name]["tolerance"]

    def predictor(self, name: str):
        predictor = self._predictors.get(name)
        if predictor is None:
            payload = self.surfaces[name]["predictor"]
            if payload["kind"] == "structured-gemm":
                predictor = StructuredGemmPredictor.from_payload(payload)
            elif payload["kind"] == "structured-attention":
                predictor = StructuredAttentionPredictor.from_payload(payload)
            else:
                predictor = LogGridPredictor.from_payload(payload)
            self._predictors[name] = predictor
        return predictor

    # -- typed query helpers (scalar or array alike) -------------------
    def gemm_in_domain(self, m, k, n, batch, dtype_name: str = "bf16") -> bool:
        domain = GEMM_DOMAIN
        dims_ok = all(
            domain["min_dim"] <= v <= domain["max_dim"] for v in (m, k, n)
        )
        return dtype_name == "bf16" and dims_ok and 1 <= batch <= domain["max_batch"]

    def gemm_predict(self, m, k, n, batch) -> Dict[str, np.ndarray]:
        return self.predictor("gemm").predict(m, k, n, batch)

    def attention_time(self, tp, batch, seq) -> np.ndarray:
        return self.predictor("attention").predict(tp, batch, seq)

    def paged_time(self, tp, batch, context) -> np.ndarray:
        from repro.surrogate.surfaces import PAGED_BLOCK_SIZE

        blocks = np.ceil(np.asarray(context, dtype=float) / PAGED_BLOCK_SIZE)
        return self.predictor("paged").predict(tp, batch, blocks)

    def collective_time(self, op_value: str, size, participants) -> np.ndarray:
        return self.predictor(f"collective.{op_value}").predict(size, participants)

    def stream_time(self, num_elements) -> np.ndarray:
        return self.predictor("tpc_stream").predict(num_elements)


# -- gemm fitting ------------------------------------------------------
def _fit_gemm(device, surface: Surface) -> Dict:
    points = surface.lattice_points()
    samples = [device.gemm(m, k, n, batch=b) for (m, k, n, b) in points]
    spec = device.spec
    from repro.hw.spec import DType

    peak = spec.matrix.peak(DType.BF16)
    cores = spec.vector.num_cores
    itemsize = DType.BF16.itemsize
    sram_bytes = spec.memory.sram_bytes

    m = np.array([s.m for s in samples], dtype=float)
    k = np.array([s.k for s in samples], dtype=float)
    n = np.array([s.n for s in samples], dtype=float)
    batch = np.array([s.batch for s in samples], dtype=float)
    time = np.array([s.time for s in samples], dtype=float)
    bound = np.array([s.memory_bound for s in samples], dtype=bool)
    # One piece per engine *geometry*: cuda labels append the wave
    # count ("CTA 128x128, 3 waves"), which would fragment a geometry
    # into per-wave-count slivers -- strip it before grouping.
    labels = np.array([s.config_label.split(",")[0] for s in samples], dtype=object)

    pieces: List[Dict] = []
    for label in sorted(set(labels)):
        mask = labels == label
        height, width, engines = parse_geometry_label(label)
        mac_fraction = max(s.active_mac_fraction for s, hit in zip(samples, mask) if hit)
        fit_mask = mask & ~bound
        piece = {
            "label": str(label),
            "height": height,
            "width": width,
            "engines": engines,
            "mac_fraction": float(mac_fraction),
        }
        if int(fit_mask.sum()) >= 4:
            tiles = batch[fit_mask] * _tiles(m[fit_mask], n[fit_mask], height, width)
            best: Optional[Tuple[float, str, np.ndarray]] = None
            for mode in _MODE_ORDER:
                q, u = _passes(tiles, mode, engines, cores)
                design = np.stack([q * k[fit_mask], q, u, np.ones_like(q)], axis=1)
                coef, *_ = np.linalg.lstsq(design, time[fit_mask], rcond=None)
                coef = np.maximum(coef, 0.0)
                residual = float(np.max(np.abs(design @ coef - time[fit_mask])
                                        / time[fit_mask]))
                # A later mode must be an order of magnitude better to
                # displace an earlier one: on large tile counts the
                # fractional stream-K wave count shadows the ceil modes
                # within the sample noise, but extrapolates wrongly to
                # small shapes.  The true mode recovers the exact basis
                # (residual ~1e-12), so the margin is safe.
                if best is None or residual < 0.1 * best[0]:
                    best = (residual, mode, coef)
            _, mode, coef = best
            piece.update(mode=mode, alpha=float(coef[0]), beta=float(coef[1]),
                         gamma=float(coef[2]), delta=float(coef[3]))
        else:
            # Geometry only ever chosen for memory-bound shapes in the
            # sample grid: give its compute side the ideal-MAC roofline
            # so piece selection still prefers bigger geometries.
            piece.update(mode="fill", alpha=float(2.0 * height * width * engines / peak),
                         beta=0.0, gamma=0.0, delta=0.0)
        pieces.append(piece)

    traffic = blocked_traffic(m, k, n, itemsize, sram_bytes)
    ratio = time / (batch * traffic)
    narrow = np.minimum(m, n) < _NARROW_BELOW
    fallback = 1.0 / spec.memory.bandwidth

    def _class_inv_bw(mask: np.ndarray) -> float:
        selected = ratio[mask & bound]
        return float(np.median(selected)) if selected.size else fallback

    memory = {
        "itemsize": itemsize,
        "sram_bytes": int(sram_bytes),
        "narrow_below": _NARROW_BELOW,
        "inv_bw_narrow": _class_inv_bw(narrow),
        "inv_bw_wide": _class_inv_bw(~narrow),
    }
    predictor = StructuredGemmPredictor(
        pieces=pieces, memory=memory, peak_flops=peak, cores=cores,
    )
    return predictor.to_payload()


def _holdout_gemm(device, predictor: StructuredGemmPredictor,
                  rng: np.random.Generator, points: int) -> List[float]:
    lo = math.log2(GEMM_DOMAIN["min_dim"] * 16)
    hi = math.log2(GEMM_DOMAIN["max_dim"])
    dims = np.round(np.exp2(rng.uniform(lo, hi, size=(points, 3)))).astype(int)
    dims = np.clip(dims, 16, GEMM_DOMAIN["max_dim"])
    batches = rng.choice([1, 2, 4, 8, 16], size=points)
    predicted = predictor.predict(dims[:, 0], dims[:, 1], dims[:, 2], batches)["time"]
    errors: List[float] = []
    for index in range(points):
        m, k, n = (int(v) for v in dims[index])
        exact = device.gemm(m, k, n, batch=int(batches[index])).time
        errors.append(abs(float(predicted[index]) - exact) / exact)
    return errors


# -- attention fitting -------------------------------------------------
def _fit_attention(device, surface: Surface) -> Dict:
    from repro.hw.spec import DType
    from repro.kernels.attention import AttentionConfig, attention_time
    from repro.surrogate.surfaces import (
        ATTENTION_HEAD_DIM,
        ATTENTION_KV_HEADS,
        ATTENTION_Q_HEADS,
    )

    spec = device.spec
    itemsize = DType.BF16.itemsize
    heads = {
        "q_heads": ATTENTION_Q_HEADS,
        "kv_heads": ATTENTION_KV_HEADS,
        "head_dim": ATTENTION_HEAD_DIM,
        "itemsize": itemsize,
    }
    spill = {
        "enabled": device.family == "gaudi",
        "sram_bytes": int(spec.memory.sram_bytes),
    }
    probe = StructuredAttentionPredictor(
        coef={}, heads=heads, spill=spill,
    )

    points = surface.lattice_points()
    results = []
    for tp, batch, seq in points:
        config = AttentionConfig(
            batch=batch, q_heads=ATTENTION_Q_HEADS // tp,
            kv_heads=max(1, ATTENTION_KV_HEADS // tp),
            head_dim=ATTENTION_HEAD_DIM, seq_q=seq, seq_kv=seq,
        )
        results.append(attention_time(device, config))
    tp = np.array([p[0] for p in points], dtype=float)
    batch = np.array([p[1] for p in points], dtype=float)
    seq = np.array([p[2] for p in points], dtype=float)
    time = np.array([r.time for r in results], dtype=float)
    bound = np.array([r.memory_bound for r in results], dtype=bool)
    features = probe.features(tp, batch, seq)

    def _solve(mask: np.ndarray, columns: Sequence[np.ndarray],
               fallback: Sequence[float]) -> List[float]:
        if int(mask.sum()) < len(columns) + 1:
            return [float(v) for v in fallback]
        design = np.stack([col[mask] for col in columns]
                          + [np.ones(int(mask.sum()))], axis=1)
        # Weight rows by 1/time: minimize *relative* residuals, so the
        # launch-overhead constant is recovered from small shapes
        # instead of vanishing under the large ones.
        weights = 1.0 / time[mask]
        coef, *_ = np.linalg.lstsq(design * weights[:, None],
                                   np.ones(int(mask.sum())), rcond=None)
        return [float(v) for v in np.maximum(coef, 0.0)]

    peak = spec.matrix.peak(DType.BF16)
    stream_bw = spec.memory.bandwidth * spec.memory.stream_efficiency
    compute_coef = _solve(
        ~bound, [features["flops"]],
        [1.0 / (peak * device.attention_efficiency), spec.kernel_launch_overhead],
    )
    memory_coef = _solve(
        bound, [features["qo_kv_bytes"], features["spill_bytes"]],
        [1.0 / stream_bw, 0.24 / stream_bw, spec.kernel_launch_overhead],
    )
    predictor = StructuredAttentionPredictor(
        coef={
            "compute_flops": compute_coef[0],
            "compute_const": compute_coef[1],
            "mem_traffic": memory_coef[0],
            "mem_spill": memory_coef[1],
            "mem_const": memory_coef[2],
        },
        heads=heads,
        spill=spill,
    )
    return predictor.to_payload()


# -- log-grid fitting --------------------------------------------------
def _fit_log_grid(device, surface: Surface) -> Dict:
    times = [surface.evaluate(device, point) for point in surface.lattice_points()]
    predictor = LogGridPredictor(
        axes=surface.axes, log2_times=[math.log2(t) for t in times],
    )
    return predictor.to_payload()


def _holdout_log_grid(device, surface: Surface, predictor: LogGridPredictor,
                      rng: np.random.Generator, points: int) -> List[float]:
    coords: List[np.ndarray] = []
    for axis in surface.axes:
        values = axis["values"]
        if axis["mode"] == "exact" or len(values) == 1:
            coords.append(rng.choice(values, size=points))
        else:
            lo, hi = math.log2(values[0]), math.log2(values[-1])
            drawn = np.round(np.exp2(rng.uniform(lo, hi, size=points))).astype(int)
            coords.append(np.clip(drawn, values[0], values[-1]))
    predicted = predictor.predict(*coords)
    errors: List[float] = []
    for index in range(points):
        point = tuple(int(axis_coords[index]) for axis_coords in coords)
        exact = surface.evaluate(device, point)
        errors.append(abs(float(predicted[index]) - exact) / exact)
    return errors


# -- pipeline ----------------------------------------------------------
def fit_surface(base_key: str, name: str, seed: int = 0) -> Dict:
    """Fit + hold-out-validate one surface; returns its payload entry.

    Self-contained and deterministic in ``(base_key, name, seed)`` --
    the unit of work for the process-pool parallel path.
    """
    from repro.hw.backend import get_backend

    surface = SURFACES[name]
    device = get_backend(base_key, fresh=True)
    sequence = np.random.SeedSequence([seed, surface_names().index(name)])
    rng = np.random.Generator(np.random.PCG64(sequence))
    if surface.family == "structured-gemm":
        payload = _fit_gemm(device, surface)
        predictor = StructuredGemmPredictor.from_payload(payload)
        errors = _holdout_gemm(device, predictor, rng, surface.holdout_points)
    elif surface.family == "structured-attention":
        payload = _fit_attention(device, surface)
        predictor = StructuredAttentionPredictor.from_payload(payload)
        # Same off-lattice axis sampling as the tabulated surfaces.
        errors = _holdout_log_grid(device, surface, predictor, rng,
                                   surface.holdout_points)
    else:
        payload = _fit_log_grid(device, surface)
        predictor = LogGridPredictor.from_payload(payload)
        errors = _holdout_log_grid(device, surface, predictor, rng,
                                   surface.holdout_points)
    certificate = {
        "samples": len(surface.lattice_points()),
        "holdout": len(errors),
        "max_rel_err": float(max(errors)),
        "mean_rel_err": float(math.fsum(errors) / len(errors)),
        "seed": int(seed),
    }
    return {
        "predictor": payload,
        "certificate": certificate,
        "tolerance": surface.tolerance,
    }


def validate_model(model: SurrogateModel, seed: int = 1, points: int = 32) -> Dict[str, Dict]:
    """Fresh spot-check of a fitted or loaded model against the exact
    models: new off-lattice samples (disjoint seed path from the fit's
    holdout), per-surface max/mean relative error, and an ``ok`` flag
    against the surface tolerance.  The ``repro surrogate validate``
    oracle."""
    from repro.hw.backend import get_backend

    device = get_backend(model.backend, fresh=True)
    report: Dict[str, Dict] = {}
    for name in model.surfaces:
        surface = SURFACES[name]
        sequence = np.random.SeedSequence([seed, surface_names().index(name), 1])
        rng = np.random.Generator(np.random.PCG64(sequence))
        predictor = model.predictor(name)
        if surface.family == "structured-gemm":
            errors = _holdout_gemm(device, predictor, rng, points)
        else:
            errors = _holdout_log_grid(device, surface, predictor, rng, points)
        worst = float(max(errors))
        report[name] = {
            "points": len(errors),
            "max_rel_err": worst,
            "mean_rel_err": float(math.fsum(errors) / len(errors)),
            "tolerance": model.tolerance(name),
            "ok": worst <= model.tolerance(name),
        }
    return report


def _fit_surface_task(task: Tuple[str, str, int]) -> Tuple[str, Dict]:
    base_key, name, seed = task
    return name, fit_surface(base_key, name, seed)


def fit_backend(
    base_key: str,
    seed: int = 0,
    workers: Optional[Union[int, str]] = None,
    surfaces: Optional[Sequence[str]] = None,
) -> SurrogateModel:
    """Fit every catalogued surface for one backend (certified model).

    Parallel and serial paths are bit-identical: each surface is an
    independent deterministic task and results assemble in task order.
    """
    from repro.core.parallel import map_with_retries
    from repro.hw.backend import resolve_backend

    base_key = resolve_backend(base_key)
    names = list(surfaces) if surfaces is not None else surface_names()
    tasks = [(base_key, name, seed) for name in names]
    fitted = map_with_retries(_fit_surface_task, tasks, workers=workers)
    payload = {
        "schema": SCHEMA,
        "backend": base_key,
        "surfaces": {name: entry for name, entry in fitted},
    }
    return SurrogateModel.from_payload(payload)
