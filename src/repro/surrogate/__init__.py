"""Surrogate cost models: certified fitted fast paths (ISSUE 10).

The exact per-backend cost models (MME/tensor-core GEMM geometry,
attention, paged attention, collectives, TPC STREAM) are deterministic
functions of shape and config -- ideal fitting targets.  This package
samples them over structured lattices, fits per-surface predictors
(:mod:`~repro.surrogate.predictors`), certifies each fit on held-out
points, and exposes the result three ways:

* as a registry backend -- ``--backend gaudi2@surrogate`` -- serving
  GEMM and collective queries through the fitted model with exact-model
  fallback outside the fitted domain (:mod:`~repro.surrogate.backend`);
* as checksummed, byte-identical artifacts with load-time certificate
  enforcement (:mod:`~repro.surrogate.artifact`);
* as vectorized design-space sweeps that are infeasible at exact-model
  speed (:mod:`~repro.surrogate.sweep`, the ``repro surrogate`` verb,
  and the ``design_space`` figure).

Runtime honesty: the audit layer's ``SurrogateEquivalence`` check
spot-samples predictions against the exact models (strict mode raises
past 2x the certified bound), and ``repro top`` renders the per-surface
certificates and counters via :func:`render_counters`.
"""

from __future__ import annotations

from repro.surrogate.artifact import artifact_path, load_model, save_model
from repro.surrogate.backend import (
    SURROGATE_COUNTERS,
    SurrogateBackend,
    SurrogateCollectiveLibrary,
    ensure_registered,
    fitted_models,
    get_surrogate_model,
    set_surrogate_model,
)
from repro.surrogate.fitting import (
    SCHEMA,
    SurrogateModel,
    fit_backend,
    fit_surface,
    validate_model,
)
from repro.surrogate.predictors import LogGridPredictor, StructuredGemmPredictor
from repro.surrogate.surfaces import SURFACES, Surface, surface_names
from repro.surrogate.sweep import design_space_sweep, gemm_grid_sweep

__all__ = [
    "SCHEMA",
    "SURFACES",
    "SURROGATE_COUNTERS",
    "LogGridPredictor",
    "StructuredGemmPredictor",
    "Surface",
    "SurrogateBackend",
    "SurrogateCollectiveLibrary",
    "SurrogateModel",
    "artifact_path",
    "design_space_sweep",
    "ensure_registered",
    "fit_backend",
    "fit_surface",
    "fitted_models",
    "gemm_grid_sweep",
    "get_surrogate_model",
    "load_model",
    "render_counters",
    "save_model",
    "set_surrogate_model",
    "surface_names",
    "validate_model",
]


def render_counters() -> str:
    """Human-readable surrogate section for ``repro top``.

    Lists the per-surface fit certificates of every model fitted in
    this process plus the fast-path/fallback/spot-check counters.
    Never triggers a fit.
    """
    lines = []
    models = fitted_models()
    if not models:
        lines.append("  (none fitted -- resolve a *@surrogate backend or "
                     "run `repro surrogate fit`)")
    for base_key in sorted(models):
        model = models[base_key]
        lines.append(f"  {base_key}@surrogate:")
        for name in model.surfaces:
            certificate = model.certificate(name)
            lines.append(
                f"    {name:<24s} {certificate['samples']:>6d} samples | "
                f"holdout {certificate['holdout']:>4d} | "
                f"max err {certificate['max_rel_err']:.3%} | "
                f"mean {certificate['mean_rel_err']:.3%} | "
                f"tol {model.tolerance(name):.0%}"
            )
    predicted = sum(v for key, v in SURROGATE_COUNTERS.items() if key.endswith(".predicted"))
    fallback = sum(v for key, v in SURROGATE_COUNTERS.items() if key.endswith(".fallback"))
    lines.append(
        f"  fast path  : {predicted} predicted | {fallback} exact fallbacks | "
        f"spot checks {SURROGATE_COUNTERS['spot.pass']} pass / "
        f"{SURROGATE_COUNTERS['spot.fail']} fail"
    )
    return "\n".join(lines)
