"""Performance-regression harness for the simulator itself.

``repro bench`` times canonical workloads (figure grids, serving runs,
a chaos load test) with the shape-keyed cost caches cleared first, so
every sample measures the cold-to-warm path a fresh process pays.  A
result can be written as ``BENCH_<stamp>.json`` and compared against a
committed baseline (``benchmarks/perf/baseline.json``) with a
tolerance gate -- that comparison is what CI runs as a smoke check.

Raw wall-clock seconds are not comparable across machines, so every
result embeds a *calibration* time: a fixed pure-Python workload whose
duration tracks the host's single-thread speed.  The gate compares
calibration-normalized times, which keeps a 2x tolerance meaningful on
both a laptop and a loaded CI runner.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import memo
from repro.hw.backend import GAUDI2, resolve_backend

__all__ = [
    "BENCH_SCHEMA",
    "BenchCase",
    "CASES",
    "compare_to_baseline",
    "load_baseline",
    "render_comparison",
    "render_result",
    "run_bench",
    "write_result",
]

BENCH_SCHEMA = "repro-bench/v1"

#: Backend the serving/chaos cases run on; ``run_bench(backend=...)``
#: swaps it so the regression harness can time any registered backend.
_BENCH_BACKEND = GAUDI2

#: Cases whose baseline time is below this are reported but never
#: gated: at millisecond scale the ratio is dominated by jitter.
MIN_GATE_SECONDS = 0.02

#: Pre-PR wall times measured on the reference machine before the
#: memoization fast path landed (see EXPERIMENTS.md, "Performance of
#: the simulator itself").  Cases without a pre-PR measurement are
#: omitted rather than guessed.
BEFORE_SECONDS: Dict[str, float] = {
    "reproduce_full": 8.67,
    "fig12_serving": 0.331,
    "fig17_serving": 3.528,
    "serve_256": 0.442,
    # Scalar-engine (pre-vectorization) streaming runs, measured with
    # REPRO_ENGINE=scalar on the same machine as the entries above.
    "serve_50k": 22.545,
    "serve_1m": 549.22,
    # The same design-space sweeps priced through the exact cost models
    # (gemm_grid_sweep/design_space_sweep with exact=True) instead of
    # the fitted surrogate.
    "sweep_surrogate": 2.804,
}


@dataclass(frozen=True)
class BenchCase:
    """One timed workload."""

    name: str
    description: str
    fn: Callable[[bool], None]  # fn(fast)
    #: Whether the case runs in ``--check`` (fast) mode; the heavy
    #: full-grid cases only run for explicit ``repro bench --full``.
    in_fast_mode: bool = True


def _calibrate(_fast: bool) -> None:
    """Fixed pure-Python workload tracking single-thread host speed."""
    acc = 0
    for i in range(2_000_000):
        acc += i * i
    if acc < 0:  # pragma: no cover - keeps the loop from folding away
        raise AssertionError


def _fig04_grid(_fast: bool) -> None:
    from repro.figures import run_figure

    # The full 24-shape grid even in fast mode: the fast grid is ~1 ms,
    # far too small for a wall-clock ratio gate.
    run_figure(figure_id="fig04", fast=False)


def _fig12_serving(_fast: bool) -> None:
    from repro.figures import run_figure

    # Full grid in both modes; the fast grid sits under the gate floor.
    run_figure(figure_id="fig12", fast=False)


def _fig17_serving(fast: bool) -> None:
    from repro.figures import run_figure

    run_figure(figure_id="fig17", fast=fast)


def _serving_run(num_requests: int) -> None:
    from repro.hw.device import get_device
    from repro.models.llama import (
        LLAMA_3_1_8B,
        LlamaCostModel,
        default_decode_attention,
    )
    from repro.serving import LlmServingEngine, dynamic_sonnet_requests

    device = get_device(_BENCH_BACKEND)
    engine = LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, device),
        default_decode_attention(device),
        max_decode_batch=64,
    )
    engine.run(dynamic_sonnet_requests(num_requests, seed=0))


def _serve_case(fast: bool) -> None:
    _serving_run(64 if fast else 256)


def _streaming_run(num_requests: int) -> None:
    """Streaming release-mode serve: lazy arrivals, folded aggregates.

    Requests and Poisson arrival stamps are generated lazily and every
    terminal request folds into constant-size aggregates
    (``retain_requests=False``), so peak memory is O(live slots)
    however large ``num_requests`` is -- the million-request
    configuration of EXPERIMENTS.md runs through this exact path.
    """
    from repro.hw.device import get_device
    from repro.models.llama import (
        LLAMA_3_1_8B,
        LlamaCostModel,
        default_decode_attention,
    )
    from repro.serving import LlmServingEngine, iter_dynamic_sonnet_requests
    from repro.serving.loadgen import poisson_arrivals

    device = get_device(_BENCH_BACKEND)
    engine = LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, device),
        default_decode_attention(device),
        max_decode_batch=64,
        retain_requests=False,
    )
    # Just under the engine's sustainable rate, so the decode batch
    # stays full while the waiting buffer stays bounded.
    engine.run(poisson_arrivals(
        iter_dynamic_sonnet_requests(num_requests, seed=0), 11.0, seed=0
    ))


def _serve_50k(fast: bool) -> None:
    _streaming_run(5_000 if fast else 50_000)


def _serve_1m(_fast: bool) -> None:
    _streaming_run(1_000_000)


def _chaos_load(fast: bool) -> None:
    from repro.faults import ChaosConfig, FaultPlan, run_chaos

    plan = FaultPlan.from_specs(
        seed=0,
        fail_device=["3@t=0.5,recover=1.5"],
        kernel_fault_rate=0.02,
    )
    run_chaos(config=ChaosConfig(
        model="8b",
        device=_BENCH_BACKEND,
        tp=4,
        max_decode_batch=32,
        num_requests=32 if fast else 96,
        rate=8.0,
        seed=0,
        deadline=4.0,
        plan=plan,
    ))


def _serve_overload(fast: bool) -> None:
    from repro.cluster import (
        AdmissionPolicy,
        BreakerPolicy,
        FleetConfig,
        TenantSpec,
        run_fleet,
    )

    run_fleet(FleetConfig(
        nodes=((_BENCH_BACKEND, 2),),
        max_decode_batch=4,
        num_requests=96 if fast else 256,
        rate=40.0,  # ~2x the small fleet's saturation rate
        seed=0,
        timeout=10.0,
        tenants=(
            TenantSpec(name="gold", tier=0, share=0.25, weight=4.0, ttft_slo=2.0),
            TenantSpec(name="silver", tier=1, share=0.35, weight=2.0),
            TenantSpec(name="bronze", tier=2, share=0.40, weight=1.0,
                       quota_rate=8.0, quota_burst=8.0),
        ),
        admission=AdmissionPolicy(
            target_queue_delay=0.4, shed_queue_delay=0.8, max_queue_delay=20.0
        ),
        breaker=BreakerPolicy(),
    ))


def _sweep_surrogate(fast: bool) -> None:
    """Surrogate-speed design-space sweeps (fig07-style GEMM grid +
    the TP x batch x context grid).  The exact twin of this workload is
    the ``sweep_surrogate`` BEFORE_SECONDS entry; the first repeat may
    pay the one-time surrogate fit, and ``min(runs)`` keeps the warm
    fast-path time the baseline gates on."""
    from repro.surrogate.sweep import design_space_sweep, gemm_grid_sweep

    gemm_grid_sweep(_BENCH_BACKEND, per_octave=16 if fast else 32)
    design_space_sweep(_BENCH_BACKEND, fast=fast)


def _reproduce_full(_fast: bool) -> None:
    from repro.figures import generate_all

    generate_all(fast=False)


CASES: List[BenchCase] = [
    BenchCase("fig04_grid", "Figure 4 GEMM roofline grid", _fig04_grid),
    BenchCase("fig12_serving", "Figure 12 LLM serving sweep", _fig12_serving),
    BenchCase("fig17_serving", "Figure 17 vLLM batch sweep", _fig17_serving),
    BenchCase("serve_256", "direct serving-engine run", _serve_case),
    BenchCase("serve_50k", "streaming release-mode serve", _serve_50k),
    BenchCase("serve_1m", "million-request streaming serve", _serve_1m,
              in_fast_mode=False),
    BenchCase("chaos_load", "fault-injected load test", _chaos_load),
    BenchCase("serve_overload", "multi-tenant overloaded admission fleet",
              _serve_overload),
    BenchCase("sweep_surrogate", "surrogate-speed design-space sweeps",
              _sweep_surrogate),
    BenchCase("reproduce_full", "generate_all(fast=False)", _reproduce_full,
              in_fast_mode=False),
]
#: Aliases accepted by --full runs for the serving case's real size.
_CASE_BY_NAME = {case.name: case for case in CASES}


def _time_case(case: BenchCase, fast: bool, repeats: int) -> Dict[str, object]:
    runs = []
    for _ in range(max(1, repeats)):
        # Each sample pays cache population: that is the path a fresh
        # process (CI, a user's first run) actually takes.
        memo.clear_caches()
        start = time.perf_counter()
        case.fn(fast)
        runs.append(round(time.perf_counter() - start, 6))
    return {"seconds": min(runs), "runs": runs, "description": case.description}


def run_bench(
    fast: bool = True,
    repeats: int = 3,
    cases: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Time the registered workloads; returns the result document.

    ``backend`` points the serving/chaos cases at another registered
    backend; the default (gaudi2) keeps baseline documents comparable.
    """
    global _BENCH_BACKEND
    _BENCH_BACKEND = resolve_backend(backend) if backend else GAUDI2
    if cases is None:
        selected = [c for c in CASES if c.in_fast_mode or not fast]
    else:
        unknown = sorted(set(cases) - set(_CASE_BY_NAME))
        if unknown:
            raise KeyError(
                f"unknown bench case(s) {unknown}; available: {sorted(_CASE_BY_NAME)}"
            )
        selected = [_CASE_BY_NAME[name] for name in cases]
    # Heavy imports (figures registry, faults, serving stack) must not
    # be charged to whichever case happens to run first.
    import repro.faults  # noqa: F401
    import repro.figures  # noqa: F401
    import repro.serving  # noqa: F401

    calibration = _time_case(
        BenchCase("calibrate", "host-speed calibration loop", _calibrate),
        fast, repeats,
    )
    result: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "mode": "fast" if fast else "full",
        "repeats": max(1, repeats),
        "calibration_seconds": calibration["seconds"],
        "cases": {case.name: _time_case(case, fast, repeats) for case in selected},
    }
    if _BENCH_BACKEND != GAUDI2:
        # Non-default backends are flagged so a result document is
        # never gated against a baseline timed on another platform.
        result["backend"] = _BENCH_BACKEND
    before = {
        name: BEFORE_SECONDS[name]
        for name in result["cases"]
        if not fast and name in BEFORE_SECONDS
    }
    if before:
        result["before_seconds"] = before
        result["speedup"] = {
            name: round(before[name] / result["cases"][name]["seconds"], 3)
            for name in before
            if result["cases"][name]["seconds"] > 0
        }
    return result


def write_result(result: Dict[str, object], out: Optional[str] = None) -> pathlib.Path:
    """Write ``result`` as ``BENCH_<stamp>.json`` (or to ``out``)."""
    if out is None:
        stamp = time.strftime("%Y%m%d_%H%M%S")
        out = f"BENCH_{stamp}.json"
    path = pathlib.Path(out)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str) -> Dict[str, object]:
    """Load a committed baseline result document."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, got {document.get('schema')!r}"
        )
    return document


def compare_to_baseline(
    result: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 2.0,
) -> Tuple[bool, List[Dict[str, object]]]:
    """Gate ``result`` against ``baseline``.

    Each case's time is divided by its run's calibration time, and the
    gate fails when that normalized time exceeds the baseline's by more
    than ``tolerance``x.  Cases present on only one side are reported
    but never fail the gate (new benchmarks should not brick CI).
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if result.get("mode") != baseline.get("mode"):
        raise ValueError(
            f"mode mismatch: result is {result.get('mode')!r}, "
            f"baseline is {baseline.get('mode')!r}"
        )
    calib = float(result["calibration_seconds"])
    base_calib = float(baseline["calibration_seconds"])
    if calib <= 0 or base_calib <= 0:
        raise ValueError("calibration times must be positive")
    rows: List[Dict[str, object]] = []
    ok = True
    base_cases = baseline.get("cases", {})
    for name, entry in sorted(result.get("cases", {}).items()):
        base_entry = base_cases.get(name)
        if base_entry is None:
            rows.append({"case": name, "status": "new",
                         "seconds": entry["seconds"]})
            continue
        normalized = float(entry["seconds"]) / calib
        base_normalized = float(base_entry["seconds"]) / base_calib
        ratio = normalized / base_normalized if base_normalized > 0 else float("inf")
        if float(base_entry["seconds"]) < MIN_GATE_SECONDS:
            status = "too-small"  # jitter-dominated; reported, not gated
        elif ratio <= tolerance:
            status = "ok"
        else:
            status = "regressed"
            ok = False
        rows.append({
            "case": name,
            "status": status,
            "seconds": entry["seconds"],
            "baseline_seconds": base_entry["seconds"],
            "normalized_ratio": round(ratio, 3),
        })
    for name in sorted(set(base_cases) - set(result.get("cases", {}))):
        rows.append({"case": name, "status": "missing",
                     "baseline_seconds": base_cases[name]["seconds"]})
    return ok, rows


def render_result(result: Dict[str, object]) -> str:
    """Fixed-format text table of one bench result."""
    from repro.core.report import render_table

    rows = [
        (name, f"{entry['seconds']:.4f}",
         " ".join(f"{r:.4f}" for r in entry["runs"]),
         entry["description"])
        for name, entry in sorted(result["cases"].items())
    ]
    title = (
        f"repro bench ({result['mode']} mode, {result['repeats']} repeats, "
        f"calibration {result['calibration_seconds']:.4f}s)"
    )
    text = render_table(["Case", "Best (s)", "Runs (s)", "Workload"], rows, title=title)
    speedup = result.get("speedup")
    if speedup:
        gains = ", ".join(
            f"{name} {ratio:.2f}x" for name, ratio in sorted(speedup.items())
        )
        text += f"\nSpeedup vs pre-memoization baseline: {gains}"
    return text


def render_comparison(rows: List[Dict[str, object]], tolerance: float) -> str:
    """Fixed-format text table of a baseline comparison."""
    from repro.core.report import render_table

    table_rows = []
    for row in rows:
        table_rows.append((
            row["case"],
            row["status"],
            f"{row['seconds']:.4f}" if "seconds" in row else "-",
            f"{row['baseline_seconds']:.4f}" if "baseline_seconds" in row else "-",
            f"{row['normalized_ratio']:.2f}" if "normalized_ratio" in row else "-",
        ))
    return render_table(
        ["Case", "Status", "Now (s)", "Baseline (s)", "Norm. ratio"],
        table_rows,
        title=f"repro bench --check (tolerance {tolerance:g}x, calibration-normalized)",
    )
