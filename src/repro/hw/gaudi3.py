"""Gaudi-3 projection (extension).

Footnote 1 of the paper: "The hardware and software architecture of
Intel's recently announced Gaudi-3 is virtually identical to that of
Gaudi-2 ... except that Gaudi-3 offers higher compute and memory
throughput, thanks to its chiplet-based design."  This module projects
the study onto Gaudi-3 by scaling the Gaudi-2 spec sheet with the
publicly announced numbers (Hot Chips 2024 [40] / the Gaudi-3 white
paper [30]):

* 8 MMEs (2 chiplets x 4) -> 1,835 TFLOPS BF16;
* 64 TPCs -> ~29 TFLOPS BF16 vector;
* 128 GB HBM2E at 3.7 TB/s; 96 MB SRAM;
* 24 x 200 GbE RoCE (double the per-link rate, same P2P topology);
* 900 W TDP (OAM).

Everything else -- the 256 B access granularity, the single-threaded
TPC model, the P2P mesh, the graph-compiler-only MME access -- carries
over unchanged, exactly as the footnote asserts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.hw.device import Gaudi2Device
from repro.hw.mme import MmeModel
from repro.hw.spec import (
    DType,
    DeviceSpec,
    GAUDI2_SPEC,
    GIGA,
    InterconnectSpec,
    MatrixEngineSpec,
    PowerSpec,
    TERA,
)
from repro.hw.systolic import SystolicGeometry

#: Full-array geometries for the 8-engine MME pool; the per-chiplet
#: merge options mirror Gaudi-2's, replicated across chiplets.
GAUDI3_GEOMETRIES: Sequence[SystolicGeometry] = (
    SystolicGeometry(256, 256, 8),
    SystolicGeometry(512, 256, 4),
    SystolicGeometry(256, 512, 4),
    SystolicGeometry(1024, 128, 4),
    SystolicGeometry(128, 1024, 4),
    SystolicGeometry(2048, 64, 4),
    SystolicGeometry(4096, 32, 4),
    # Power-gated subsets.
    SystolicGeometry(256, 256, 2),
    SystolicGeometry(256, 256, 1),
    SystolicGeometry(128, 256, 1),
    SystolicGeometry(128, 128, 1),
    SystolicGeometry(64, 64, 1),
)


def _gaudi3_spec() -> DeviceSpec:
    base = GAUDI2_SPEC
    mme_macs = 8 * 256 * 256
    mme_peak = 1835 * TERA
    tpc_cores = 64
    tpc_peak = base.vector.peak(DType.BF16) * tpc_cores / base.vector.num_cores
    matrix = MatrixEngineSpec(
        name="MME (Gaudi-3)",
        peak_flops={
            DType.BF16: mme_peak,
            DType.FP16: mme_peak,
            DType.FP32: 0.25 * mme_peak,
            DType.INT8: 2.0 * mme_peak,
        },
        total_macs=mme_macs,
        clock_hz=mme_peak / (2.0 * mme_macs),
        configurable=True,
    )
    vector = replace(
        base.vector,
        name="TPC (Gaudi-3)",
        peak_flops={
            DType.BF16: tpc_peak,
            DType.FP16: tpc_peak,
            DType.FP32: 0.5 * tpc_peak,
            DType.INT8: 2.0 * tpc_peak,
        },
        num_cores=tpc_cores,
    )
    memory = replace(
        base.memory,
        capacity_bytes=128 * 1024**3,
        bandwidth=3.7 * TERA,
        sram_bytes=96 * 1024**2,
        max_random_transactions=3.7 * TERA * base.memory.random_efficiency / 256.0,
    )
    interconnect = InterconnectSpec(
        kind="p2p-mesh",
        per_device_bandwidth=600 * GIGA,
        links_per_pair=3,
        link_bandwidth=25 * GIGA,  # 200 GbE
        base_latency=base.interconnect.base_latency,
        protocol_efficiency=base.interconnect.protocol_efficiency,
    )
    power = PowerSpec(
        tdp_watts=900.0,
        idle_watts=50.0,
        matrix_watts=430.0,
        vector_watts=130.0,
        memory_watts=250.0,
        comm_watts=35.0,
        matrix_power_gating=True,
    )
    return replace(
        base,
        name="Gaudi-3",
        matrix=matrix,
        vector=vector,
        memory=memory,
        interconnect=interconnect,
        power=power,
    )


GAUDI3_SPEC: DeviceSpec = _gaudi3_spec()


class Gaudi3Device(Gaudi2Device):
    """Gaudi-3 device facade (Gaudi-2 behaviour, scaled engines)."""

    def __init__(self) -> None:
        super().__init__(GAUDI3_SPEC)
        self.mme = MmeModel(GAUDI3_SPEC, geometries=GAUDI3_GEOMETRIES)
