"""Device facades tying the component models together.

:class:`Gaudi2Device` and :class:`A100Device` expose the
:class:`~repro.hw.backend.Backend` protocol (GEMM execution, HBM model,
vector-engine model, power model, collective fabric, launch overheads)
so kernels, the graph compiler, and the serving stack can be written
once and run against any registered platform -- the same property the
paper attributes to PyTorch's device abstraction (Figure 2(a)).

Platform lookup goes through the string-keyed registry of
:mod:`repro.hw.backend`; :func:`get_device` remains as the historical
alias of :func:`repro.hw.backend.get_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memo import CostCache
from repro.hw.memory import HbmModel
from repro.hw.mme import MmeModel
from repro.hw.power import PowerModel
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec, DType
from repro.hw.tensorcore import TensorCoreModel
from repro.hw.vector_unit import VectorUnitModel


@dataclass(frozen=True)
class MatmulResult:
    """Device-independent GEMM execution estimate."""

    m: int
    k: int
    n: int
    batch: int
    dtype: DType
    time: float
    achieved_flops: float
    utilization: float
    memory_bound: bool
    #: Fraction of the matrix engine's MAC array powered during the op
    #: (less than 1.0 only for power-gated MME geometries).
    active_mac_fraction: float
    #: Human-readable description of the chosen engine configuration.
    config_label: str

    @property
    def flops(self) -> float:
        return 2.0 * self.batch * self.m * self.k * self.n


class Device:
    """Common base class of every modelled platform.

    Subclasses fill in the class-level capability attributes (what the
    :class:`~repro.hw.backend.Backend` protocol calls the kernel
    dialect) plus the :meth:`_gemm_uncached` hook; everything else --
    memory, vector, power models, caches, fabric -- derives from the
    spec sheet.
    """

    #: Kernel-dialect family: which kernel implementations apply
    #: ("gaudi" = graph-compiler fused MME + TPC-C; "cuda" = SIMT
    #: kernels + tensor cores).
    family = ""
    #: Default paged decode-attention implementation
    #: (a :class:`repro.models.llama.DecodeAttention` value string).
    decode_attention = "paged-opt"
    #: Which smi-style readout the tools layer renders.
    smi_style = "hl-smi"
    #: Fraction of matrix peak a fused dense-attention kernel sustains.
    attention_efficiency = 0.5

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.hbm = HbmModel(spec.memory)
        self.vector = VectorUnitModel(spec.vector)
        self.power = PowerModel(spec.power)
        # Shape-keyed result caches (the device model is stateless, so
        # every estimate is a pure function of the key).
        self._gemm_cache = CostCache(f"device.gemm[{spec.name}]", maxsize=16384)
        self._attention_cache = CostCache(f"kernels.attention[{spec.name}]")

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec.name})"

    # -- interface -----------------------------------------------------
    def gemm(
        self, m: int, k: int, n: int, dtype: DType = DType.BF16, batch: int = 1
    ) -> MatmulResult:
        """Execute one (optionally batched) GEMM on the matrix engine."""
        key = (m, k, n, dtype, batch)
        result = self._gemm_cache.get(key)
        if result is None:
            result = self._gemm_uncached(m, k, n, dtype, batch)
            self._gemm_cache.put(key, result)
        return result

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        """Subclass hook: derive one GEMM estimate from scratch."""
        raise NotImplementedError

    def matrix_utilization(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> float:
        """Achieved/peak utilization of one GEMM shape."""
        return self.gemm(m, k, n, dtype).utilization

    @property
    def kernel_launch_overhead(self) -> float:
        return self.spec.kernel_launch_overhead

    @property
    def peak_matrix_flops(self) -> float:
        return self.spec.matrix.peak(DType.BF16)

    @property
    def peak_vector_flops(self) -> float:
        return self.spec.vector.peak(DType.BF16)

    @property
    def peak_bandwidth(self) -> float:
        return self.spec.memory.bandwidth

    def collective_library(self, num_devices: int = 8):
        """The healthy collective library for this platform's fabric
        (HCCL on a P2P mesh, NCCL behind a switch)."""
        from repro.comm.api import HcclLibrary, NcclLibrary
        from repro.comm.topology import P2PMeshTopology, SwitchTopology

        if self.spec.interconnect.kind == "p2p-mesh":
            return HcclLibrary(P2PMeshTopology(num_devices=num_devices))
        return NcclLibrary(SwitchTopology(num_devices=num_devices))


class Gaudi2Device(Device):
    """Intel Gaudi-2: reconfigurable MME + 24 programmable TPCs."""

    family = "gaudi"
    decode_attention = "paged-opt"
    smi_style = "hl-smi"
    attention_efficiency = 0.48

    def __init__(self, spec: DeviceSpec = GAUDI2_SPEC, mme_configurable: bool = True) -> None:
        super().__init__(spec)
        self.mme = MmeModel(spec, configurable=mme_configurable)

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        estimate = (
            self.mme.gemm(m, k, n, dtype)
            if batch == 1
            else self.mme.batched_gemm(batch, m, k, n, dtype)
        )
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=estimate.time,
            achieved_flops=estimate.achieved_flops,
            utilization=estimate.utilization,
            memory_bound=estimate.memory_bound,
            active_mac_fraction=estimate.active_mac_fraction,
            config_label=f"MME {estimate.config_label}",
        )


class A100Device(Device):
    """NVIDIA A100: Tensor Cores + 108 SMs of SIMD cores."""

    family = "cuda"
    decode_attention = "paged-cuda"
    smi_style = "nvidia-smi"
    attention_efficiency = 0.55

    def __init__(self, spec: DeviceSpec = A100_SPEC) -> None:
        super().__init__(spec)
        self.tensorcore = TensorCoreModel(spec)

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        estimate = (
            self.tensorcore.gemm(m, k, n, dtype)
            if batch == 1
            else self.tensorcore.batched_gemm(batch, m, k, n, dtype)
        )
        tm, tn = estimate.tile
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=estimate.time,
            achieved_flops=estimate.achieved_flops,
            utilization=estimate.utilization,
            memory_bound=estimate.memory_bound,
            active_mac_fraction=1.0,
            config_label=f"CTA {tm}x{tn}, {estimate.waves} waves",
        )


def get_device(name: str, fresh: bool = False) -> Device:
    """Historical alias of :func:`repro.hw.backend.get_backend`.

    Accepts any registered backend key or alias ("gaudi2"/"hpu",
    "a100"/"cuda", "h100"/"hopper", "gaudi3", ...).  Devices are
    stateless, so instances are cached unless ``fresh``.
    """
    from repro.hw.backend import get_backend

    return get_backend(name, fresh=fresh)
