"""Device facades tying the component models together.

:class:`Gaudi2Device` and :class:`A100Device` expose a common interface
(GEMM execution, HBM model, vector-engine model, power model, launch
overheads) so kernels, the graph compiler, and the serving stack can be
written once and run against either platform -- the same property the
paper attributes to PyTorch's device abstraction (Figure 2(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.memo import CostCache
from repro.hw.memory import HbmModel
from repro.hw.mme import MmeModel
from repro.hw.power import PowerModel
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DeviceSpec, DType, get_spec
from repro.hw.tensorcore import TensorCoreModel
from repro.hw.vector_unit import VectorUnitModel


@dataclass(frozen=True)
class MatmulResult:
    """Device-independent GEMM execution estimate."""

    m: int
    k: int
    n: int
    batch: int
    dtype: DType
    time: float
    achieved_flops: float
    utilization: float
    memory_bound: bool
    #: Fraction of the matrix engine's MAC array powered during the op
    #: (less than 1.0 only for power-gated MME geometries).
    active_mac_fraction: float
    #: Human-readable description of the chosen engine configuration.
    config_label: str

    @property
    def flops(self) -> float:
        return 2.0 * self.batch * self.m * self.k * self.n


class Device:
    """Common base class for the two modelled platforms."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.hbm = HbmModel(spec.memory)
        self.vector = VectorUnitModel(spec.vector)
        self.power = PowerModel(spec.power)
        # Shape-keyed result caches (the device model is stateless, so
        # every estimate is a pure function of the key).
        self._gemm_cache = CostCache(f"device.gemm[{spec.name}]", maxsize=16384)
        self._attention_cache = CostCache(f"kernels.attention[{spec.name}]")

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec.name})"

    # -- interface -----------------------------------------------------
    def gemm(
        self, m: int, k: int, n: int, dtype: DType = DType.BF16, batch: int = 1
    ) -> MatmulResult:
        """Execute one (optionally batched) GEMM on the matrix engine."""
        key = (m, k, n, dtype, batch)
        result = self._gemm_cache.get(key)
        if result is None:
            result = self._gemm_uncached(m, k, n, dtype, batch)
            self._gemm_cache.put(key, result)
        return result

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        """Subclass hook: derive one GEMM estimate from scratch."""
        raise NotImplementedError

    def matrix_utilization(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> float:
        """Achieved/peak utilization of one GEMM shape."""
        return self.gemm(m, k, n, dtype).utilization

    @property
    def kernel_launch_overhead(self) -> float:
        return self.spec.kernel_launch_overhead

    @property
    def peak_matrix_flops(self) -> float:
        return self.spec.matrix.peak(DType.BF16)

    @property
    def peak_vector_flops(self) -> float:
        return self.spec.vector.peak(DType.BF16)

    @property
    def peak_bandwidth(self) -> float:
        return self.spec.memory.bandwidth


class Gaudi2Device(Device):
    """Intel Gaudi-2: reconfigurable MME + 24 programmable TPCs."""

    def __init__(self, spec: DeviceSpec = GAUDI2_SPEC, mme_configurable: bool = True) -> None:
        super().__init__(spec)
        self.mme = MmeModel(spec, configurable=mme_configurable)

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        estimate = (
            self.mme.gemm(m, k, n, dtype)
            if batch == 1
            else self.mme.batched_gemm(batch, m, k, n, dtype)
        )
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=estimate.time,
            achieved_flops=estimate.achieved_flops,
            utilization=estimate.utilization,
            memory_bound=estimate.memory_bound,
            active_mac_fraction=estimate.active_mac_fraction,
            config_label=f"MME {estimate.config_label}",
        )


class A100Device(Device):
    """NVIDIA A100: Tensor Cores + 108 SMs of SIMD cores."""

    def __init__(self, spec: DeviceSpec = A100_SPEC) -> None:
        super().__init__(spec)
        self.tensorcore = TensorCoreModel(spec)

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        estimate = (
            self.tensorcore.gemm(m, k, n, dtype)
            if batch == 1
            else self.tensorcore.batched_gemm(batch, m, k, n, dtype)
        )
        tm, tn = estimate.tile
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=estimate.time,
            achieved_flops=estimate.achieved_flops,
            utilization=estimate.utilization,
            memory_bound=estimate.memory_bound,
            active_mac_fraction=1.0,
            config_label=f"CTA {tm}x{tn}, {estimate.waves} waves",
        )


_CACHE: Dict[str, Device] = {}


def get_device(name: str, fresh: bool = False) -> Device:
    """Return the device model for ``name``.

    Known names: "gaudi2"/"hpu", "a100"/"cuda", and "gaudi3" (the
    projection of :mod:`repro.hw.gaudi3`).  Devices are stateless, so
    instances are cached unless ``fresh``.
    """
    if name.lower() in ("gaudi3", "gaudi-3"):
        from repro.hw.gaudi3 import Gaudi3Device

        key = "Gaudi-3"
        if fresh or key not in _CACHE:
            device: Device = Gaudi3Device()
            if fresh:
                return device
            _CACHE[key] = device
        return _CACHE[key]
    spec = get_spec(name)
    key = spec.name
    if fresh or key not in _CACHE:
        device = Gaudi2Device(spec) if spec.vendor == "Intel" else A100Device(spec)
        if fresh:
            return device
        _CACHE[key] = device
    return _CACHE[key]
