"""A100 Tensor Core GEMM model.

cuBLAS executes a GEMM as a grid of CTA tiles; each of the 108 SMs
processes one CTA tile at a time, so the grid executes in *waves* of up
to 108 tiles.  Two quantization effects therefore govern utilization:

* **tile quantization** -- partial tiles at the M/N edges waste MACs;
* **wave quantization** -- a grid of, say, 256 tiles takes 3 waves on
  108 SMs, leaving the last wave mostly idle.

Unlike the Gaudi MME, the tiling is *not* reconfigurable to arbitrary
geometries: cuBLAS picks the best kernel from a small set of CTA tile
shapes, which is what keeps A100's utilization below Gaudi-2's for
awkward shapes (Figures 4, 5 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.hw.spec import A100_SPEC, DeviceSpec, DType
from repro.hw.systolic import blocked_gemm_traffic

#: CTA tile shapes cuBLAS chooses from, (tile_m, tile_n).
DEFAULT_CTA_TILES: Sequence[Tuple[int, int]] = (
    (256, 128),
    (128, 256),
    (128, 128),
    (128, 64),
    (64, 128),
    (64, 64),
)

#: Tensor Core pipeline efficiency (instruction issue, epilogue, sync
#: overheads); calibrated so large square GEMMs land around 90 % of
#: peak, a few points below Gaudi-2 as measured in Figure 5.
TC_PIPELINE_EFFICIENCY = 0.91

#: MACs one SM retires per clock with Tensor Cores (BF16).
_MACS_PER_SM = 1024

#: Fixed per-tile prologue/epilogue cost in cycles (smem staging,
#: fragment load/store); dominates tiny-K tiles.
_TILE_OVERHEAD_CYCLES = 96


@dataclass(frozen=True)
class TcEstimate:
    """Performance estimate for one GEMM execution on Tensor Cores."""

    m: int
    k: int
    n: int
    dtype: DType
    time: float
    achieved_flops: float
    utilization: float
    tile: Tuple[int, int]
    waves: int
    memory_bound: bool


class TensorCoreModel:
    """Performance model of A100 Tensor Core GEMM execution."""

    def __init__(
        self,
        spec: DeviceSpec = A100_SPEC,
        cta_tiles: Sequence[Tuple[int, int]] = DEFAULT_CTA_TILES,
    ) -> None:
        self.spec = spec
        self.cta_tiles = list(cta_tiles)
        self.sm_count = spec.vector.num_cores
        self.clock_hz = spec.matrix.clock_hz

    # ------------------------------------------------------------------
    def _tile_cycles(self, tile: Tuple[int, int], k: int) -> float:
        tm, tn = tile
        mac_cycles = (tm * tn * k) / _MACS_PER_SM
        return mac_cycles + _TILE_OVERHEAD_CYCLES

    def _compute_time(self, tile: Tuple[int, int], m: int, k: int, n: int) -> float:
        tm, tn = tile
        tiles = math.ceil(m / tm) * math.ceil(n / tn)
        waves = math.ceil(tiles / self.sm_count)
        cycles = waves * self._tile_cycles(tile, k)
        return cycles / (self.clock_hz * TC_PIPELINE_EFFICIENCY)

    def _memory_time(self, m: int, k: int, n: int, dtype: DType) -> float:
        # Operand panels are blocked through the 40 MB L2, exactly like
        # the Gaudi graph compiler blocks through its shared SRAM.
        traffic = blocked_gemm_traffic(
            m, k, n, dtype.itemsize, self.spec.memory.sram_bytes
        )
        efficiency = self.spec.memory.stream_efficiency
        # Skinny (GEMV-like) shapes stream the big operand through CTA
        # tiles narrower than a full DRAM burst pattern; measured cuBLAS
        # decode-GEMM bandwidth sits well below STREAM levels.  This is
        # the flip side of the reconfigurable-MME advantage the paper
        # credits for Gaudi-2's decode speedups (Section 3.5).
        if min(m, n) < 128:
            efficiency *= 0.88
        bw = self.spec.memory.bandwidth * efficiency
        return traffic / bw

    # ------------------------------------------------------------------
    def select_tile(self, m: int, k: int, n: int) -> Tuple[int, int]:
        """Pick the CTA tile cuBLAS's heuristic would choose."""
        return min(
            self.cta_tiles,
            key=lambda tile: self._compute_time(tile, m, k, n),
        )

    def gemm(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> TcEstimate:
        if min(m, k, n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
        tile = self.select_tile(m, k, n)
        dtype_scale = self.spec.matrix.peak(dtype) / self.spec.matrix.peak(DType.BF16)
        compute_time = self._compute_time(tile, m, k, n) / dtype_scale
        memory_time = self._memory_time(m, k, n, dtype)
        time = max(compute_time, memory_time)
        flops = 2.0 * m * k * n
        achieved = flops / time
        tm, tn = tile
        tiles = math.ceil(m / tm) * math.ceil(n / tn)
        return TcEstimate(
            m=m,
            k=k,
            n=n,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=achieved / self.spec.matrix.peak(dtype),
            tile=tile,
            waves=math.ceil(tiles / self.sm_count),
            memory_bound=memory_time > compute_time,
        )

    def gemm_time(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> float:
        return self.gemm(m, k, n, dtype).time

    def batched_gemm(
        self, batch: int, m: int, k: int, n: int, dtype: DType = DType.BF16
    ) -> TcEstimate:
        """Batched GEMM: the batch dimension fills SM waves."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        tile = self.select_tile(m, k, n)
        tm, tn = tile
        tiles = batch * math.ceil(m / tm) * math.ceil(n / tn)
        waves = math.ceil(tiles / self.sm_count)
        dtype_scale = self.spec.matrix.peak(dtype) / self.spec.matrix.peak(DType.BF16)
        compute_time = (
            waves
            * self._tile_cycles(tile, k)
            / (self.clock_hz * TC_PIPELINE_EFFICIENCY * dtype_scale)
        )
        memory_time = batch * self._memory_time(m, k, n, dtype)
        time = max(compute_time, memory_time)
        flops = 2.0 * batch * m * k * n
        achieved = flops / time
        return TcEstimate(
            m=m,
            k=k,
            n=n,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=achieved / self.spec.matrix.peak(dtype),
            tile=tile,
            waves=waves,
            memory_bound=memory_time > compute_time,
        )
