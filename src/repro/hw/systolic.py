"""Generic output-stationary systolic array cycle model.

This is the substrate for both the Gaudi MME model (which can pick from
several geometries at runtime) and the fixed-geometry baseline the paper
uses as the comparison point in Figure 7(c).

Model
-----
An output-stationary array of height ``H`` and width ``W`` computes an
``H x W`` tile of the output matrix per *pass*: operand matrix ``A``
rows stream in from the left, ``B`` columns from the top, and each PE
accumulates one output element over the full ``K`` reduction.  One pass
therefore takes ``K`` cycles in steady state, plus an ``H + W`` pipeline
fill/drain that is paid once because consecutive passes are pipelined
(the next tile's operands start streaming while the previous tile
drains).

A GEMM of shape ``(M, K, N)`` needs ``ceil(M/H) * ceil(N/W)`` tiles.
With ``E`` identical engines working on different tiles in parallel the
number of sequential passes is ``ceil(tiles / E)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class SystolicGeometry:
    """One configuration of a systolic array.

    ``height x width`` is the output-tile shape; ``engines`` is the
    number of identical arrays operating on independent tiles (the
    native Gaudi-2 configuration is two 256x256 arrays -> ``(256, 256,
    2)``).
    """

    height: int
    width: int
    engines: int = 1

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0 or self.engines <= 0:
            raise ValueError(f"invalid geometry {self!r}")

    @property
    def active_macs(self) -> int:
        """Number of MAC units this configuration keeps powered."""
        return self.height * self.width * self.engines

    @property
    def label(self) -> str:
        if self.engines == 1:
            return f"{self.height}x{self.width}"
        return f"{self.height}x{self.width}x{self.engines}"


@dataclass(frozen=True)
class SystolicTiming:
    """Result of a GEMM cycle estimate on a systolic array."""

    geometry: SystolicGeometry
    tiles: int
    passes: int
    cycles: float

    def time_seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


class SystolicArray:
    """An output-stationary systolic array with a fixed geometry."""

    def __init__(self, geometry: SystolicGeometry, clock_hz: float) -> None:
        self.geometry = geometry
        self.clock_hz = clock_hz

    def gemm_timing(self, m: int, k: int, n: int) -> SystolicTiming:
        """Cycle count for an ``(M, K, N)`` GEMM on this geometry."""
        if min(m, k, n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
        geo = self.geometry
        tiles = math.ceil(m / geo.height) * math.ceil(n / geo.width)
        passes = math.ceil(tiles / geo.engines)
        fill = geo.height + geo.width
        cycles = passes * k + fill
        return SystolicTiming(geometry=geo, tiles=tiles, passes=passes, cycles=cycles)

    def gemm_time(self, m: int, k: int, n: int) -> float:
        """GEMM execution time in seconds (compute only)."""
        return self.gemm_timing(m, k, n).time_seconds(self.clock_hz)

    def utilization(self, m: int, k: int, n: int, total_macs: int) -> float:
        """Achieved/peak MAC utilization relative to ``total_macs``.

        ``total_macs`` is the full physical array size, so a power-gated
        geometry can never exceed ``active_macs / total_macs``.
        """
        timing = self.gemm_timing(m, k, n)
        ideal_cycles = (m * k * n) / float(total_macs)
        return ideal_cycles / timing.cycles


def blocked_gemm_traffic(
    m: int, k: int, n: int, itemsize: int, sram_bytes: int, k_panel: int = 512
) -> float:
    """Off-chip traffic of a GEMM blocked through on-chip SRAM, bytes.

    Both platforms stage operand panels on chip (the Gaudi graph
    compiler through the 48 MB shared SRAM, cuBLAS through the 40 MB
    L2), streaming K in panels of ``k_panel``.  With a square block of
    side ``b`` chosen so that an A panel, a B panel, and the output
    block fit on chip, A is re-read ``ceil(N/b)`` times and B
    ``ceil(M/b)`` times; C is written once.
    """
    block = max(64, (sram_bytes // itemsize) // (3 * min(k, k_panel)))
    a_reads = math.ceil(n / block) * m * k
    b_reads = math.ceil(m / block) * k * n
    c_writes = m * n
    return float(itemsize) * (a_reads + b_reads + c_writes)


def best_geometry(
    geometries: Iterable[SystolicGeometry],
    m: int,
    k: int,
    n: int,
) -> Tuple[SystolicGeometry, SystolicTiming]:
    """Pick the fastest geometry for a GEMM shape.

    Ties (same cycle count) are broken toward fewer active MACs, which
    models the power-gating preference observed for the gray configs in
    Figure 7(a).
    """
    if min(m, k, n) <= 0:
        raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
    # Hot path (every uncached GEMM estimate walks the whole geometry
    # list): compare raw cycle counts inline and only materialize the
    # SystolicTiming for the winner.
    best_geo: SystolicGeometry | None = None
    best_cycles = 0.0
    best_macs = 0
    for geo in geometries:
        tiles = math.ceil(m / geo.height) * math.ceil(n / geo.width)
        cycles = math.ceil(tiles / geo.engines) * k + geo.height + geo.width
        macs = geo.height * geo.width * geo.engines
        if (
            best_geo is None
            or cycles < best_cycles - 1e-9
            or (abs(cycles - best_cycles) <= 1e-9 and macs < best_macs)
        ):
            best_geo, best_cycles, best_macs = geo, cycles, macs
    if best_geo is None:
        raise ValueError("no geometries supplied")
    return best_geo, SystolicArray(best_geo, clock_hz=1.0).gemm_timing(m, k, n)
