"""Peak-throughput accounting for the programmable vector engines.

The spec'd peaks (11 TFLOPS for 24 TPCs, 39 TFLOPS for A100 SIMD cores,
BF16) assume fused multiply-accumulate instructions that retire two
FLOPs per lane per cycle.  A kernel built from plain adds or multiplies
(STREAM's ADD and SCALE) can reach at most half of that -- which is
exactly the 50 %/50 %/99 % saturation split measured in Figure 8(d-f).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import DeviceSpec, DType, VectorEngineSpec


@dataclass(frozen=True)
class VectorThroughput:
    """Peak throughput of a vector-engine configuration."""

    flops: float
    fraction_of_peak: float


class VectorUnitModel:
    """Throughput model for one device's vector engines."""

    def __init__(self, spec: VectorEngineSpec) -> None:
        self.spec = spec

    @classmethod
    def for_device(cls, device_spec: DeviceSpec) -> "VectorUnitModel":
        return cls(device_spec.vector)

    def peak_flops(self, dtype: DType = DType.BF16, num_cores: int | None = None) -> float:
        """Peak FMA FLOPS for ``num_cores`` engines (default: all)."""
        cores = self.spec.num_cores if num_cores is None else num_cores
        if not 0 < cores <= self.spec.num_cores:
            raise ValueError(
                f"num_cores must be in (0, {self.spec.num_cores}], got {cores}"
            )
        return self.spec.peak(dtype) * cores / self.spec.num_cores

    def sustained_flops(
        self,
        dtype: DType = DType.BF16,
        uses_fma: bool = True,
        num_cores: int | None = None,
    ) -> VectorThroughput:
        """Sustained compute ceiling for a kernel's instruction mix.

        ``uses_fma=False`` models kernels whose arithmetic is plain
        adds/multiplies (one FLOP per lane per cycle instead of two).
        """
        peak = self.peak_flops(dtype, num_cores)
        fraction = 1.0 if uses_fma else 0.5
        return VectorThroughput(flops=peak * fraction, fraction_of_peak=fraction)

    def elementwise_time(
        self,
        num_elements: int,
        flops_per_element: float,
        dtype: DType = DType.BF16,
        uses_fma: bool = True,
        num_cores: int | None = None,
    ) -> float:
        """Compute-only time for an element-wise kernel."""
        if num_elements < 0 or flops_per_element < 0:
            raise ValueError("element count and flops must be non-negative")
        if num_elements == 0 or flops_per_element == 0:
            return 0.0
        ceiling = self.sustained_flops(dtype, uses_fma, num_cores).flops
        return num_elements * flops_per_element / ceiling
