"""Pluggable accelerator backends: the ``Backend`` protocol + registry.

The paper's programmability claim (Figure 2(a)) is that PyTorch's
device abstraction lets one serving stack run unchanged on either
platform.  This module is the simulator's equivalent seam: everything a
component model consumes from a platform -- GEMM/matmul cost, vector
and attention kernel cost, the memory model and its access granularity,
collective fabric parameters, the power model, and launch overheads --
is pinned down by the :class:`Backend` protocol, and concrete
implementations are looked up through a string-keyed registry instead
of hard-coded two-way branches.

Registration is entry-point style: a backend is declared as a
:class:`BackendInfo` whose factory is a lazy ``"module:attr"`` string,
so registering a platform costs nothing until the first
:func:`get_backend` call instantiates it.  Third-party code can extend
the open set at import time::

    from repro.hw.backend import BackendInfo, register_backend

    register_backend(BackendInfo(
        key="mi300", display_name="MI300X", vendor="AMD",
        family="cuda", aliases=("rocm",),
        factory="mypkg.mi300:Mi300Device",
    ))

or out-of-process via ``REPRO_BACKEND_PLUGINS=mypkg.mi300:register``
(a comma-separated list of ``module:callable`` hooks invoked on first
registry access).

Canonical registry keys for the built-in platforms are exported as
constants (:data:`GAUDI2`, :data:`A100`, :data:`H100`, :data:`GAUDI3`)
so call sites stop scattering raw ``"gaudi2"``/``"a100"`` literals.
"""

from __future__ import annotations

import difflib
import importlib
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.audit.errors import ConfigError

__all__ = [
    "A100",
    "Backend",
    "BackendInfo",
    "BackendRegistry",
    "GAUDI2",
    "GAUDI3",
    "H100",
    "DEFAULT_COMPARISON",
    "comparison_backends",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "backend_info",
]

#: Canonical registry keys of the built-in backends.
GAUDI2 = "gaudi2"
A100 = "a100"
H100 = "h100"
GAUDI3 = "gaudi3"

#: The paper's original two-way comparison (ordering matters: figures
#: iterate in this order, and golden outputs depend on it).
DEFAULT_COMPARISON: Tuple[str, ...] = (GAUDI2, A100)

#: Environment variable naming the active comparison set, e.g.
#: ``REPRO_BACKENDS=gaudi2,a100,h100`` (set by ``repro --backend``;
#: inherited by process-pool workers, so parallel figure regeneration
#: sees the same set).
BACKENDS_ENV = "REPRO_BACKENDS"

#: Environment variable of extra registration hooks, comma-separated
#: ``module:callable`` entries invoked once on first registry access.
PLUGINS_ENV = "REPRO_BACKEND_PLUGINS"


@runtime_checkable
class Backend(Protocol):
    """Everything a component model may consume from one platform.

    The concrete implementations are the device facades of
    :mod:`repro.hw.device` / :mod:`repro.hw.hopper`; this protocol
    pins the surface so new backends know exactly what to provide and
    the conformance suite (``tests/test_backend_conformance.py``) can
    hold every registered backend to the same invariants.
    """

    # -- identity ------------------------------------------------------
    @property
    def name(self) -> str: ...            # display name, e.g. "Gaudi-2"
    @property
    def spec(self): ...                   # DeviceSpec (Table 1 column)

    # -- kernel-dialect capabilities ----------------------------------
    #: Which kernel implementations apply: "gaudi" (graph-compiler
    #: fused MME + TPC-C) or "cuda" (SIMT kernels + tensor cores).
    family: str
    #: Default paged decode-attention implementation name
    #: (a :class:`repro.models.llama.DecodeAttention` value).
    decode_attention: str
    #: Which smi-style readout the tools layer renders.
    smi_style: str
    #: Fused dense-attention efficiency (fraction of matrix peak).
    attention_efficiency: float

    # -- cost models ---------------------------------------------------
    def gemm(self, m: int, k: int, n: int, dtype=..., batch: int = 1): ...
    def matrix_utilization(self, m: int, k: int, n: int, dtype=...) -> float: ...
    @property
    def hbm(self): ...                    # HbmModel (granularity, random bw)
    @property
    def vector(self): ...                 # VectorUnitModel
    @property
    def power(self): ...                  # PowerModel

    # -- fabric / overheads -------------------------------------------
    def collective_library(self, num_devices: int = 8): ...
    @property
    def kernel_launch_overhead(self) -> float: ...
    @property
    def peak_matrix_flops(self) -> float: ...
    @property
    def peak_vector_flops(self) -> float: ...
    @property
    def peak_bandwidth(self) -> float: ...


@dataclass(frozen=True)
class BackendInfo:
    """One registered backend (declaration only; construction is lazy).

    ``factory`` and ``spec`` accept either the object itself or an
    entry-point style ``"module:attr"`` string resolved on first use,
    so declaring a backend never imports its implementation module.
    """

    key: str
    display_name: str
    vendor: str
    #: Kernel-dialect family ("gaudi" | "cuda").
    family: str
    factory: Union[str, Callable[[], "Backend"]]
    aliases: Tuple[str, ...] = ()
    #: Lazy pointer at the backend's DeviceSpec (for spec lookups that
    #: must not instantiate the full device model).
    spec: Union[str, object, None] = None
    #: One-line description shown by ``repro backends``.
    summary: str = ""

    def resolve_factory(self) -> Callable[[], "Backend"]:
        if callable(self.factory):
            return self.factory
        return _load_entry_point(self.factory)

    def resolve_spec(self):
        if self.spec is None:
            return None
        if isinstance(self.spec, str):
            return _load_entry_point(self.spec)
        return self.spec


def _load_entry_point(ref: str):
    """Resolve an entry-point style ``"module:attr"`` reference."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ConfigError(f"bad backend entry point {ref!r} (expected 'module:attr')")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ConfigError(
            f"backend entry point {ref!r} names no attribute {attr!r}"
        ) from None


class BackendRegistry:
    """String-keyed, alias-aware registry of accelerator backends."""

    def __init__(self) -> None:
        self._infos: Dict[str, BackendInfo] = {}
        self._aliases: Dict[str, str] = {}
        self._instances: Dict[str, Backend] = {}
        self._plugins_loaded = False

    # -- registration --------------------------------------------------
    def register(self, info: BackendInfo, replace: bool = False) -> BackendInfo:
        key = info.key.lower()
        if not replace and key in self._infos:
            raise ConfigError(f"backend {key!r} is already registered")
        self._infos[key] = info
        self._aliases[key] = key
        for alias in (*info.aliases, info.display_name):
            self._aliases[alias.lower()] = key
        self._instances.pop(key, None)
        return info

    def _load_plugins(self) -> None:
        """Invoke the ``REPRO_BACKEND_PLUGINS`` hooks exactly once."""
        if self._plugins_loaded:
            return
        self._plugins_loaded = True
        for ref in filter(None, os.environ.get(PLUGINS_ENV, "").split(",")):
            _load_entry_point(ref.strip())()

    # -- lookup --------------------------------------------------------
    def resolve(self, name: str) -> str:
        """Canonical registry key for ``name`` (key, alias, or display
        name; case-insensitive).  Unknown names raise a typed
        :class:`~repro.audit.errors.ConfigError` listing the registered
        backends, with a did-you-mean suggestion when one is close."""
        self._load_plugins()
        if not isinstance(name, str):
            raise ConfigError(f"backend name must be a string, got {type(name).__name__}")
        key = self._aliases.get(name.lower())
        if key is not None:
            return key
        # "<base>@surrogate" lazily registers the fitted fast-path
        # facade of an already-registered base backend (declaration
        # only -- fitting happens at first instantiation).
        if name.lower().endswith("@surrogate") and name.lower() != "@surrogate":
            from repro.surrogate.backend import ensure_registered

            return ensure_registered(name.lower()[: -len("@surrogate")])
        known = sorted(self._infos)
        close = difflib.get_close_matches(name.lower(), list(self._aliases), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigError(
            f"unknown backend {name!r}{hint}; registered backends: {', '.join(known)}"
        )

    def info(self, name: str) -> BackendInfo:
        return self._infos[self.resolve(name)]

    def get(self, name: str, fresh: bool = False) -> Backend:
        """The backend instance for ``name``.

        Backends are stateless cost models, so instances are cached per
        canonical key unless ``fresh`` asks for a private one.
        """
        key = self.resolve(name)
        if fresh:
            return self._infos[key].resolve_factory()()
        instance = self._instances.get(key)
        if instance is None:
            instance = self._infos[key].resolve_factory()()
            self._instances[key] = instance
        return instance

    def spec(self, name: str):
        """The backend's DeviceSpec without instantiating its models."""
        key = self.resolve(name)
        spec = self._infos[key].resolve_spec()
        if spec is None:
            spec = self.get(key).spec
        return spec

    def keys(self) -> List[str]:
        """Sorted canonical keys of every registered backend."""
        self._load_plugins()
        return sorted(self._infos)

    def infos(self) -> List[BackendInfo]:
        return [self._infos[key] for key in self.keys()]


#: The process-wide registry every surface resolves through.
REGISTRY = BackendRegistry()


def register_backend(info: BackendInfo, replace: bool = False) -> BackendInfo:
    """Register one backend declaration on the global registry."""
    return REGISTRY.register(info, replace=replace)


def get_backend(name: str, fresh: bool = False) -> Backend:
    """Instantiate (or fetch the cached) backend for ``name``."""
    return REGISTRY.get(name, fresh=fresh)


def resolve_backend(name: str) -> str:
    """Validate ``name`` and return its canonical registry key."""
    return REGISTRY.resolve(name)


def backend_info(name: str) -> BackendInfo:
    """The :class:`BackendInfo` declaration behind ``name``."""
    return REGISTRY.info(name)


def list_backends() -> List[str]:
    """Sorted canonical keys of every registered backend."""
    return REGISTRY.keys()


def comparison_backends(default: Optional[Tuple[str, ...]] = None) -> Tuple[str, ...]:
    """The active comparison set for backend-parametric figures.

    Resolution order: the ``REPRO_BACKENDS`` environment variable
    (comma-separated, set by the CLI's ``--backend`` flags and
    inherited by figure process-pool workers), else ``default``, else
    the paper's original :data:`DEFAULT_COMPARISON` pair.  Every name
    is validated through the registry; order and duplicates-removal are
    stable so figure output is deterministic.
    """
    raw = os.environ.get(BACKENDS_ENV, "")
    names = [part.strip() for part in raw.split(",") if part.strip()]
    if not names:
        return tuple(default) if default else DEFAULT_COMPARISON
    seen: Dict[str, None] = {}
    for name in names:
        seen.setdefault(resolve_backend(name), None)
    return tuple(seen)


# -- built-in backends -------------------------------------------------
# Declared lazily (entry-point style) so importing the registry never
# pulls in a device model the process does not use.
register_backend(BackendInfo(
    key=GAUDI2,
    display_name="Gaudi-2",
    vendor="Intel",
    family="gaudi",
    aliases=("gaudi-2", "hpu"),
    factory="repro.hw.device:Gaudi2Device",
    spec="repro.hw.spec:GAUDI2_SPEC",
    summary="Intel Gaudi-2 NPU: reconfigurable MME + 24 TPCs (Table 1)",
))
register_backend(BackendInfo(
    key=A100,
    display_name="A100",
    vendor="NVIDIA",
    family="cuda",
    aliases=("cuda", "gpu"),
    factory="repro.hw.device:A100Device",
    spec="repro.hw.spec:A100_SPEC",
    summary="NVIDIA A100 GPU: Tensor Cores + 108 SMs (Table 1)",
))
register_backend(BackendInfo(
    key=H100,
    display_name="H100",
    vendor="NVIDIA",
    family="cuda",
    aliases=("hopper", "h100-sxm"),
    factory="repro.hw.hopper:H100Device",
    spec="repro.hw.hopper:H100_SPEC",
    summary="NVIDIA H100 GPU: tile-based tensor-core GEMM (CUDA-Tile model)",
))
register_backend(BackendInfo(
    key=GAUDI3,
    display_name="Gaudi-3",
    vendor="Intel",
    family="gaudi",
    aliases=("gaudi-3",),
    factory="repro.hw.gaudi3:Gaudi3Device",
    spec="repro.hw.gaudi3:GAUDI3_SPEC",
    summary="Intel Gaudi-3 projection (footnote 1 scaling of Gaudi-2)",
))
