"""Hardware models for the evaluated platforms.

This package contains mechanistic performance and energy models of the
Intel Gaudi-2 NPU, the NVIDIA A100 GPU, and further registered
backends, built from the microarchitectural facts documented in the
paper (Table 1, Section 2, and the reverse-engineering results of
Section 3):

* :mod:`repro.hw.spec` -- typed spec sheets (Table 1 of the paper).
* :mod:`repro.hw.backend` -- the ``Backend`` protocol and the
  string-keyed registry every platform lookup resolves through.
* :mod:`repro.hw.systolic` -- a generic output-stationary systolic-array
  cycle model.
* :mod:`repro.hw.mme` -- Gaudi's reconfigurable Matrix Multiplication
  Engine, including the geometry set recovered in Figure 7(a).
* :mod:`repro.hw.tensorcore` -- A100's Tensor Core GEMM model with CTA
  tiling and SM wave quantization.
* :mod:`repro.hw.hopper` -- the H100 tile-based tensor-core GEMM model
  (the registry's third contender).
* :mod:`repro.hw.vector_unit` -- peak-throughput models for the TPC
  vector unit and the A100 SIMD cores.
* :mod:`repro.hw.memory` -- HBM bandwidth model with access-granularity
  waste and random-access behaviour.
* :mod:`repro.hw.power` -- activity-based power/energy model.
* :mod:`repro.hw.device` -- ``Gaudi2Device`` / ``A100Device`` facades
  that tie the component models together.
"""

from repro.hw.backend import (
    A100,
    GAUDI2,
    GAUDI3,
    H100,
    Backend,
    BackendInfo,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.hw.device import A100Device, Device, Gaudi2Device, get_device
from repro.hw.mme import MmeConfig, MmeModel
from repro.hw.memory import AccessPattern, HbmModel
from repro.hw.power import ActivityAccumulator, ActivityProfile, PowerModel, PowerSample
from repro.hw.spec import (
    A100_SPEC,
    GAUDI2_SPEC,
    DeviceSpec,
    DType,
    spec_comparison_rows,
)
from repro.hw.systolic import SystolicArray, SystolicGeometry
from repro.hw.tensorcore import TensorCoreModel
from repro.hw.vector_unit import VectorUnitModel

__all__ = [
    "A100Device",
    "ActivityAccumulator",
    "ActivityProfile",
    "A100_SPEC",
    "AccessPattern",
    "A100",
    "Backend",
    "BackendInfo",
    "GAUDI2",
    "GAUDI3",
    "H100",
    "Device",
    "DeviceSpec",
    "DType",
    "GAUDI2_SPEC",
    "Gaudi2Device",
    "HbmModel",
    "MmeConfig",
    "MmeModel",
    "PowerModel",
    "PowerSample",
    "SystolicArray",
    "SystolicGeometry",
    "TensorCoreModel",
    "VectorUnitModel",
    "get_backend",
    "get_device",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "spec_comparison_rows",
]
