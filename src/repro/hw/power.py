"""Activity-based power and energy model.

The paper measures board power with ``nvidia-smi`` / ``hl-smi`` while
serving end-to-end workloads (Section 3.5).  We model board power as

``P = P_idle + P_matrix * matrix_activity + P_vector * vector_activity
      + P_memory * memory_activity``

where each activity term is the busy fraction of that engine weighted
by how much of it is switching.  Two behaviours the paper calls out are
captured explicitly:

* **MME power gating** -- when the graph compiler configures a
  power-gated geometry for small GEMMs (Figure 7(a), gray configs), the
  matrix term scales with the *active MAC fraction*.  This is the
  paper's explanation for Gaudi-2 drawing less power than its 1.5x TDP
  ratio would suggest at small LLM batch sizes.
* **TDP clamp** -- sustained power never exceeds the board TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import DeviceSpec, PowerSpec


@dataclass(frozen=True)
class ActivityProfile:
    """Time-averaged engine activity during a workload phase.

    All fields are fractions in [0, 1].

    ``matrix_busy``: fraction of time the matrix engine executes.
    ``matrix_active_fraction``: fraction of the MAC array powered while
    busy (1.0 unless a power-gated geometry is configured).
    ``vector_busy``: fraction of time the vector engines execute.
    ``memory_util``: achieved fraction of peak HBM bandwidth.
    """

    matrix_busy: float = 0.0
    matrix_active_fraction: float = 1.0
    vector_busy: float = 0.0
    memory_util: float = 0.0
    comm_busy: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "matrix_busy",
            "matrix_active_fraction",
            "vector_busy",
            "memory_util",
            "comm_busy",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class PowerSample:
    """Power and energy for one workload phase."""

    watts: float
    seconds: float

    @property
    def joules(self) -> float:
        return self.watts * self.seconds


class ActivityAccumulator:
    """Accumulates engine work across a workload into an activity profile.

    Work is accounted in *engine-seconds at full width*: a GEMM
    contributes ``flops / peak_matrix_flops`` seconds of matrix-engine
    activity weighted by the active MAC fraction of its chosen
    geometry; traffic contributes ``bytes / peak_bandwidth`` of memory
    activity.  Dividing by wall-clock time yields the time-averaged
    busy fractions the power model consumes.
    """

    def __init__(self) -> None:
        self.matrix_seconds = 0.0
        self.matrix_active_weighted = 0.0
        self.vector_seconds = 0.0
        self.memory_seconds = 0.0
        self.comm_seconds = 0.0

    def add_matrix(self, busy_seconds: float, active_fraction: float = 1.0) -> None:
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self.matrix_seconds += busy_seconds
        self.matrix_active_weighted += busy_seconds * active_fraction

    def add_vector(self, busy_seconds: float) -> None:
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self.vector_seconds += busy_seconds

    def add_memory(self, busy_seconds: float) -> None:
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self.memory_seconds += busy_seconds

    def add_comm(self, busy_seconds: float) -> None:
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self.comm_seconds += busy_seconds

    def merge(self, other: "ActivityAccumulator") -> None:
        self.matrix_seconds += other.matrix_seconds
        self.matrix_active_weighted += other.matrix_active_weighted
        self.vector_seconds += other.vector_seconds
        self.memory_seconds += other.memory_seconds
        self.comm_seconds += other.comm_seconds

    def __eq__(self, other: object) -> bool:
        """Value equality over the accumulated engine-seconds; the memo
        auditor compares recomputed activity against cached entries."""
        if not isinstance(other, ActivityAccumulator):
            return NotImplemented
        return (
            self.matrix_seconds == other.matrix_seconds
            and self.matrix_active_weighted == other.matrix_active_weighted
            and self.vector_seconds == other.vector_seconds
            and self.memory_seconds == other.memory_seconds
            and self.comm_seconds == other.comm_seconds
        )

    # Accumulators are mutable and never used as set/dict keys; keep
    # the identity hash rather than becoming unhashable via __eq__.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"ActivityAccumulator(matrix={self.matrix_seconds:.3e}, "
            f"vector={self.vector_seconds:.3e}, memory={self.memory_seconds:.3e}, "
            f"comm={self.comm_seconds:.3e})"
        )

    def record_to(self, metrics) -> None:
        """Add this accumulator's engine-seconds to a
        :class:`~repro.obs.metrics.MetricsRegistry` (the MME/TPC/HBM
        busy-time counters of the observability layer); no-op when
        ``metrics`` is None."""
        if metrics is None:
            return
        metrics.counter("activity.mme_busy_seconds").inc(self.matrix_seconds)
        metrics.counter("activity.tpc_busy_seconds").inc(self.vector_seconds)
        metrics.counter("activity.hbm_busy_seconds").inc(self.memory_seconds)
        metrics.counter("activity.comm_busy_seconds").inc(self.comm_seconds)

    def profile(self, wall_seconds: float) -> ActivityProfile:
        if wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        matrix_busy = min(1.0, self.matrix_seconds / wall_seconds)
        active_fraction = (
            self.matrix_active_weighted / self.matrix_seconds
            if self.matrix_seconds > 0
            else 1.0
        )
        return ActivityProfile(
            matrix_busy=matrix_busy,
            matrix_active_fraction=min(1.0, active_fraction),
            vector_busy=min(1.0, self.vector_seconds / wall_seconds),
            memory_util=min(1.0, self.memory_seconds / wall_seconds),
            comm_busy=min(1.0, self.comm_seconds / wall_seconds),
        )


class PowerModel:
    """Board-power model for one device."""

    def __init__(self, spec: PowerSpec) -> None:
        self.spec = spec

    @classmethod
    def for_device(cls, device_spec: DeviceSpec) -> "PowerModel":
        return cls(device_spec.power)

    def power(self, activity: ActivityProfile) -> float:
        """Instantaneous board power in watts for an activity profile."""
        spec = self.spec
        matrix_fraction = (
            activity.matrix_active_fraction if spec.matrix_power_gating else 1.0
        )
        watts = (
            spec.idle_watts
            + spec.matrix_watts * activity.matrix_busy * matrix_fraction
            + spec.vector_watts * activity.vector_busy
            + spec.memory_watts * activity.memory_util
            + spec.comm_watts * activity.comm_busy
        )
        return min(watts, spec.tdp_watts)

    def sample(self, activity: ActivityProfile, seconds: float) -> PowerSample:
        """Power draw sustained for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return PowerSample(watts=self.power(activity), seconds=seconds)

    def energy(self, activity: ActivityProfile, seconds: float) -> float:
        """Energy in joules for a phase."""
        return self.sample(activity, seconds).joules
