"""Device specification sheets (Table 1 of the paper).

The specs below are taken verbatim from Table 1 of the paper, plus the
microarchitectural parameters documented in Section 2 (SIMD width,
local-memory sizes, access granularities, link counts).  Everything a
component model needs is threaded through :class:`DeviceSpec` so the
models never reach for magic numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

GIGA = 1e9
TERA = 1e12
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


class DType(enum.Enum):
    """Numeric data types used by the evaluated workloads."""

    BF16 = "bf16"
    FP16 = "fp16"
    FP32 = "fp32"
    INT8 = "int8"

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return {"bf16": 2, "fp16": 2, "fp32": 4, "int8": 1}[self.value]


@dataclass(frozen=True)
class MatrixEngineSpec:
    """Spec of a matrix-multiply engine (MME or Tensor Cores)."""

    name: str
    peak_flops: Dict[DType, float]
    #: Number of physical MAC units (for the MME: 2 x 256 x 256).
    total_macs: int
    #: Engine clock in Hz, derived so that ``2 * total_macs * clock``
    #: equals the BF16 peak.
    clock_hz: float
    #: True if the systolic geometry can be reconfigured at runtime.
    configurable: bool

    def peak(self, dtype: DType = DType.BF16) -> float:
        return self.peak_flops[dtype]


@dataclass(frozen=True)
class VectorEngineSpec:
    """Spec of the programmable vector engine (TPCs or SIMD cores)."""

    name: str
    #: Peak FLOPS assuming fused multiply-accumulate instructions.
    peak_flops: Dict[DType, float]
    num_cores: int
    clock_hz: float
    #: SIMD register width in bits (2048 for the TPC).
    simd_width_bits: int
    #: Architectural instruction latency in cycles (4 for the TPC).
    instruction_latency: int
    #: Sustained streaming memory bandwidth of a single core, bytes/s.
    #: For the TPC this is the per-core DMA/load-port limit that makes
    #: STREAM saturate chip bandwidth at 11-15 TPCs (Figure 8(c)).
    per_core_stream_bw: float
    #: Maximum outstanding random (gather) accesses per core.
    max_outstanding_loads: int
    #: Average random-access (HBM) load latency in cycles.
    random_load_latency: int

    def lanes(self, dtype: DType) -> int:
        """Number of SIMD lanes for ``dtype``."""
        return self.simd_width_bits // (8 * dtype.itemsize)

    def peak(self, dtype: DType = DType.BF16) -> float:
        return self.peak_flops[dtype]


@dataclass(frozen=True)
class MemorySpec:
    """Spec of the off-chip memory subsystem."""

    hbm_type: str
    capacity_bytes: int
    bandwidth: float
    #: Minimum useful off-chip access granularity in bytes
    #: (256 B on Gaudi-2, 32 B sectors on A100).
    min_access_bytes: int
    #: Base DRAM efficiency for fully streaming access patterns.
    stream_efficiency: float
    #: Extra efficiency loss per concurrent stream beyond two
    #: (row-buffer conflicts; calibrated from Figure 8(c)).
    stream_conflict_penalty: float
    #: DRAM efficiency for random accesses at/above the granularity.
    random_efficiency: float
    #: Cap on random transactions per second (TLB/row activation limit;
    #: what separates A100 from pure sector arithmetic in Figure 9).
    max_random_transactions: float
    #: On-chip SRAM (shared memory on Gaudi, L2 on A100), bytes.
    sram_bytes: int
    #: Whether the SRAM acts as a transparent cache for global loads
    #: (True for A100's L2, False for Gaudi's compiler-managed SRAM).
    sram_is_cache: bool
    #: Random writes below the granularity need read-modify-write.
    scatter_rmw: bool


@dataclass(frozen=True)
class InterconnectSpec:
    """Spec of the intra-node interconnect."""

    kind: str  # "p2p-mesh" or "switch"
    #: Per-device aggregate injection bandwidth, bytes/s per direction.
    per_device_bandwidth: float
    #: For a P2P mesh: number of links and per-link bandwidth.
    links_per_pair: int
    link_bandwidth: float
    #: Base latency of one transfer, seconds.
    base_latency: float
    #: Protocol efficiency of the collective library on this fabric.
    protocol_efficiency: float


@dataclass(frozen=True)
class PowerSpec:
    """Activity-based power decomposition (sums to roughly the TDP)."""

    tdp_watts: float
    idle_watts: float
    matrix_watts: float
    vector_watts: float
    memory_watts: float
    #: Interconnect PHY power while collectives are in flight (NVLink
    #: SerDes + NVSwitch share on A100; RoCE NICs on Gaudi-2).
    comm_watts: float
    #: Whether unused parts of the matrix engine are power gated when a
    #: small geometry is configured (Figure 7(a), gray configs).
    matrix_power_gating: bool


@dataclass(frozen=True)
class DeviceSpec:
    """Complete spec sheet of one device (one column of Table 1)."""

    name: str
    vendor: str
    process_node: str
    matrix: MatrixEngineSpec
    vector: VectorEngineSpec
    memory: MemorySpec
    interconnect: InterconnectSpec
    power: PowerSpec
    #: Fixed host-side kernel-launch overhead, seconds.
    kernel_launch_overhead: float
    #: Extra per-step overhead of graph (re)build / runtime dispatch for
    #: shape-specialized compiled graphs, seconds.
    graph_dispatch_overhead: float

    def peak_matrix_flops(self, dtype: DType = DType.BF16) -> float:
        return self.matrix.peak(dtype)

    def peak_vector_flops(self, dtype: DType = DType.BF16) -> float:
        return self.vector.peak(dtype)


def _gaudi2_spec() -> DeviceSpec:
    mme_macs = 2 * 256 * 256
    mme_peak_bf16 = 432 * TERA
    mme_clock = mme_peak_bf16 / (2.0 * mme_macs)
    tpc_peak_bf16 = 11 * TERA
    tpc_cores = 24
    tpc_clock = tpc_peak_bf16 / (tpc_cores * 2.0 * (2048 // 16))
    return DeviceSpec(
        name="Gaudi-2",
        vendor="Intel",
        process_node="TSMC 7nm",
        matrix=MatrixEngineSpec(
            name="MME",
            # FP32 runs through the MME at a quarter of the BF16 rate
            # (two-pass split-mantissa accumulation); Table 1 lists
            # only BF16.
            peak_flops={
                DType.BF16: mme_peak_bf16,
                DType.FP16: mme_peak_bf16,
                DType.FP32: 0.25 * mme_peak_bf16,
                DType.INT8: 2.0 * mme_peak_bf16,
            },
            total_macs=mme_macs,
            clock_hz=mme_clock,
            configurable=True,
        ),
        vector=VectorEngineSpec(
            name="TPC",
            peak_flops={
                DType.BF16: tpc_peak_bf16,
                DType.FP16: tpc_peak_bf16,
                DType.FP32: 0.5 * tpc_peak_bf16,
                DType.INT8: 2.0 * tpc_peak_bf16,
            },
            num_cores=tpc_cores,
            clock_hz=tpc_clock,
            simd_width_bits=2048,
            instruction_latency=4,
            per_core_stream_bw=165 * GIGA,
            max_outstanding_loads=64,
            random_load_latency=420,
        ),
        memory=MemorySpec(
            hbm_type="HBM2E",
            capacity_bytes=96 * GIB,
            bandwidth=2.45 * TERA,
            min_access_bytes=256,
            stream_efficiency=0.87,
            stream_conflict_penalty=0.03,
            random_efficiency=0.72,
            # 256 B per transaction means the transaction-rate ceiling is
            # never the binding constraint on Gaudi-2.
            max_random_transactions=2.45 * TERA * 0.72 / 256.0,
            sram_bytes=48 * MIB,
            sram_is_cache=False,
            scatter_rmw=True,
        ),
        interconnect=InterconnectSpec(
            kind="p2p-mesh",
            per_device_bandwidth=300 * GIGA,
            links_per_pair=3,
            link_bandwidth=12.5 * GIGA,
            base_latency=6e-6,
            protocol_efficiency=0.87,
        ),
        power=PowerSpec(
            tdp_watts=600.0,
            idle_watts=35.0,
            matrix_watts=275.0,
            vector_watts=80.0,
            memory_watts=175.0,
            comm_watts=25.0,
            matrix_power_gating=True,
        ),
        kernel_launch_overhead=9e-6,
        graph_dispatch_overhead=14e-6,
    )


def _a100_spec() -> DeviceSpec:
    tc_peak_bf16 = 312 * TERA
    sm_count = 108
    sm_clock = 1.41 * GIGA
    tc_macs = int(round(tc_peak_bf16 / (2.0 * sm_clock)))
    simd_peak_bf16 = 39 * TERA
    return DeviceSpec(
        name="A100",
        vendor="NVIDIA",
        process_node="TSMC 7nm",
        matrix=MatrixEngineSpec(
            name="Tensor Cores",
            # FP32 matmuls route through the TF32 Tensor Core path
            # (156 TFLOPS), the cuBLAS default for training/serving.
            peak_flops={
                DType.BF16: tc_peak_bf16,
                DType.FP16: tc_peak_bf16,
                DType.FP32: 156 * TERA,
                DType.INT8: 2.0 * tc_peak_bf16,
            },
            total_macs=tc_macs,
            clock_hz=sm_clock,
            configurable=False,
        ),
        vector=VectorEngineSpec(
            name="SIMD Cores",
            peak_flops={
                DType.BF16: simd_peak_bf16,
                DType.FP16: simd_peak_bf16,
                DType.FP32: 19.5 * TERA,
                DType.INT8: 2.0 * simd_peak_bf16,
            },
            num_cores=sm_count,
            clock_hz=sm_clock,
            simd_width_bits=2048,
            instruction_latency=4,
            # One SM can sustain far more streaming bandwidth than a TPC
            # thanks to massive multithreading; ~25 SMs saturate HBM.
            per_core_stream_bw=80 * GIGA,
            max_outstanding_loads=256,
            random_load_latency=480,
        ),
        memory=MemorySpec(
            hbm_type="HBM2E",
            capacity_bytes=80 * GIB,
            bandwidth=2.0 * TERA,
            min_access_bytes=32,
            stream_efficiency=0.90,
            stream_conflict_penalty=0.03,
            random_efficiency=0.72,
            # Calibrated so the <=128 B gather average lands at ~36 % of
            # peak (Figure 9): the A100 is transaction-rate limited below
            # 128 B rather than granularity limited.
            max_random_transactions=12e9,
            sram_bytes=40 * MIB,
            sram_is_cache=True,
            scatter_rmw=False,
        ),
        interconnect=InterconnectSpec(
            kind="switch",
            per_device_bandwidth=300 * GIGA,
            links_per_pair=0,
            link_bandwidth=25 * GIGA,
            base_latency=1.5e-6,
            protocol_efficiency=0.76,
        ),
        power=PowerSpec(
            tdp_watts=400.0,
            idle_watts=130.0,
            matrix_watts=115.0,
            vector_watts=45.0,
            memory_watts=110.0,
            comm_watts=60.0,
            matrix_power_gating=False,
        ),
        kernel_launch_overhead=5e-6,
        graph_dispatch_overhead=12e-6,
    )


GAUDI2_SPEC: DeviceSpec = _gaudi2_spec()
A100_SPEC: DeviceSpec = _a100_spec()

_SPECS: Dict[str, DeviceSpec] = {
    "gaudi2": GAUDI2_SPEC,
    "gaudi-2": GAUDI2_SPEC,
    "hpu": GAUDI2_SPEC,
    "a100": A100_SPEC,
    "cuda": A100_SPEC,
    "gpu": A100_SPEC,
}


def register_spec(name: str, spec: DeviceSpec) -> None:
    """Register an additional device spec (e.g. the Gaudi-3 projection)."""
    _SPECS[name.lower()] = spec


def get_spec(name: str) -> DeviceSpec:
    """Look up a spec sheet by device name (case-insensitive).

    Names registered via :func:`register_spec` resolve directly;
    anything else falls through to the backend registry
    (:mod:`repro.hw.backend`), which resolves registered backends
    lazily and raises a typed :class:`~repro.audit.errors.ConfigError`
    with a did-you-mean hint on unknown names.
    """
    spec = _SPECS.get(name.lower()) if isinstance(name, str) else None
    if spec is not None:
        return spec
    from repro.hw.backend import REGISTRY

    return REGISTRY.spec(name)


def spec_comparison_rows() -> List[Tuple[str, str, str, str]]:
    """Rows of Table 1: (metric, A100, Gaudi-2, ratio)."""
    a, g = A100_SPEC, GAUDI2_SPEC
    rows = [
        (
            "TFLOPS (BF16, matrix)",
            f"{a.matrix.peak(DType.BF16) / TERA:.0f}",
            f"{g.matrix.peak(DType.BF16) / TERA:.0f}",
            f"{g.matrix.peak(DType.BF16) / a.matrix.peak(DType.BF16):.1f}x",
        ),
        (
            "TFLOPS (BF16, vector)",
            f"{a.vector.peak(DType.BF16) / TERA:.0f}",
            f"{g.vector.peak(DType.BF16) / TERA:.0f}",
            f"{g.vector.peak(DType.BF16) / a.vector.peak(DType.BF16):.1f}x",
        ),
        ("HBM type", a.memory.hbm_type, g.memory.hbm_type, "-"),
        (
            "HBM capacity (GB)",
            f"{a.memory.capacity_bytes / GIB:.0f}",
            f"{g.memory.capacity_bytes / GIB:.0f}",
            f"{g.memory.capacity_bytes / a.memory.capacity_bytes:.1f}x",
        ),
        (
            "HBM bandwidth (TB/s)",
            f"{a.memory.bandwidth / TERA:.2f}",
            f"{g.memory.bandwidth / TERA:.2f}",
            f"{g.memory.bandwidth / a.memory.bandwidth:.1f}x",
        ),
        (
            "SRAM capacity (MB)",
            f"{a.memory.sram_bytes / MIB:.0f}",
            f"{g.memory.sram_bytes / MIB:.0f}",
            f"{g.memory.sram_bytes / a.memory.sram_bytes:.1f}x",
        ),
        (
            "Communication (GB/s, bidirectional)",
            f"{2 * a.interconnect.per_device_bandwidth / GIGA:.0f}",
            f"{2 * g.interconnect.per_device_bandwidth / GIGA:.0f}",
            "1.0x",
        ),
        (
            "Power (Watts)",
            f"{a.power.tdp_watts:.0f}",
            f"{g.power.tdp_watts:.0f}",
            f"{g.power.tdp_watts / a.power.tdp_watts:.1f}x",
        ),
    ]
    return rows


def spec_comparison_rows_for(specs: List[DeviceSpec]) -> List[Tuple[str, ...]]:
    """Table-1 rows generalized to any comparison set.

    Each row is ``(metric, value_per_spec..., ratio)``; the ratio
    column compares every non-first spec to the first (baseline)
    column, slash-separated when the set has more than two members.
    For ``[A100_SPEC, GAUDI2_SPEC]`` this reproduces the classic
    two-column :func:`spec_comparison_rows` table.
    """
    if not specs:
        return []

    def ratio(values: List[float]) -> str:
        return " / ".join(f"{v / values[0]:.1f}x" for v in values[1:]) or "-"

    metrics = [
        ("TFLOPS (BF16, matrix)",
         lambda s: s.matrix.peak(DType.BF16), lambda v: f"{v / TERA:.0f}"),
        ("TFLOPS (BF16, vector)",
         lambda s: s.vector.peak(DType.BF16), lambda v: f"{v / TERA:.0f}"),
        ("HBM type", None, None),
        ("HBM capacity (GB)",
         lambda s: s.memory.capacity_bytes, lambda v: f"{v / GIB:.0f}"),
        ("HBM bandwidth (TB/s)",
         lambda s: s.memory.bandwidth, lambda v: f"{v / TERA:.2f}"),
        ("SRAM capacity (MB)",
         lambda s: s.memory.sram_bytes, lambda v: f"{v / MIB:.0f}"),
        ("Communication (GB/s, bidirectional)",
         lambda s: 2 * s.interconnect.per_device_bandwidth,
         lambda v: f"{v / GIGA:.0f}"),
        ("Power (Watts)",
         lambda s: s.power.tdp_watts, lambda v: f"{v:.0f}"),
    ]
    rows: List[Tuple[str, ...]] = []
    for label, extract, fmt in metrics:
        if extract is None:  # categorical (HBM type): no ratio
            rows.append((label, *[s.memory.hbm_type for s in specs], "-"))
            continue
        values = [extract(s) for s in specs]
        rows.append((label, *[fmt(v) for v in values], ratio(values)))
    return rows
