"""Gaudi-2 Matrix Multiplication Engine (MME) model.

The MME is modelled as a pool of ``2 x 256 x 256`` MAC units that the
graph compiler reshapes at kernel-launch time into one of a fixed set of
output-stationary geometries (Section 2.1 and Figure 6(b) of the
paper).  Figure 7(a)'s reverse engineering shows two families:

* *full-array* geometries that use all 131,072 MACs -- the native
  ``256x256x2`` pair plus merged shapes such as ``512x256`` and
  ``1024x128``; and
* *power-gated* geometries (gray in Figure 7(a)) that activate only a
  subset of the array for small GEMMs, trading peak throughput for
  energy.

The GEMM time model additionally applies a memory-bandwidth bound from
the SRAM-blocked tiling traffic (:func:`repro.hw.systolic.blocked_gemm_traffic`)
so tall-skinny "irregular" GEMMs come out memory bound, as in the
roofline of Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.memo import CostCache
from repro.hw.spec import DeviceSpec, DType, GAUDI2_SPEC
from repro.hw.systolic import (
    SystolicArray,
    SystolicGeometry,
    best_geometry,
    blocked_gemm_traffic,
)

#: Geometry set recovered from Figure 7(a).  Full-array shapes first,
#: then the power-gated subsets used for small GEMMs.
DEFAULT_GEOMETRIES: Sequence[SystolicGeometry] = (
    SystolicGeometry(256, 256, 2),
    SystolicGeometry(512, 256, 1),
    SystolicGeometry(256, 512, 1),
    SystolicGeometry(1024, 128, 1),
    SystolicGeometry(128, 1024, 1),
    SystolicGeometry(2048, 64, 1),
    SystolicGeometry(64, 2048, 1),
    SystolicGeometry(4096, 32, 1),
    SystolicGeometry(32, 4096, 1),
    # Power-gated subsets (gray configurations in Figure 7(a)).
    SystolicGeometry(256, 256, 1),
    SystolicGeometry(512, 128, 1),
    SystolicGeometry(128, 512, 1),
    SystolicGeometry(128, 256, 1),
    SystolicGeometry(256, 128, 1),
    SystolicGeometry(128, 128, 1),
    SystolicGeometry(64, 128, 1),
    SystolicGeometry(128, 64, 1),
    SystolicGeometry(64, 64, 1),
)

#: Fixed pipeline/dispatch efficiency of the MME datapath; calibrated to
#: the 99.3 % peak utilization the paper measures at M=K=N=8192.
MME_PIPELINE_EFFICIENCY = 0.997


@dataclass(frozen=True)
class MmeConfig:
    """The configuration the compiler chose for one GEMM."""

    geometry: SystolicGeometry
    compute_time: float
    memory_time: float

    @property
    def time(self) -> float:
        return max(self.compute_time, self.memory_time)

    @property
    def memory_bound(self) -> bool:
        return self.memory_time > self.compute_time

    @property
    def power_gated(self) -> bool:
        return self.geometry.active_macs < GAUDI2_SPEC.matrix.total_macs


@dataclass(frozen=True)
class GemmEstimate:
    """Performance estimate for one GEMM execution."""

    m: int
    k: int
    n: int
    dtype: DType
    time: float
    achieved_flops: float
    utilization: float
    config_label: str
    memory_bound: bool
    active_mac_fraction: float


class MmeModel:
    """Performance model of the reconfigurable Gaudi-2 MME."""

    def __init__(
        self,
        spec: DeviceSpec = GAUDI2_SPEC,
        geometries: Sequence[SystolicGeometry] = DEFAULT_GEOMETRIES,
        configurable: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self._configurable = (
            spec.matrix.configurable if configurable is None else configurable
        )
        if self._configurable:
            self.geometries: List[SystolicGeometry] = list(geometries)
        else:
            # The Figure 7(c) baseline: a fixed, non-configurable
            # 256x256x2 output-stationary array with the same peak.
            self.geometries = [SystolicGeometry(256, 256, 2)]
        # The geometry search dominates the simulator's wall time; its
        # result depends only on the shape key and this model's fixed
        # geometry set, so it memoizes cleanly.
        self._config_cache = CostCache(f"mme.select_config[{spec.name}]", maxsize=8192)

    # ------------------------------------------------------------------
    def select_config(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> MmeConfig:
        """Choose the geometry the graph compiler would pick.

        The compiler minimizes compute cycles, breaking ties toward the
        configuration with fewer active MACs (power gating).
        """
        key = (m, k, n, dtype)
        config = self._config_cache.get(key)
        if config is None:
            config = self._select_config_uncached(m, k, n, dtype)
            self._config_cache.put(key, config)
        return config

    def _select_config_uncached(self, m: int, k: int, n: int, dtype: DType) -> MmeConfig:
        geo, timing = best_geometry(self.geometries, m, k, n)
        clock = self.spec.matrix.clock_hz
        dtype_scale = self.spec.matrix.peak(dtype) / self.spec.matrix.peak(DType.BF16)
        compute_time = timing.cycles / (clock * MME_PIPELINE_EFFICIENCY * dtype_scale)
        traffic = blocked_gemm_traffic(
            m, k, n, dtype.itemsize, self.spec.memory.sram_bytes
        )
        mem_bw = self.spec.memory.bandwidth * self.spec.memory.stream_efficiency
        memory_time = traffic / mem_bw
        return MmeConfig(geometry=geo, compute_time=compute_time, memory_time=memory_time)

    def gemm(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> GemmEstimate:
        """Estimate one GEMM's execution time and utilization."""
        config = self.select_config(m, k, n, dtype)
        flops = 2.0 * m * k * n
        time = config.time
        achieved = flops / time
        utilization = achieved / self.spec.matrix.peak(dtype)
        return GemmEstimate(
            m=m,
            k=k,
            n=n,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=utilization,
            config_label=config.geometry.label,
            memory_bound=config.memory_bound,
            active_mac_fraction=(
                config.geometry.active_macs / self.spec.matrix.total_macs
            ),
        )

    def gemm_time(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> float:
        return self.gemm(m, k, n, dtype).time

    # ------------------------------------------------------------------
    def fixed_array_utilization(self, m: int, k: int, n: int) -> float:
        """Utilization of the non-configurable baseline (Figure 7(c)).

        Same peak FLOPS, but the geometry is pinned to ``256x256x2``.
        """
        array = SystolicArray(SystolicGeometry(256, 256, 2), self.spec.matrix.clock_hz)
        return (
            array.utilization(m, k, n, self.spec.matrix.total_macs)
            * MME_PIPELINE_EFFICIENCY
        )

    def batched_gemm(
        self, batch: int, m: int, k: int, n: int, dtype: DType = DType.BF16
    ) -> GemmEstimate:
        """Batched GEMM: independent problems fill the tile pipeline.

        The graph compiler flattens a batched GEMM into a stream of
        tiles, so the fill cost is paid once and M is effectively
        ``batch * m`` for utilization purposes (each problem still tiles
        separately in M).
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        config = self.select_config(m, k, n, dtype)
        geo = config.geometry
        tiles = batch * math.ceil(m / geo.height) * math.ceil(n / geo.width)
        passes = math.ceil(tiles / geo.engines)
        cycles = passes * k + geo.height + geo.width
        clock = self.spec.matrix.clock_hz
        dtype_scale = self.spec.matrix.peak(dtype) / self.spec.matrix.peak(DType.BF16)
        compute_time = cycles / (clock * MME_PIPELINE_EFFICIENCY * dtype_scale)
        traffic = batch * blocked_gemm_traffic(
            m, k, n, dtype.itemsize, self.spec.memory.sram_bytes
        )
        mem_bw = self.spec.memory.bandwidth * self.spec.memory.stream_efficiency
        time = max(compute_time, traffic / mem_bw)
        flops = 2.0 * batch * m * k * n
        achieved = flops / time
        return GemmEstimate(
            m=m,
            k=k,
            n=n,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=achieved / self.spec.matrix.peak(dtype),
            config_label=geo.label,
            memory_bound=traffic / mem_bw > compute_time,
            active_mac_fraction=geo.active_macs / self.spec.matrix.total_macs,
        )
