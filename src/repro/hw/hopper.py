"""H100 (Hopper) backend: tile-based tensor-core GEMM.

The third contender of the N-way comparison.  The spec sheet follows
the public H100 SXM5 numbers, and the GEMM model follows the tile-based
execution model evaluated in "Evaluating CUDA Tile for AI Workloads on
Hopper and Blackwell GPUs" (PAPERS.md): a GEMM is a grid of *tiles*
processed by warpgroup MMA instructions, with three Hopper-specific
departures from the A100's CTA-wave model
(:mod:`repro.hw.tensorcore`):

* **TMA bulk copies** -- the Tensor Memory Accelerator streams operand
  tiles asynchronously in 128 B boxes, hiding most of the per-tile
  prologue (a far smaller fixed tile overhead) and keeping skinny
  GEMMs close to streaming DRAM efficiency;
* **thread-block clusters** -- pairs of tiles share operand fetches
  through distributed shared memory, shaving a fixed fraction of the
  off-chip operand traffic;
* **stream-K tail scheduling** -- the persistent tile scheduler splits
  the K-dimension of the tail tiles across otherwise-idle SMs, so the
  last partial wave costs ``rem/SMs`` of a wave rather than a full
  one.  This softens the wave-quantization cliff that governs A100
  utilization at awkward shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.hw.device import Device, MatmulResult
from repro.hw.spec import (
    GIGA,
    GIB,
    MIB,
    TERA,
    DeviceSpec,
    DType,
    InterconnectSpec,
    MatrixEngineSpec,
    MemorySpec,
    PowerSpec,
    VectorEngineSpec,
    register_spec,
)
from repro.hw.systolic import blocked_gemm_traffic

#: Warpgroup-MMA tile shapes the tile compiler chooses from,
#: ``(tile_m, tile_n)`` -- the Hopper CUTLASS/CUDA-Tile kernel set.
DEFAULT_TILE_SHAPES: Sequence[Tuple[int, int]] = (
    (128, 256),
    (256, 128),
    (256, 64),
    (64, 256),
    (128, 128),
    (128, 64),
    (64, 128),
    (64, 64),
)

#: TMA box granularity, bytes (the async bulk-copy unit).
TMA_BOX_BYTES = 128

#: Tile pipeline efficiency: wgmma issue + epilogue on top of TMA
#: prefetch; Hopper's async pipeline sits a couple of points above the
#: A100's 0.91 in the CUDA-Tile measurements.
TILE_PIPELINE_EFFICIENCY = 0.93

#: MACs one SM retires per clock through warpgroup MMA (BF16).
_MACS_PER_SM = 2048

#: Fixed per-tile cycles not hidden by TMA (mainbody entry, epilogue).
_TILE_OVERHEAD_CYCLES = 40

#: Extra cycles of the stream-K fixup reduction when a tail exists.
_STREAMK_FIXUP_CYCLES = 24

#: Fraction of operand traffic a cluster of two tiles shares through
#: distributed shared memory.
_CLUSTER_REUSE = 0.12

#: DRAM-efficiency derate for skinny (GEMV-like) shapes; TMA keeps the
#: penalty well below the A100's 0.88 factor.
_SKINNY_EFFICIENCY = 0.95


def _h100_spec() -> DeviceSpec:
    sm_count = 132
    tc_peak_bf16 = 989.5 * TERA
    macs = sm_count * _MACS_PER_SM
    sm_clock = tc_peak_bf16 / (2.0 * macs)
    simd_peak_fp32 = 67 * TERA
    return DeviceSpec(
        name="H100",
        vendor="NVIDIA",
        process_node="TSMC 4N",
        matrix=MatrixEngineSpec(
            name="Tensor Cores (Hopper)",
            # FP32 matmuls route through the TF32 tensor-core path.
            peak_flops={
                DType.BF16: tc_peak_bf16,
                DType.FP16: tc_peak_bf16,
                DType.FP32: 494.7 * TERA,
                DType.INT8: 2.0 * tc_peak_bf16,
            },
            total_macs=macs,
            clock_hz=sm_clock,
            configurable=False,
        ),
        vector=VectorEngineSpec(
            name="SIMD Cores (Hopper)",
            peak_flops={
                DType.BF16: 2.0 * simd_peak_fp32,
                DType.FP16: 2.0 * simd_peak_fp32,
                DType.FP32: simd_peak_fp32,
                DType.INT8: 4.0 * simd_peak_fp32,
            },
            num_cores=sm_count,
            clock_hz=sm_clock,
            simd_width_bits=2048,
            instruction_latency=4,
            # TMA-fed SMs sustain more streaming bandwidth per core than
            # A100's LDG path; ~30 SMs saturate HBM3.
            per_core_stream_bw=110 * GIGA,
            max_outstanding_loads=384,
            random_load_latency=450,
        ),
        memory=MemorySpec(
            hbm_type="HBM3",
            capacity_bytes=80 * GIB,
            bandwidth=3.35 * TERA,
            min_access_bytes=32,
            stream_efficiency=0.92,
            stream_conflict_penalty=0.03,
            random_efficiency=0.72,
            # More LSU/TMA concurrency than A100: transaction-rate
            # limited only below ~64 B.
            max_random_transactions=20e9,
            sram_bytes=50 * MIB,
            sram_is_cache=True,
            scatter_rmw=False,
        ),
        interconnect=InterconnectSpec(
            kind="switch",
            per_device_bandwidth=450 * GIGA,
            links_per_pair=0,
            link_bandwidth=25 * GIGA,
            base_latency=1.3e-6,
            protocol_efficiency=0.78,
        ),
        power=PowerSpec(
            tdp_watts=700.0,
            idle_watts=100.0,
            matrix_watts=300.0,
            vector_watts=60.0,
            memory_watts=180.0,
            comm_watts=60.0,
            matrix_power_gating=False,
        ),
        kernel_launch_overhead=4e-6,
        graph_dispatch_overhead=10e-6,
    )


H100_SPEC: DeviceSpec = _h100_spec()
register_spec("h100", H100_SPEC)


@dataclass(frozen=True)
class TileEstimate:
    """Performance estimate of one GEMM under the tile model."""

    m: int
    k: int
    n: int
    dtype: DType
    time: float
    achieved_flops: float
    utilization: float
    tile: Tuple[int, int]
    #: Fractional waves: full waves plus the stream-K smoothed tail.
    waves: float
    memory_bound: bool


class TileGemmModel:
    """Tile-based tensor-core GEMM model (Hopper / CUDA Tile)."""

    def __init__(
        self,
        spec: DeviceSpec = H100_SPEC,
        tile_shapes: Sequence[Tuple[int, int]] = DEFAULT_TILE_SHAPES,
    ) -> None:
        self.spec = spec
        self.tile_shapes = list(tile_shapes)
        self.sm_count = spec.vector.num_cores
        self.clock_hz = spec.matrix.clock_hz

    # ------------------------------------------------------------------
    def _tile_cycles(self, tile: Tuple[int, int], k: int) -> float:
        tm, tn = tile
        return (tm * tn * k) / _MACS_PER_SM + _TILE_OVERHEAD_CYCLES

    def _grid_cycles(self, tile: Tuple[int, int], tiles: int, k: int) -> float:
        """Cycles for ``tiles`` output tiles under stream-K scheduling:
        full waves plus a fractional tail (plus its fixup reduction)."""
        full, rem = divmod(tiles, self.sm_count)
        waves = full + rem / self.sm_count
        cycles = waves * self._tile_cycles(tile, k)
        if rem:
            cycles += _STREAMK_FIXUP_CYCLES
        return cycles

    def _compute_time(
        self, tile: Tuple[int, int], m: int, k: int, n: int, batch: int = 1
    ) -> float:
        tm, tn = tile
        tiles = batch * math.ceil(m / tm) * math.ceil(n / tn)
        cycles = self._grid_cycles(tile, tiles, k)
        return cycles / (self.clock_hz * TILE_PIPELINE_EFFICIENCY)

    def _memory_time(self, m: int, k: int, n: int, dtype: DType) -> float:
        traffic = blocked_gemm_traffic(
            m, k, n, dtype.itemsize, self.spec.memory.sram_bytes
        )
        # Cluster pairs share operand fetches through distributed
        # shared memory; TMA moves whole boxes either way.
        traffic = max(traffic * (1.0 - _CLUSTER_REUSE), TMA_BOX_BYTES)
        efficiency = self.spec.memory.stream_efficiency
        if min(m, n) < 128:
            efficiency *= _SKINNY_EFFICIENCY
        return traffic / (self.spec.memory.bandwidth * efficiency)

    # ------------------------------------------------------------------
    def select_tile(self, m: int, k: int, n: int) -> Tuple[int, int]:
        """The tile shape the tile compiler's heuristic would pick."""
        return min(
            self.tile_shapes,
            key=lambda tile: self._compute_time(tile, m, k, n),
        )

    def _estimate(
        self, batch: int, m: int, k: int, n: int, dtype: DType
    ) -> TileEstimate:
        tile = self.select_tile(m, k, n)
        dtype_scale = self.spec.matrix.peak(dtype) / self.spec.matrix.peak(DType.BF16)
        compute_time = self._compute_time(tile, m, k, n, batch) / dtype_scale
        memory_time = batch * self._memory_time(m, k, n, dtype)
        time = max(compute_time, memory_time)
        flops = 2.0 * batch * m * k * n
        achieved = flops / time
        tm, tn = tile
        tiles = batch * math.ceil(m / tm) * math.ceil(n / tn)
        full, rem = divmod(tiles, self.sm_count)
        return TileEstimate(
            m=m,
            k=k,
            n=n,
            dtype=dtype,
            time=time,
            achieved_flops=achieved,
            utilization=achieved / self.spec.matrix.peak(dtype),
            tile=tile,
            waves=full + rem / self.sm_count,
            memory_bound=memory_time > compute_time,
        )

    def gemm(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> TileEstimate:
        if min(m, k, n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
        return self._estimate(1, m, k, n, dtype)

    def gemm_time(self, m: int, k: int, n: int, dtype: DType = DType.BF16) -> float:
        return self.gemm(m, k, n, dtype).time

    def batched_gemm(
        self, batch: int, m: int, k: int, n: int, dtype: DType = DType.BF16
    ) -> TileEstimate:
        """Batched GEMM: the batch dimension extends the tile grid."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        if min(m, k, n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
        return self._estimate(batch, m, k, n, dtype)


class H100Device(Device):
    """NVIDIA H100: tile-scheduled Tensor Cores + 132 SMs."""

    family = "cuda"
    decode_attention = "paged-cuda"
    smi_style = "nvidia-smi"
    #: FlashAttention-3 (TMA + warp specialization) sustains a larger
    #: fraction of peak than FA-2 on A100 (0.55).
    attention_efficiency = 0.62

    def __init__(self, spec: DeviceSpec = H100_SPEC) -> None:
        super().__init__(spec)
        self.tile_gemm = TileGemmModel(spec)

    def _gemm_uncached(
        self, m: int, k: int, n: int, dtype: DType, batch: int
    ) -> MatmulResult:
        estimate = (
            self.tile_gemm.gemm(m, k, n, dtype)
            if batch == 1
            else self.tile_gemm.batched_gemm(batch, m, k, n, dtype)
        )
        tm, tn = estimate.tile
        return MatmulResult(
            m=m,
            k=k,
            n=n,
            batch=batch,
            dtype=dtype,
            time=estimate.time,
            achieved_flops=estimate.achieved_flops,
            utilization=estimate.utilization,
            memory_bound=estimate.memory_bound,
            active_mac_fraction=1.0,
            config_label=f"Tile {tm}x{tn}+TMA, {estimate.waves:.2f} waves",
        )
