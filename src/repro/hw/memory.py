"""HBM memory-system model.

Two behaviours from the paper drive everything downstream:

* **Streaming accesses** run near peak DRAM efficiency, slightly
  degraded per extra concurrent stream (row-buffer conflicts) -- this
  sets the STREAM saturation levels of Figure 8(c).
* **Random accesses** (vector gather/scatter, Figure 9) pay two
  penalties: *granularity waste* (a ``g``-byte access still moves
  ``ceil(g / min_access)`` full granules -- 256 B on Gaudi-2, 32 B
  sectors on A100) and a *transaction-rate ceiling* (row activations /
  address handling), which is what limits the A100 below what pure
  sector arithmetic would predict for tiny vectors.

On A100 the 40 MB L2 acts as a transparent cache, so a random-access
working set that fits in it is served at L2 bandwidth; Gaudi-2's 48 MB
SRAM is compiler-managed scratchpad and gives no such free locality.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.hw.spec import DeviceSpec, MemorySpec

#: L2-hit bandwidth multiplier over DRAM bandwidth (A100's L2 delivers
#: roughly 2.5x HBM bandwidth for hit traffic).
_L2_BANDWIDTH_FACTOR = 2.5


class AccessPattern(enum.Enum):
    STREAM = "stream"
    RANDOM = "random"


@dataclass(frozen=True)
class TrafficEstimate:
    """Result of a memory traffic estimate."""

    useful_bytes: float
    moved_bytes: float
    time: float

    @property
    def achieved_bandwidth(self) -> float:
        return self.useful_bytes / self.time if self.time > 0 else 0.0


class HbmModel:
    """Bandwidth model for one device's HBM subsystem."""

    def __init__(self, spec: MemorySpec) -> None:
        self.spec = spec

    @classmethod
    def for_device(cls, device_spec: DeviceSpec) -> "HbmModel":
        return cls(device_spec.memory)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream_efficiency(self, num_streams: int = 2) -> float:
        """DRAM efficiency for ``num_streams`` concurrent linear streams."""
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        penalty = self.spec.stream_conflict_penalty * max(0, num_streams - 2)
        return max(0.35, self.spec.stream_efficiency - penalty)

    def stream_bandwidth(self, num_streams: int = 2) -> float:
        """Achievable bandwidth (bytes/s) for streaming access."""
        return self.spec.bandwidth * self.stream_efficiency(num_streams)

    def stream_time(self, useful_bytes: float, num_streams: int = 2) -> float:
        """Time to move ``useful_bytes`` with streaming access."""
        return useful_bytes / self.stream_bandwidth(num_streams)

    # ------------------------------------------------------------------
    # Random (gather / scatter)
    # ------------------------------------------------------------------
    def _granule_bytes(self, access_bytes: int) -> int:
        granule = self.spec.min_access_bytes
        return granule * math.ceil(access_bytes / granule)

    def granularity_efficiency(self, access_bytes: int) -> float:
        """Fraction of moved bytes that are useful for one access."""
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        return access_bytes / self._granule_bytes(access_bytes)

    def random_bandwidth(
        self,
        access_bytes: int,
        is_write: bool = False,
        working_set_bytes: float = float("inf"),
    ) -> float:
        """Useful bandwidth (bytes/s) for random accesses of a given size.

        ``working_set_bytes`` enables the L2-resident fast path on
        devices whose SRAM is a transparent cache.
        """
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        moved_per_access = self._granule_bytes(access_bytes)
        if is_write and self.spec.scatter_rmw and access_bytes < self.spec.min_access_bytes:
            # Sub-granule scatter: read-modify-write doubles the traffic.
            moved_per_access *= 2
        dram_bw = self.spec.bandwidth * self.spec.random_efficiency
        if self.spec.sram_is_cache and working_set_bytes <= self.spec.sram_bytes:
            dram_bw = self.spec.bandwidth * _L2_BANDWIDTH_FACTOR
        bw_limited = dram_bw * (access_bytes / moved_per_access)
        rate_limited = self.spec.max_random_transactions * access_bytes
        return min(bw_limited, rate_limited)

    def random_utilization(
        self,
        access_bytes: int,
        is_write: bool = False,
        working_set_bytes: float = float("inf"),
    ) -> float:
        """Useful bandwidth as a fraction of peak HBM bandwidth."""
        bw = self.random_bandwidth(access_bytes, is_write, working_set_bytes)
        return bw / self.spec.bandwidth

    def gather_time(
        self,
        num_accesses: int,
        access_bytes: int,
        working_set_bytes: float = float("inf"),
    ) -> float:
        """Time for ``num_accesses`` random reads of ``access_bytes``."""
        bw = self.random_bandwidth(access_bytes, False, working_set_bytes)
        return num_accesses * access_bytes / bw

    def scatter_time(
        self,
        num_accesses: int,
        access_bytes: int,
        working_set_bytes: float = float("inf"),
    ) -> float:
        """Time for ``num_accesses`` random writes of ``access_bytes``."""
        bw = self.random_bandwidth(access_bytes, True, working_set_bytes)
        return num_accesses * access_bytes / bw

    # ------------------------------------------------------------------
    def estimate(
        self,
        pattern: AccessPattern,
        useful_bytes: float,
        access_bytes: int = 0,
        num_streams: int = 2,
        is_write: bool = False,
        working_set_bytes: float = float("inf"),
    ) -> TrafficEstimate:
        """Unified entry point returning a full :class:`TrafficEstimate`."""
        if pattern is AccessPattern.STREAM:
            time = self.stream_time(useful_bytes, num_streams)
            return TrafficEstimate(useful_bytes, useful_bytes, time)
        if access_bytes <= 0:
            raise ValueError("random access requires access_bytes > 0")
        num = useful_bytes / access_bytes
        moved = num * self._granule_bytes(access_bytes)
        bw = self.random_bandwidth(access_bytes, is_write, working_set_bytes)
        return TrafficEstimate(useful_bytes, moved, useful_bytes / bw)
