"""Kernel-construction DSL for TPC-C-style kernels.

The builder mirrors how a TPC-C programmer writes the inner loop of a
kernel (Figure 2(c) of the paper): vector loads from tensors, vector
arithmetic, vector stores, all inside a for-loop that may be unrolled
with ``#pragma unroll``.  Unrolling here does what the TPC compiler
does -- it replicates the body and renames registers so the copies are
independent -- and the renaming is bounded by the physical vector
register file, so extreme unroll factors reintroduce hazards instead of
helping.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.hw.spec import DType
from repro.tpc.isa import Instruction, Opcode
from repro.tpc.kernel import TpcKernel

#: Architectural vector register file size of one TPC.
VECTOR_REGISTER_FILE = 40

#: Maximum bytes one vector load/store instruction can move (the 2048-bit
#: vector datapath with 256-byte global access granularity).
MAX_ACCESS_BYTES = 256


def _schedule(annotated: List[Tuple[int, int, Instruction]]) -> List[Instruction]:
    """Static scheduling pass over the unrolled body.

    The TPC compiler hoists independent loads of later unroll copies
    above earlier copies' dependent arithmetic and interleaves the
    copies' dependency chains, which is what turns unrolling into
    instruction- and memory-level parallelism on an in-order machine.
    Modelled as a phase sort (address-independent loads first,
    arithmetic second, stores last) with round-robin interleaving
    across unroll copies inside each phase, so each copy's internal
    dependency order is preserved while independent chains overlap.

    ``annotated`` entries are ``(copy_index, seq_within_copy, instr)``.
    """

    def phase(instr: Instruction) -> int:
        if instr.is_load and not instr.sources:
            return 0
        if instr.is_store:
            return 2
        return 1

    return [
        instr
        for _, _, instr in sorted(
            annotated, key=lambda item: (phase(item[2]), item[1], item[0])
        )
    ]


class TpcKernelBuilder:
    """Builds the unrolled instruction body of a TPC kernel."""

    def __init__(
        self,
        name: str,
        dtype: DType = DType.BF16,
        vector_registers: int = VECTOR_REGISTER_FILE,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.vector_registers = vector_registers
        self._body: List[Instruction] = []
        self._next_register = 0
        self._tensors: set[str] = set()

    # -- register allocation -------------------------------------------
    def _alloc_register(self) -> str:
        # Past the physical register file the allocator wraps around,
        # reintroducing the WAR/WAW hazards renaming was hiding.
        reg = f"v{self._next_register % self.vector_registers}"
        self._next_register += 1
        return reg

    # -- emission primitives --------------------------------------------
    def load_tensor(self, tensor: str, access_bytes: int = MAX_ACCESS_BYTES) -> str:
        """``v_<t>_ld_tnsr``: streaming vector load; returns the register.

        Loads wider than 256 bytes are split into multiple instructions,
        exactly as the TPC ISA requires.
        """
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        self._tensors.add(tensor)
        reg = self._alloc_register()
        remaining = access_bytes
        first = True
        while remaining > 0:
            chunk = min(remaining, MAX_ACCESS_BYTES)
            self._body.append(
                Instruction(
                    opcode=Opcode.LD_TNSR,
                    dest=reg if first else self._alloc_register(),
                    sources=(),
                    dtype=self.dtype,
                    access_bytes=chunk,
                    tensor=tensor,
                )
            )
            remaining -= chunk
            first = False
        return reg

    def gather(self, tensor: str, access_bytes: int, address: Optional[str] = None) -> None:
        """``ld_g``: random-address load into vector local memory.

        The destination is local memory rather than a register, so the
        load creates no register dependency and many gathers can be in
        flight at once -- up to the TPC's outstanding-load window.
        """
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        self._tensors.add(tensor)
        remaining = access_bytes
        while remaining > 0:
            chunk = min(remaining, MAX_ACCESS_BYTES)
            self._body.append(
                Instruction(
                    opcode=Opcode.LD_G,
                    dest=None,
                    sources=(address,) if address else (),
                    dtype=self.dtype,
                    access_bytes=chunk,
                    tensor=tensor,
                )
            )
            remaining -= chunk

    def vec(self, opcode: Opcode, *sources: str) -> str:
        """Vector ALU instruction; returns the destination register."""
        dest = self._alloc_register()
        self._body.append(
            Instruction(opcode=opcode, dest=dest, sources=tuple(sources), dtype=self.dtype)
        )
        return dest

    def vec_into(self, opcode: Opcode, dest: str, *sources: str) -> str:
        """Vector ALU instruction writing an existing register
        (e.g. a MAC accumulator)."""
        self._body.append(
            Instruction(opcode=opcode, dest=dest, sources=tuple(sources), dtype=self.dtype)
        )
        return dest

    def scalar(self, opcode: Opcode, *sources: str) -> str:
        """Scalar-slot ALU instruction (address/index bookkeeping)."""
        dest = self._alloc_register()
        self._body.append(
            Instruction(opcode=opcode, dest=dest, sources=tuple(sources), dtype=self.dtype)
        )
        return dest

    def store_tensor(
        self, tensor: str, source: str, access_bytes: int = MAX_ACCESS_BYTES
    ) -> None:
        """``v_<t>_st_tnsr``: streaming vector store."""
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        self._tensors.add(tensor)
        remaining = access_bytes
        while remaining > 0:
            chunk = min(remaining, MAX_ACCESS_BYTES)
            self._body.append(
                Instruction(
                    opcode=Opcode.ST_TNSR,
                    dest=None,
                    sources=(source,),
                    dtype=self.dtype,
                    access_bytes=chunk,
                    tensor=tensor,
                )
            )
            remaining -= chunk

    def scatter(self, tensor: str, source: str, access_bytes: int) -> None:
        """``st_g``: random-address store."""
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        self._tensors.add(tensor)
        remaining = access_bytes
        while remaining > 0:
            chunk = min(remaining, MAX_ACCESS_BYTES)
            self._body.append(
                Instruction(
                    opcode=Opcode.ST_G,
                    dest=None,
                    sources=(source,),
                    dtype=self.dtype,
                    access_bytes=chunk,
                    tensor=tensor,
                )
            )
            remaining -= chunk

    # -- loop construction ----------------------------------------------
    def build_loop(
        self,
        body_fn: Callable[["TpcKernelBuilder"], None],
        iterations: int,
        unroll: int = 1,
        functional: Optional[Callable[..., object]] = None,
    ) -> TpcKernel:
        """Unroll ``body_fn`` ``unroll`` times and close the loop.

        ``iterations`` is the number of *logical* iterations one TPC
        executes; the built kernel's body covers ``unroll`` of them per
        trip, so the trip count is ``ceil(iterations / unroll)``.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if unroll <= 0:
            raise ValueError("unroll must be positive")
        self._body = []
        self._next_register = 0
        annotated: List[Tuple[int, int, Instruction]] = []
        for copy_index in range(unroll):
            start = len(self._body)
            body_fn(self)
            for seq, instr in enumerate(self._body[start:]):
                annotated.append((copy_index, seq, instr))
        self._body = _schedule(annotated)
        self._body.append(Instruction(opcode=Opcode.LOOP_END, dest=None, latency=1))
        trips = math.ceil(iterations / unroll)
        return TpcKernel(
            name=self.name,
            body=list(self._body),
            trips=trips,
            unroll=unroll,
            dtype=self.dtype,
            num_streams=max(1, len(self._tensors)),
            functional=functional,
        )
