"""In-order VLIW scoreboard pipeline for the TPC.

The TPC issues instructions in program order, one per issue slot per
cycle (load / store / vector / scalar), with a 4-cycle architectural
result latency.  Because issue is in order and registers are a finite
resource, a loop that reuses the same registers every iteration
serializes on write-after-read hazards -- which is precisely why the
paper's best practice #2 (manual loop unrolling with register renaming)
matters.  The simulator enforces:

* RAW: an instruction issues only when its sources are ready;
* WAR: a write to ``r`` issues only after earlier readers of ``r`` have
  issued;
* WAW: writes to the same register issue in order;
* slot structural hazards: one instruction per slot per cycle;
* in-order issue: instruction *i* never issues before *i - 1*;
* a bounded number of outstanding random (gather) loads, modelling the
  TPC's memory-level-parallelism window;
* a taken-branch penalty at each loop boundary.

Loops are simulated for a warm-up prefix, then the steady-state
cycles-per-iteration is measured and extrapolated, so 24-million-element
STREAM loops cost microseconds to evaluate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.memo import CostCache
from repro.hw.spec import GAUDI2_SPEC, VectorEngineSpec
from repro.tpc.isa import Instruction, MemoryKind, Opcode, Slot

#: Shared scoreboard-simulation memo: kernel bodies are frozen
#: hashable instruction tuples, and launchers are rebuilt per kernel
#: call, so the cache lives at module scope.  Keyed on the two spec
#: fields the scoreboard actually reads, not the (unhashable) spec.
_SIMULATE_CACHE = CostCache("tpc.pipeline", maxsize=2048)

#: Extra cycles a taken loop-closing branch costs before the next
#: iteration's first instruction can issue.
BRANCH_PENALTY = 1

#: Iterations simulated before measuring the steady state.
_WARMUP_ITERS = 16
#: Iterations over which the steady-state rate is measured.
_MEASURE_ITERS = 32


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating a kernel body on one TPC."""

    iterations: int
    total_cycles: float
    cycles_per_iteration: float
    #: Useful bytes touched per iteration (loads + stores).
    bytes_per_iteration: float
    #: Bytes actually moved per iteration after granularity round-up.
    moved_bytes_per_iteration: float
    flops_per_iteration: float
    instructions_per_iteration: int

    def time_seconds(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz

    @property
    def total_flops(self) -> float:
        return self.flops_per_iteration * self.iterations

    @property
    def total_bytes(self) -> float:
        return self.bytes_per_iteration * self.iterations

    @property
    def total_moved_bytes(self) -> float:
        return self.moved_bytes_per_iteration * self.iterations


class VliwPipeline:
    """Cycle simulator for one TPC executing a loop body."""

    def __init__(self, spec: VectorEngineSpec = GAUDI2_SPEC.vector) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def _simulate_exact(self, body: Sequence[Instruction], iterations: int) -> float:
        """Simulate ``iterations`` repeats of ``body``; returns cycles."""
        ready: Dict[str, int] = {}
        last_read: Dict[str, int] = {}
        last_write_issue: Dict[str, int] = {}
        slot_free: Dict[Slot, int] = {slot: 0 for slot in Slot}
        inflight_random: List[int] = []  # completion cycles of gather loads
        cycle = 0
        prev_issue = 0
        max_outstanding = self.spec.max_outstanding_loads
        random_latency = self.spec.random_load_latency
        # Hazard metadata is static per instruction; resolving the
        # slot/memory-kind enum properties once instead of every
        # iteration keeps the scoreboard loop on plain locals.
        decoded = [
            (
                instr.sources,
                instr.dest,
                instr.slot,
                instr.memory_kind is MemoryKind.RANDOM_LOAD,
                instr.latency,
                instr.opcode is Opcode.LOOP_END,
            )
            for instr in body
        ]
        for _ in range(iterations):
            for sources, dest, slot, is_random_load, latency, is_loop_end in decoded:
                earliest = prev_issue
                for src in sources:
                    earliest = max(earliest, ready.get(src, 0))
                if dest is not None:
                    earliest = max(earliest, last_read.get(dest, 0))
                    earliest = max(earliest, last_write_issue.get(dest, -1) + 1)
                earliest = max(earliest, slot_free[slot])
                if is_random_load:
                    inflight_random = [c for c in inflight_random if c > earliest]
                    while len(inflight_random) >= max_outstanding:
                        earliest = min(inflight_random)
                        inflight_random = [c for c in inflight_random if c > earliest]
                issue = earliest
                if is_random_load:
                    latency = random_latency
                    inflight_random.append(issue + latency)
                if dest is not None:
                    ready[dest] = issue + latency
                    last_write_issue[dest] = issue
                for src in sources:
                    last_read[src] = max(last_read.get(src, 0), issue)
                slot_free[slot] = issue + 1
                if is_loop_end:
                    issue += BRANCH_PENALTY
                prev_issue = issue
                cycle = max(cycle, issue + 1)
        return float(cycle)

    # ------------------------------------------------------------------
    def simulate(self, body: Sequence[Instruction], iterations: int) -> PipelineResult:
        """Simulate a loop of ``iterations`` copies of ``body``.

        ``body`` is one loop iteration *after* unrolling, i.e. the
        instruction sequence between two backward branches.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if not body:
            raise ValueError("body must contain at least one instruction")
        key = (
            self.spec.max_outstanding_loads,
            self.spec.random_load_latency,
            tuple(body),
            iterations,
        )
        cached = _SIMULATE_CACHE.get(key)
        if cached is not None:
            return cached
        # The warm-up must outlast the outstanding-gather window, or a
        # gather loop would be extrapolated from its pre-saturation rate.
        gathers_per_trip = sum(
            1 for i in body if i.memory_kind is MemoryKind.RANDOM_LOAD
        )
        warmup = _WARMUP_ITERS
        if gathers_per_trip:
            window_trips = -(-self.spec.max_outstanding_loads // gathers_per_trip)
            warmup = max(warmup, window_trips + 8)
        sample = warmup + _MEASURE_ITERS
        if iterations <= sample:
            total = self._simulate_exact(body, iterations)
        else:
            warm = self._simulate_exact(body, warmup)
            warm_plus = self._simulate_exact(body, sample)
            steady = (warm_plus - warm) / _MEASURE_ITERS
            total = warm_plus + steady * (iterations - sample)

        useful = 0.0
        moved = 0.0
        flops = 0.0
        granule = GAUDI2_SPEC.memory.min_access_bytes
        for instr in body:
            flops += instr.flops
            if instr.access_bytes > 0 and instr.memory_kind is not MemoryKind.NONE:
                useful += instr.access_bytes
                moved += granule * math.ceil(instr.access_bytes / granule)
        result = PipelineResult(
            iterations=iterations,
            total_cycles=total,
            cycles_per_iteration=total / iterations,
            bytes_per_iteration=useful,
            moved_bytes_per_iteration=moved,
            flops_per_iteration=flops,
            instructions_per_iteration=len(body),
        )
        _SIMULATE_CACHE.put(key, result)
        return result
