"""Per-TPC local memories.

Each TPC owns a 1 KB scalar local memory (4-byte aligned accesses) and
an 80 KB vector local memory (128/256-byte accesses), private to the
core (Section 2.1).  The embedding operators of Section 4.1 stage
gathered vectors here, so the allocator enforces capacity and alignment
the way the real SDK does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

SCALAR_LOCAL_BYTES = 1024
VECTOR_LOCAL_BYTES = 80 * 1024
SCALAR_ALIGN = 4
VECTOR_ALIGN = 128


class LocalMemoryError(RuntimeError):
    """Raised on over-allocation or misaligned access."""


@dataclass
class _Allocation:
    offset: int
    size: int


class LocalMemory:
    """A bump allocator over one TPC-local memory bank."""

    def __init__(self, capacity: int, alignment: int, name: str) -> None:
        if capacity <= 0 or alignment <= 0:
            raise ValueError("capacity and alignment must be positive")
        self.capacity = capacity
        self.alignment = alignment
        self.name = name
        self._cursor = 0
        self._allocations: Dict[str, _Allocation] = {}

    @classmethod
    def scalar(cls) -> "LocalMemory":
        return cls(SCALAR_LOCAL_BYTES, SCALAR_ALIGN, "scalar")

    @classmethod
    def vector(cls) -> "LocalMemory":
        return cls(VECTOR_LOCAL_BYTES, VECTOR_ALIGN, "vector")

    @property
    def used(self) -> int:
        return self._cursor

    @property
    def free(self) -> int:
        return self.capacity - self._cursor

    def allocate(self, label: str, size: int) -> int:
        """Reserve ``size`` bytes; returns the byte offset."""
        if size <= 0:
            raise LocalMemoryError(f"{self.name}: allocation size must be positive")
        if label in self._allocations:
            raise LocalMemoryError(f"{self.name}: label {label!r} already allocated")
        aligned = -(-size // self.alignment) * self.alignment
        if self._cursor + aligned > self.capacity:
            raise LocalMemoryError(
                f"{self.name} local memory overflow: need {aligned} bytes, "
                f"only {self.free} of {self.capacity} free"
            )
        offset = self._cursor
        self._cursor += aligned
        self._allocations[label] = _Allocation(offset=offset, size=size)
        return offset

    def offset_of(self, label: str) -> int:
        try:
            return self._allocations[label].offset
        except KeyError:
            raise LocalMemoryError(f"{self.name}: unknown allocation {label!r}") from None

    def check_access(self, label: str, offset: int, size: int) -> None:
        """Validate an access against an allocation's bounds and alignment."""
        alloc = self._allocations.get(label)
        if alloc is None:
            raise LocalMemoryError(f"{self.name}: unknown allocation {label!r}")
        if offset % self.alignment != 0:
            raise LocalMemoryError(
                f"{self.name}: access at offset {offset} violates "
                f"{self.alignment}-byte alignment"
            )
        if offset < 0 or offset + size > alloc.size:
            raise LocalMemoryError(
                f"{self.name}: access [{offset}, {offset + size}) outside "
                f"allocation {label!r} of {alloc.size} bytes"
            )

    def reset(self) -> None:
        self._cursor = 0
        self._allocations.clear()
