"""The TPC index space (Figure 3 of the paper).

A TPC workload is partitioned by an *index space* of up to five
dimensions.  Each member of the index space is an indivisible unit of
work executed by a single TPC; the runtime distributes members across
the 24 TPCs.  This module models the partitioning arithmetic.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

MAX_DIMS = 5


@dataclass(frozen=True)
class IndexSpaceMember:
    """One indivisible unit of work: a coordinate in the index space."""

    coords: Tuple[int, ...]

    def __getitem__(self, dim: int) -> int:
        return self.coords[dim]


class IndexSpace:
    """An up-to-5-dimensional index space.

    ``sizes`` gives the extent of each dimension in *members*; each
    member covers ``steps[d]`` elements along dimension ``d`` (e.g., a
    256-byte FP32 vector load covers 64 elements in the depth
    dimension, as in Figure 2(c)).
    """

    def __init__(self, sizes: Sequence[int], steps: Sequence[int] | None = None) -> None:
        if not 1 <= len(sizes) <= MAX_DIMS:
            raise ValueError(f"index space supports 1..{MAX_DIMS} dims, got {len(sizes)}")
        if any(s <= 0 for s in sizes):
            raise ValueError(f"all dimension sizes must be positive, got {sizes}")
        self.sizes: Tuple[int, ...] = tuple(int(s) for s in sizes)
        if steps is None:
            steps = [1] * len(sizes)
        if len(steps) != len(sizes) or any(s <= 0 for s in steps):
            raise ValueError("steps must match sizes and be positive")
        self.steps: Tuple[int, ...] = tuple(int(s) for s in steps)

    @classmethod
    def for_elements(
        cls, num_elements: int, elements_per_member: int, width: int = 1
    ) -> "IndexSpace":
        """Build a 2-D (depth x width) index space over a flat array.

        ``elements_per_member`` is the number of array elements one
        member covers in the depth dimension -- i.e., the data access
        granularity divided by the element size.
        """
        if num_elements <= 0 or elements_per_member <= 0 or width <= 0:
            raise ValueError("arguments must be positive")
        depth = math.ceil(num_elements / (elements_per_member * width))
        return cls(sizes=(depth, width), steps=(elements_per_member, 1))

    @property
    def num_dims(self) -> int:
        return len(self.sizes)

    @property
    def num_members(self) -> int:
        product = 1
        for s in self.sizes:
            product *= s
        return product

    @property
    def elements_per_member(self) -> int:
        product = 1
        for s in self.steps:
            product *= s
        return product

    def members(self) -> Iterator[IndexSpaceMember]:
        for coords in itertools.product(*(range(s) for s in self.sizes)):
            yield IndexSpaceMember(coords=coords)

    def __repr__(self) -> str:
        return f"IndexSpace(sizes={self.sizes}, steps={self.steps})"


def partition_members(num_members: int, num_tpcs: int) -> List[int]:
    """Round-robin member counts per TPC.

    Returns a list of length ``num_tpcs`` whose entries sum to
    ``num_members``; the kernel's launch time is governed by the TPC
    with the most members (``max`` of the list).
    """
    if num_members < 0:
        raise ValueError("num_members must be non-negative")
    if num_tpcs <= 0:
        raise ValueError("num_tpcs must be positive")
    base, extra = divmod(num_members, num_tpcs)
    return [base + (1 if i < extra else 0) for i in range(num_tpcs)]
