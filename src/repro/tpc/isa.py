"""TPC instruction set model.

Only the aspects that matter for performance are modelled: which VLIW
issue slot an instruction occupies, its architectural result latency,
and whether it touches global memory (and how -- streaming accesses are
prefetched, random accesses pay the full HBM round trip).

Opcode names follow the TPC-C intrinsics used in the paper's Figure 2(c)
(``v_f32_ld_tnsr``, ``v_f32_add_b``, ...) with the dtype prefix folded
into the instruction's ``dtype`` field.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.hw.spec import DType

#: Architectural latency of TPC instructions in cycles (Section 2.2:
#: "TPC instructions have an average architectural latency of 4
#: processor cycles").
ARCH_LATENCY = 4


class Slot(enum.Enum):
    """VLIW issue slots; one instruction per slot per cycle."""

    LOAD = "load"
    STORE = "store"
    VECTOR = "vector"
    SCALAR = "scalar"


class MemoryKind(enum.Enum):
    """How an instruction touches memory."""

    NONE = "none"
    STREAM_LOAD = "stream_load"
    RANDOM_LOAD = "random_load"
    STREAM_STORE = "stream_store"
    RANDOM_STORE = "random_store"


class Opcode(enum.Enum):
    """Performance-relevant TPC opcodes."""

    LD_TNSR = "ld_tnsr"          # v_<t>_ld_tnsr: vector load from a tensor
    LD_G = "ld_g"                # gather load from a computed global address
    ST_TNSR = "st_tnsr"          # v_<t>_st_tnsr: vector store to a tensor
    ST_G = "st_g"                # scatter store to a computed global address
    ADD = "add"                  # v_<t>_add_b
    SUB = "sub"
    MUL = "mul"                  # v_<t>_mul_b
    MAC = "mac"                  # v_<t>_mac_b: fused multiply-accumulate
    MAX = "max"
    MIN = "min"
    EXP = "exp"
    RECIP = "recip"
    MOV = "mov"
    CMP = "cmp"
    S_ADD = "s_add"              # scalar ALU
    S_MUL = "s_mul"
    S_CMP = "s_cmp"
    LOOP_END = "loop_end"        # loop bookkeeping / taken branch


_OPCODE_SLOT = {
    Opcode.LD_TNSR: Slot.LOAD,
    Opcode.LD_G: Slot.LOAD,
    Opcode.ST_TNSR: Slot.STORE,
    Opcode.ST_G: Slot.STORE,
    Opcode.ADD: Slot.VECTOR,
    Opcode.SUB: Slot.VECTOR,
    Opcode.MUL: Slot.VECTOR,
    Opcode.MAC: Slot.VECTOR,
    Opcode.MAX: Slot.VECTOR,
    Opcode.MIN: Slot.VECTOR,
    Opcode.EXP: Slot.VECTOR,
    Opcode.RECIP: Slot.VECTOR,
    Opcode.MOV: Slot.VECTOR,
    Opcode.CMP: Slot.VECTOR,
    Opcode.S_ADD: Slot.SCALAR,
    Opcode.S_MUL: Slot.SCALAR,
    Opcode.S_CMP: Slot.SCALAR,
    Opcode.LOOP_END: Slot.SCALAR,
}

_OPCODE_MEMORY = {
    Opcode.LD_TNSR: MemoryKind.STREAM_LOAD,
    Opcode.LD_G: MemoryKind.RANDOM_LOAD,
    Opcode.ST_TNSR: MemoryKind.STREAM_STORE,
    Opcode.ST_G: MemoryKind.RANDOM_STORE,
}

#: FLOPs retired per vector lane for each compute opcode.
_OPCODE_FLOPS_PER_LANE = {
    Opcode.ADD: 1.0,
    Opcode.SUB: 1.0,
    Opcode.MUL: 1.0,
    Opcode.MAC: 2.0,
    Opcode.MAX: 1.0,
    Opcode.MIN: 1.0,
    # Transcendental helpers run on the special-function path; the
    # conventional single-flop accounting is used.
    Opcode.EXP: 1.0,
    Opcode.RECIP: 1.0,
    Opcode.MOV: 0.0,
    Opcode.CMP: 0.0,
}


@dataclass(frozen=True)
class Instruction:
    """One TPC instruction instance inside a kernel body.

    Registers are virtual names; the pipeline enforces RAW, WAR, and WAW
    hazards through them, which is how the benefit of unroll-time
    register renaming appears.
    """

    opcode: Opcode
    dest: Optional[str] = None
    sources: Tuple[str, ...] = field(default_factory=tuple)
    dtype: DType = DType.BF16
    #: Bytes of *useful* data moved for memory instructions.
    access_bytes: int = 0
    latency: int = ARCH_LATENCY
    #: Name of the global tensor a memory instruction touches (set by
    #: the builder; lets the interpreter execute the stream).
    tensor: Optional[str] = None

    @property
    def slot(self) -> Slot:
        return _OPCODE_SLOT[self.opcode]

    @property
    def memory_kind(self) -> MemoryKind:
        return _OPCODE_MEMORY.get(self.opcode, MemoryKind.NONE)

    @property
    def is_load(self) -> bool:
        return self.memory_kind in (MemoryKind.STREAM_LOAD, MemoryKind.RANDOM_LOAD)

    @property
    def is_store(self) -> bool:
        return self.memory_kind in (MemoryKind.STREAM_STORE, MemoryKind.RANDOM_STORE)

    @property
    def flops(self) -> float:
        """FLOPs retired by this instruction (full vector width)."""
        per_lane = _OPCODE_FLOPS_PER_LANE.get(self.opcode, 0.0)
        if per_lane == 0.0:
            return 0.0
        lanes = 2048 // (8 * self.dtype.itemsize)
        return per_lane * lanes

    def __str__(self) -> str:
        srcs = ", ".join(self.sources)
        dest = f"{self.dest} <- " if self.dest else ""
        return f"{self.opcode.value}[{self.slot.value}] {dest}{srcs}"
