"""Functional interpreter for TPC kernel bodies.

The pipeline simulator (:mod:`repro.tpc.pipeline`) times an instruction
stream; this interpreter *executes* the same stream on numpy data, so a
kernel built with the DSL is verified end to end: the exact instruction
list that was scheduled and timed also computes the answer.

Semantics:

* ``LD_TNSR`` streams its named tensor: each load pops the next
  access-width vector from that tensor's read cursor into the
  destination register.
* ``ST_TNSR`` appends the source register's vector to its named output
  tensor.
* ``LD_G`` gathers the row selected by the next index from the kernel's
  index stream into a FIFO (the vector-local-memory staging);
  :meth:`TpcInterpreter.pop_gathered` hands rows to reduction code.
* ALU opcodes operate on registers element-wise; ``MAC`` accumulates
  into its destination register, matching ``v_<t>_mac_b``.  A scalar
  operand named ``"scale"`` may be bound for SCALE/TRIAD-style kernels.

The interpreter supports the streaming/element-wise kernel family the
paper's microbenchmarks use; anything outside that subset raises
:class:`InterpreterError` rather than guessing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.tpc.isa import Instruction, MemoryKind, Opcode
from repro.tpc.kernel import TpcKernel


class InterpreterError(RuntimeError):
    """Raised when a kernel body is outside the executable subset."""


class _TensorStream:
    """Sequential read cursor over a flat tensor."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64).ravel()
        self.cursor = 0

    def read(self, count: int) -> np.ndarray:
        end = min(self.cursor + count, self.data.size)
        out = self.data[self.cursor:end]
        self.cursor = end
        if out.size < count:  # final partial vector: zero-pad
            out = np.concatenate([out, np.zeros(count - out.size)])
        return out

    @property
    def exhausted(self) -> bool:
        return self.cursor >= self.data.size


class TpcInterpreter:
    """Executes a :class:`TpcKernel`'s body over bound tensors."""

    def __init__(
        self,
        kernel: TpcKernel,
        inputs: Dict[str, np.ndarray],
        scalars: Optional[Dict[str, float]] = None,
        gather_indices: Optional[Sequence[int]] = None,
        gather_table: Optional[np.ndarray] = None,
    ) -> None:
        self.kernel = kernel
        self._streams = {name: _TensorStream(data) for name, data in inputs.items()}
        self._scalars = dict(scalars or {})
        self._outputs: Dict[str, List[np.ndarray]] = {}
        self._registers: Dict[str, np.ndarray] = {}
        self._gather_indices = list(gather_indices or [])
        self._gather_cursor = 0
        self._gather_table = (
            None if gather_table is None else np.asarray(gather_table, dtype=np.float64)
        )
        self._gathered: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def _lanes(self, instr: Instruction) -> int:
        itemsize = instr.dtype.itemsize
        return max(1, instr.access_bytes // itemsize)

    def _source(self, name: str) -> np.ndarray:
        if name in self._registers:
            return self._registers[name]
        if name in self._scalars:
            return np.asarray(self._scalars[name], dtype=np.float64)
        raise InterpreterError(f"undefined register or scalar {name!r}")

    def _execute_alu(self, instr: Instruction) -> None:
        if instr.opcode is Opcode.LOOP_END:
            return
        sources = [self._source(s) for s in instr.sources]
        scale = self._scalars.get("scale", 1.0)
        if instr.opcode is Opcode.ADD:
            value = sources[0] + (sources[1] if len(sources) > 1 else sources[0])
        elif instr.opcode is Opcode.SUB:
            value = sources[0] - sources[1]
        elif instr.opcode is Opcode.MUL:
            value = sources[0] * (sources[1] if len(sources) > 1 else scale)
        elif instr.opcode is Opcode.MAC:
            # v_<t>_mac_b accumulates into its destination; registers
            # are cleared at trip boundaries, so a fresh destination
            # starts from zero.
            acc = self._registers.get(instr.dest, np.asarray(0.0))
            if len(sources) == 2:
                value = acc + sources[0] * sources[1]
            elif len(sources) == 1:
                value = acc + sources[0] * scale
            else:
                raise InterpreterError("MAC needs one or two sources")
        elif instr.opcode is Opcode.MAX:
            value = np.maximum(sources[0], sources[1])
        elif instr.opcode is Opcode.MIN:
            value = np.minimum(sources[0], sources[1])
        elif instr.opcode is Opcode.EXP:
            value = np.exp(sources[0])
        elif instr.opcode is Opcode.RECIP:
            value = 1.0 / sources[0]
        elif instr.opcode is Opcode.MOV:
            value = sources[0]
        else:
            raise InterpreterError(f"opcode {instr.opcode} not executable")
        if instr.dest is None:
            raise InterpreterError(f"{instr.opcode} needs a destination")
        self._registers[instr.dest] = np.asarray(value, dtype=np.float64)

    def _execute_memory(self, instr: Instruction) -> None:
        if instr.tensor is None:
            raise InterpreterError(f"memory instruction {instr} carries no tensor")
        lanes = self._lanes(instr)
        if instr.memory_kind is MemoryKind.STREAM_LOAD:
            stream = self._streams.get(instr.tensor)
            if stream is None:
                raise InterpreterError(f"input tensor {instr.tensor!r} not bound")
            if instr.dest is None:
                raise InterpreterError("stream load without a destination")
            self._registers[instr.dest] = stream.read(lanes)
        elif instr.memory_kind is MemoryKind.STREAM_STORE:
            value = np.atleast_1d(self._source(instr.sources[0]))
            self._outputs.setdefault(instr.tensor, []).append(value)
        elif instr.memory_kind is MemoryKind.RANDOM_LOAD:
            if self._gather_table is None:
                raise InterpreterError("gather executed without a gather table")
            if self._gather_cursor < len(self._gather_indices):
                index = self._gather_indices[self._gather_cursor]
                self._gather_cursor += 1
                self._gathered.append(self._gather_table[index])
        else:
            raise InterpreterError(f"memory kind {instr.memory_kind} not executable")

    # ------------------------------------------------------------------
    def run(self, trim_to: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Execute every trip; returns the concatenated output tensors.

        ``trim_to`` truncates each output to that many elements (the
        final trip may zero-pad past the input length).
        """
        for _ in range(self.kernel.trips):
            # Registers are private per trip (the compiler re-zeroes
            # accumulators at loop entry).
            self._registers.clear()
            for instr in self.kernel.body:
                if instr.memory_kind is not MemoryKind.NONE:
                    self._execute_memory(instr)
                else:
                    self._execute_alu(instr)
            if self._streams and all(s.exhausted for s in self._streams.values()):
                break
        outputs = {
            name: np.concatenate(chunks) for name, chunks in self._outputs.items()
        }
        if trim_to is not None:
            outputs = {name: data[:trim_to] for name, data in outputs.items()}
        return outputs

    def pop_gathered(self) -> List[np.ndarray]:
        """Rows staged by gather instructions (vector local memory)."""
        rows, self._gathered = self._gathered, []
        return rows
