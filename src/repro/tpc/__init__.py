"""TPC-C programming-model simulator.

The Gaudi Tensor Processing Core is a single-threaded VLIW processor
with dedicated load/store, scalar, and vector issue slots, a 2048-bit
SIMD vector unit, and a 4-cycle architectural instruction latency
(Section 2.2 of the paper).  This package models that machine closely
enough that the paper's TPC programming best practices -- 256-byte
access granularity and manual loop unrolling -- fall out of the
simulation rather than being assumed:

* :mod:`repro.tpc.isa` -- instruction set, issue slots, latencies.
* :mod:`repro.tpc.index_space` -- the up-to-5-D index space that
  partitions work across TPCs (Figure 3).
* :mod:`repro.tpc.local_memory` -- per-TPC scalar (1 KB) and vector
  (80 KB) local memories.
* :mod:`repro.tpc.pipeline` -- in-order VLIW scoreboard simulator with
  register hazards; this is where unrolling earns its speedup.
* :mod:`repro.tpc.builder` -- a small kernel-construction DSL with
  unroll-time register renaming, mirroring TPC-C's ``#pragma unroll``.
* :mod:`repro.tpc.kernel` / :mod:`repro.tpc.launcher` -- kernel objects
  and the multi-TPC launch model with per-TPC and chip-wide memory
  bandwidth bounds.
* :mod:`repro.tpc.intrinsics` -- numpy-backed functional semantics so
  kernel results can be checked for correctness.
"""

from repro.tpc.builder import TpcKernelBuilder
from repro.tpc.index_space import IndexSpace, IndexSpaceMember, partition_members
from repro.tpc.interpreter import InterpreterError, TpcInterpreter
from repro.tpc.isa import Instruction, Opcode, Slot
from repro.tpc.kernel import TpcKernel
from repro.tpc.launcher import KernelLaunchResult, TpcLauncher
from repro.tpc.local_memory import LocalMemory, LocalMemoryError
from repro.tpc.pipeline import PipelineResult, VliwPipeline

__all__ = [
    "IndexSpace",
    "InterpreterError",
    "TpcInterpreter",
    "IndexSpaceMember",
    "Instruction",
    "KernelLaunchResult",
    "LocalMemory",
    "LocalMemoryError",
    "Opcode",
    "PipelineResult",
    "Slot",
    "TpcKernel",
    "TpcKernelBuilder",
    "TpcLauncher",
    "VliwPipeline",
    "partition_members",
]
