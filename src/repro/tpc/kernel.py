"""TPC kernel objects.

A :class:`TpcKernel` is the unit the launcher schedules onto TPCs: an
unrolled loop body (a sequence of :class:`~repro.tpc.isa.Instruction`),
a trip count, and optionally a numpy-backed functional implementation
so correctness can be checked independently of timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hw.spec import DType
from repro.tpc.isa import Instruction, MemoryKind


@dataclass
class TpcKernel:
    """One compiled TPC program.

    ``trips`` is the per-TPC loop trip count; each trip executes
    ``body`` once (which covers ``unroll`` logical iterations).
    """

    name: str
    body: List[Instruction]
    trips: int
    unroll: int = 1
    dtype: DType = DType.BF16
    #: Number of distinct global tensors the kernel streams through
    #: (feeds the DRAM row-conflict model).
    num_streams: int = 1
    #: Optional functional implementation: ``functional(*arrays)``.
    functional: Optional[Callable[..., object]] = None

    def __post_init__(self) -> None:
        if self.trips <= 0:
            raise ValueError("trips must be positive")
        if not self.body:
            raise ValueError("kernel body is empty")

    # ------------------------------------------------------------------
    @property
    def loads_per_trip(self) -> int:
        return sum(1 for i in self.body if i.is_load)

    @property
    def stores_per_trip(self) -> int:
        return sum(1 for i in self.body if i.is_store)

    @property
    def has_random_access(self) -> bool:
        return any(
            i.memory_kind in (MemoryKind.RANDOM_LOAD, MemoryKind.RANDOM_STORE)
            for i in self.body
        )

    @property
    def random_access_bytes(self) -> int:
        """Size of the random accesses (0 if none; assumed uniform)."""
        sizes = {
            i.access_bytes
            for i in self.body
            if i.memory_kind in (MemoryKind.RANDOM_LOAD, MemoryKind.RANDOM_STORE)
        }
        return max(sizes) if sizes else 0

    @property
    def flops_per_trip(self) -> float:
        return sum(i.flops for i in self.body)

    def useful_bytes_per_trip(self) -> float:
        return float(sum(i.access_bytes for i in self.body if i.memory_kind is not MemoryKind.NONE))

    def moved_bytes_per_trip(self, min_access_bytes: int) -> float:
        total = 0.0
        for i in self.body:
            if i.memory_kind is MemoryKind.NONE or i.access_bytes == 0:
                continue
            total += min_access_bytes * math.ceil(i.access_bytes / min_access_bytes)
        return total

    def run_functional(self, *arrays: object) -> object:
        """Execute the numpy-backed semantics, if provided."""
        if self.functional is None:
            raise NotImplementedError(f"kernel {self.name!r} has no functional model")
        return self.functional(*arrays)
