"""Numpy-backed functional semantics for TPC vector intrinsics.

The timing simulator (:mod:`repro.tpc.pipeline`) only cares about slots
and hazards; these helpers give kernels *meaning* so tests can assert
that, e.g., the TRIAD kernel really computes ``scalar * a + b``.  Names
mirror the TPC-C intrinsics of Figure 2(c) without the dtype prefix.
"""

from __future__ import annotations

import numpy as np

_BF16_MANTISSA_MASK = np.uint32(0xFFFF0000)


def as_bf16(x: np.ndarray) -> np.ndarray:
    """Round an FP32 array to BF16 precision (still stored as FP32).

    BF16 is FP32 with the bottom 16 mantissa bits dropped; numpy has no
    native bfloat16, so values are truncated in place of a dtype.
    """
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32) & _BF16_MANTISSA_MASK
    return bits.view(np.float32)


def v_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_add_b``: element-wise addition."""
    return np.asarray(a) + np.asarray(b)


def v_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_sub_b``: element-wise subtraction."""
    return np.asarray(a) - np.asarray(b)


def v_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_mul_b``: element-wise multiplication."""
    return np.asarray(a) * np.asarray(b)


def v_mac(acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_mac_b``: fused multiply-accumulate, ``acc + a * b``."""
    return np.asarray(acc) + np.asarray(a) * np.asarray(b)


def v_max(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_max_b``: element-wise maximum."""
    return np.maximum(a, b)


def v_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``v_<t>_min_b``: element-wise minimum."""
    return np.minimum(a, b)


def v_exp(a: np.ndarray) -> np.ndarray:
    """Vector exponential (special-function path)."""
    return np.exp(np.asarray(a))


def v_recip(a: np.ndarray) -> np.ndarray:
    """Vector reciprocal (special-function path)."""
    return 1.0 / np.asarray(a)


def v_gather(table: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """``ld_g`` over a row-major table: gather rows by index."""
    table = np.asarray(table)
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() >= table.shape[0]):
        raise IndexError("gather index out of range")
    return table[indices]


def v_scatter(target: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """``st_g``: scatter rows into a table (last write wins)."""
    out = np.array(target, copy=True)
    out[np.asarray(indices)] = rows
    return out
