"""Multi-TPC kernel launch model.

A kernel launch partitions the index space across TPCs (Figure 3); the
launch time is governed by the slowest TPC, subject to three bounds:

1. the TPC pipeline itself (the scoreboard simulation);
2. the per-TPC sustained memory bandwidth (DMA/load-port limit) -- this
   is why STREAM needs 11-15 TPCs to saturate chip bandwidth in
   Figure 8(c);
3. chip-wide HBM bandwidth, streaming or random as appropriate.

A fixed kernel-launch overhead is added per launch, which is what the
SingleTable embedding operator pays N times for N tables (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.memory import HbmModel
from repro.hw.spec import DeviceSpec, GAUDI2_SPEC
from repro.tpc.index_space import partition_members
from repro.tpc.kernel import TpcKernel
from repro.tpc.pipeline import PipelineResult, VliwPipeline


@dataclass(frozen=True)
class KernelLaunchResult:
    """Timing and utilization of one kernel launch."""

    kernel_name: str
    num_tpcs: int
    time: float
    compute_time: float
    port_time: float
    hbm_time: float
    launch_overhead: float
    achieved_flops: float
    useful_bytes: float
    moved_bytes: float
    bandwidth_utilization: float
    bottleneck: str
    pipeline: Optional[PipelineResult] = None

    @property
    def achieved_bandwidth(self) -> float:
        busy = self.time - self.launch_overhead
        return self.useful_bytes / busy if busy > 0 else 0.0


class TpcLauncher:
    """Launches TPC kernels onto a (model of a) Gaudi device."""

    def __init__(self, spec: DeviceSpec = GAUDI2_SPEC) -> None:
        self.spec = spec
        self.hbm = HbmModel(spec.memory)
        self.pipeline = VliwPipeline(spec.vector)

    def launch(
        self,
        kernel: TpcKernel,
        num_tpcs: Optional[int] = None,
        include_launch_overhead: bool = True,
        working_set_bytes: float = float("inf"),
    ) -> KernelLaunchResult:
        """Run ``kernel`` on ``num_tpcs`` TPCs (default: all 24).

        ``kernel.trips`` is interpreted as the *total* trip count of the
        workload; trips are distributed round-robin across TPCs.
        """
        max_tpcs = self.spec.vector.num_cores
        tpcs = max_tpcs if num_tpcs is None else num_tpcs
        if not 0 < tpcs <= max_tpcs:
            raise ValueError(f"num_tpcs must be in (0, {max_tpcs}], got {tpcs}")

        trips_per_tpc = max(partition_members(kernel.trips, tpcs))
        pipeline_result = self.pipeline.simulate(kernel.body, trips_per_tpc)
        compute_time = pipeline_result.time_seconds(self.spec.vector.clock_hz)

        moved_per_tpc = pipeline_result.total_moved_bytes
        port_time = moved_per_tpc / self.spec.vector.per_core_stream_bw

        total_useful = kernel.useful_bytes_per_trip() * kernel.trips
        total_moved = kernel.moved_bytes_per_trip(self.spec.memory.min_access_bytes) * kernel.trips
        if kernel.has_random_access:
            chip_bw = self.spec.memory.bandwidth * self.spec.memory.random_efficiency
            if self.spec.memory.sram_is_cache and working_set_bytes <= self.spec.memory.sram_bytes:
                chip_bw = self.spec.memory.bandwidth
        else:
            chip_bw = self.hbm.stream_bandwidth(kernel.num_streams)
        hbm_time = total_moved / chip_bw

        busy_time = max(compute_time, port_time, hbm_time)
        overhead = self.spec.kernel_launch_overhead if include_launch_overhead else 0.0
        time = busy_time + overhead

        if busy_time == compute_time:
            bottleneck = "tpc-pipeline"
        elif busy_time == port_time:
            bottleneck = "tpc-memory-port"
        else:
            bottleneck = "hbm-bandwidth"

        total_flops = kernel.flops_per_trip * kernel.trips
        return KernelLaunchResult(
            kernel_name=kernel.name,
            num_tpcs=tpcs,
            time=time,
            compute_time=compute_time,
            port_time=port_time,
            hbm_time=hbm_time,
            launch_overhead=overhead,
            achieved_flops=total_flops / busy_time if busy_time > 0 else 0.0,
            useful_bytes=total_useful,
            moved_bytes=total_moved,
            bandwidth_utilization=(
                (total_useful / busy_time) / self.spec.memory.bandwidth
                if busy_time > 0
                else 0.0
            ),
            bottleneck=bottleneck,
            pipeline=pipeline_result,
        )
