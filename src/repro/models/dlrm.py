"""DLRM-DCNv2 recommendation models (Table 3; Figure 11).

Two configurations from the paper's Table 3, both based on the MLPerf
DLRM-DCNv2 reference:

* **RM1** -- compute-intensive: large bottom/top MLPs and a wide DCNv2
  interaction dominate.
* **RM2** -- memory-intensive: small MLPs; the embedding layer
  dominates.

Where Table 3's scan is ambiguous, the assumptions are: both models use
1M-row embedding tables; RM1 has 10 tables with 10 lookups (gathers)
pooled per table, RM2 has 20 tables with 20 lookups.  The embedding
dimension is a sweep axis in Figure 11, so it is a constructor argument
(default 64 elements = 256 B in FP32).

The paper serves RecSys in FP32 (Section 3.1) on a single device.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hw.device import Device
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.hw.spec import DType
from repro.kernels.elementwise import elementwise_cost, relu
from repro.kernels.embedding import (
    A100Fbgemm,
    EmbeddingConfig,
    GaudiBatchedTable,
    reference_embedding_bag,
)

#: Per-op dispatch overhead during RecSys inference (HPU/CUDA graphs).
_OP_DISPATCH = 2e-6


@dataclass(frozen=True)
class DlrmConfig:
    """One DLRM-DCNv2 configuration."""

    name: str
    num_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling: int
    dense_features: int
    bottom_mlp: Tuple[int, ...]
    top_mlp: Tuple[int, ...]
    cross_low_rank: int
    cross_layers: int
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ValueError(
                "bottom MLP output width must equal the embedding dim "
                f"({self.bottom_mlp[-1]} != {self.embedding_dim})"
            )

    def with_embedding_dim(self, dim: int) -> "DlrmConfig":
        """The Figure 11 sweep axis: resize embeddings and bottom MLP."""
        bottom = self.bottom_mlp[:-1] + (dim,)
        return replace(self, embedding_dim=dim, bottom_mlp=bottom)

    @property
    def interaction_width(self) -> int:
        """Concatenated feature width entering DCNv2."""
        return (self.num_tables + 1) * self.embedding_dim

    def embedding_config(self, batch: int) -> EmbeddingConfig:
        return EmbeddingConfig(
            num_tables=self.num_tables,
            rows_per_table=self.rows_per_table,
            embedding_dim=self.embedding_dim,
            pooling=self.pooling,
            batch_size=batch,
            dtype=self.dtype,
        )


RM1_CONFIG = DlrmConfig(
    name="RM1",
    num_tables=10,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling=10,
    dense_features=13,
    bottom_mlp=(512, 256, 64),
    top_mlp=(1024, 1024, 512, 256, 1),
    cross_low_rank=512,
    cross_layers=3,
)

RM2_CONFIG = DlrmConfig(
    name="RM2",
    num_tables=20,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling=20,
    dense_features=13,
    bottom_mlp=(256, 64, 64),
    top_mlp=(128, 64, 1),
    cross_low_rank=64,
    cross_layers=2,
)


@dataclass(frozen=True)
class DlrmForwardEstimate:
    """One forward pass (a batch of inference requests)."""

    device: str
    config_name: str
    batch: int
    time: float
    breakdown: Dict[str, float]
    average_power: float

    @property
    def requests_per_second(self) -> float:
        return self.batch / self.time if self.time > 0 else 0.0

    @property
    def energy_joules(self) -> float:
        return self.average_power * self.time

    @property
    def requests_per_joule(self) -> float:
        return self.batch / self.energy_joules if self.energy_joules > 0 else 0.0


class DlrmCostModel:
    """Forward-pass cost model of a DLRM configuration on one device."""

    def __init__(self, config: DlrmConfig, device: Device) -> None:
        self.config = config
        self.device = device
        family = getattr(device, "family", "")
        if family == "gaudi":
            self.embedding_op = GaudiBatchedTable(device.spec)
        elif family == "cuda":
            self.embedding_op = A100Fbgemm(device.spec)
        else:
            raise TypeError(f"unsupported device {device!r} (family {family!r})")

    # -- pieces ------------------------------------------------------------
    def _gemm(self, acc: ActivityAccumulator, m: int, k: int, n: int) -> float:
        result = self.device.gemm(m, k, n, self.config.dtype)
        acc.add_matrix(
            result.flops / self.device.spec.matrix.peak(self.config.dtype),
            result.active_mac_fraction,
        )
        traffic = self.config.dtype.itemsize * (k * n + m * k + m * n)
        acc.add_memory(traffic / self.device.peak_bandwidth)
        return result.time + _OP_DISPATCH

    def _mlp(self, acc: ActivityAccumulator, batch: int, in_width: int,
             widths: Sequence[int]) -> float:
        time = 0.0
        current = in_width
        for width in widths:
            time += self._gemm(acc, batch, current, width)
            cost = elementwise_cost(self.device.spec, batch * width, 1.0, 1, self.config.dtype)
            time += max(
                cost.compute_time,
                (cost.input_bytes + cost.output_bytes)
                / (self.device.spec.memory.bandwidth * self.device.spec.memory.stream_efficiency),
            )
            acc.add_vector(cost.compute_time)
            acc.add_memory((cost.input_bytes + cost.output_bytes) / self.device.peak_bandwidth)
            current = width
        return time

    def embedding_time(self, batch: int, acc: Optional[ActivityAccumulator] = None) -> float:
        result = self.embedding_op.run(self.config.embedding_config(batch))
        if acc is not None:
            # DRAM power follows *moved* bytes: sub-granule rows still
            # activate and transfer whole granules, so the wasted
            # bandwidth burns power without doing useful work.
            granule = self.device.spec.memory.min_access_bytes
            row = self.config.embedding_dim * self.config.dtype.itemsize
            waste = granule * math.ceil(row / granule) / row
            acc.add_memory(
                min(
                    result.time,
                    result.config.useful_bytes * waste / self.device.peak_bandwidth,
                )
            )
            # The single-threaded TPCs actively spin issuing gathers for
            # the whole phase; GPU warps mostly stall on memory, so the
            # SIMD cores draw far less dynamic power during lookups.
            issue_activity = 1.0 if self.device.family == "gaudi" else 0.35
            acc.add_vector(result.time * issue_activity)
        return result.time

    def interaction_time(self, batch: int, acc: ActivityAccumulator) -> float:
        """DCNv2 low-rank cross layers: x' = x0 * (U (V x) + b) + x."""
        width = self.config.interaction_width
        rank = self.config.cross_low_rank
        time = 0.0
        for _ in range(self.config.cross_layers):
            time += self._gemm(acc, batch, width, rank)
            time += self._gemm(acc, batch, rank, width)
            cost = elementwise_cost(self.device.spec, batch * width, 2.0, 2, self.config.dtype)
            time += cost.compute_time
            acc.add_vector(cost.compute_time)
        return time

    # -- forward -------------------------------------------------------------
    def forward(self, batch: int) -> DlrmForwardEstimate:
        if batch <= 0:
            raise ValueError("batch must be positive")
        acc = ActivityAccumulator()
        breakdown: Dict[str, float] = {}
        breakdown["embedding"] = self.embedding_time(batch, acc)
        breakdown["bottom_mlp"] = self._mlp(
            acc, batch, self.config.dense_features, self.config.bottom_mlp
        )
        breakdown["interaction"] = self.interaction_time(batch, acc)
        breakdown["top_mlp"] = self._mlp(
            acc, batch, self.config.interaction_width, self.config.top_mlp
        )
        total = sum(breakdown.values())
        profile = acc.profile(total)
        power = PowerModel(self.device.spec.power).power(profile)
        return DlrmForwardEstimate(
            device=self.device.name,
            config_name=self.config.name,
            batch=batch,
            time=total,
            breakdown=dict(breakdown),
            average_power=power,
        )


# ----------------------------------------------------------------------
# Functional reference (numpy) for correctness tests
# ----------------------------------------------------------------------
def reference_dlrm_forward(
    config: DlrmConfig,
    dense: np.ndarray,
    tables: np.ndarray,
    indices: np.ndarray,
    weights: Dict[str, Sequence[np.ndarray]],
) -> np.ndarray:
    """Numerically execute a (small) DLRM-DCNv2 forward pass.

    ``weights`` supplies ``"bottom"``, ``"top"`` (lists of [in, out]
    matrices) and ``"cross_u"``/``"cross_v"``/``"cross_b"`` (per cross
    layer).  Returns the pre-sigmoid logits ``[batch, 1]``.
    """
    x = np.asarray(dense, dtype=np.float64)
    for w in weights["bottom"]:
        x = relu(x @ w)
    bags = reference_embedding_bag(tables, indices)  # [B, T, D]
    features = np.concatenate([x[:, None, :], bags], axis=1)  # [B, T+1, D]
    x0 = features.reshape(features.shape[0], -1)
    xc = x0
    for u, v, b in zip(weights["cross_u"], weights["cross_v"], weights["cross_b"]):
        xc = x0 * ((xc @ v) @ u + b) + xc
    out = xc
    for i, w in enumerate(weights["top"]):
        out = out @ w
        if i < len(weights["top"]) - 1:
            out = relu(out)
    return out
