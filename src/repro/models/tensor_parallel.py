"""Tensor parallelism (Megatron-style) over the modelled fabrics.

Column/row-parallel sharding of the attention and MLP blocks induces
two AllReduces of the activation tensor per decoder layer, which is
where the interconnect contrast of Section 3.4 reaches end-to-end LLM
serving: the P2P mesh's AllReduce bandwidth grows with the number of
participating devices, so Gaudi's multi-device speedups *increase*
with TP degree (Figure 12(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comm import CollectiveLibrary, HcclLibrary, NcclLibrary
from repro.hw.device import A100Device, Device, Gaudi2Device


@dataclass
class TensorParallelConfig:
    """TP degree plus the collective library serving it."""

    degree: int = 1
    library: Optional[CollectiveLibrary] = None

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("TP degree must be >= 1")

    @classmethod
    def for_device(cls, device: Device, degree: int) -> "TensorParallelConfig":
        if degree == 1:
            return cls(degree=1, library=None)
        if isinstance(device, Gaudi2Device):
            return cls(degree=degree, library=HcclLibrary())
        if isinstance(device, A100Device):
            return cls(degree=degree, library=NcclLibrary())
        raise TypeError(f"unsupported device {device!r}")

    def shard(self, size: int, what: str = "dimension") -> int:
        """Split a sharded dimension, validating divisibility."""
        if size % self.degree != 0:
            raise ValueError(
                f"{what} of {size} not divisible by TP degree {self.degree}"
            )
        return size // self.degree

    def effective_degree(self) -> int:
        """TP participants still reachable on the bound fabric.

        With a degraded topology view bound (see
        :class:`repro.comm.DegradedMeshTopology`), failed devices drop
        out of the collective; healthy fabrics report the full degree.
        """
        if self.degree == 1 or self.library is None:
            return self.degree
        return self.library.alive_participants(self.degree)

    def allreduce_time(self, size_bytes: float) -> float:
        """One activation AllReduce across the (possibly degraded) TP
        group; with fewer than two survivors there is no exchange."""
        if self.degree == 1:
            return 0.0
        assert self.library is not None
        participants = self.effective_degree()
        if participants < 2:
            return 0.0
        return self.library.all_reduce(size_bytes, participants).time
