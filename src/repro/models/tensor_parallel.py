"""Tensor parallelism (Megatron-style) over the modelled fabrics.

Column/row-parallel sharding of the attention and MLP blocks induces
two AllReduces of the activation tensor per decoder layer, which is
where the interconnect contrast of Section 3.4 reaches end-to-end LLM
serving: the P2P mesh's AllReduce bandwidth grows with the number of
participating devices, so Gaudi's multi-device speedups *increase*
with TP degree (Figure 12(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.audit import get_auditor
from repro.comm import CollectiveLibrary
from repro.hw.device import Device


@dataclass
class TensorParallelConfig:
    """TP degree plus the collective library serving it.

    With observability bound (:meth:`bind_observability`), every
    AllReduce is counted in the metrics registry and queued as a
    pending ``(op, seconds, bytes)`` event the serving engine drains
    into collective spans on its virtual clock.
    """

    degree: int = 1
    library: Optional[CollectiveLibrary] = None
    #: Metrics registry recording per-collective counters (None = off).
    metrics: Optional[object] = field(default=None, repr=False, compare=False)
    #: Whether comm events queue for :meth:`drain_comm_events` (set it
    #: only when something drains them, or the queue grows unbounded).
    queue_events: bool = field(default=False, repr=False, compare=False)
    #: Comm events since the last :meth:`drain_comm_events` call; only
    #: populated while observability is bound.
    _pending: List[Tuple[str, float, float]] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("TP degree must be >= 1")

    @classmethod
    def for_device(cls, device: Device, degree: int) -> "TensorParallelConfig":
        if degree == 1:
            return cls(degree=1, library=None)
        # Every backend names its own fabric library (Backend protocol).
        if not hasattr(device, "collective_library"):
            raise TypeError(f"unsupported device {device!r}")
        return cls(degree=degree, library=device.collective_library())

    def shard(self, size: int, what: str = "dimension") -> int:
        """Split a sharded dimension, validating divisibility."""
        if size % self.degree != 0:
            raise ValueError(
                f"{what} of {size} not divisible by TP degree {self.degree}"
            )
        return size // self.degree

    def effective_degree(self) -> int:
        """TP participants still reachable on the bound fabric.

        With a degraded topology view bound (see
        :class:`repro.comm.DegradedMeshTopology`), failed devices drop
        out of the collective; healthy fabrics report the full degree.
        """
        if self.degree == 1 or self.library is None:
            return self.degree
        return self.library.alive_participants(self.degree)

    def allreduce_time(self, size_bytes: float) -> float:
        """One activation AllReduce across the (possibly degraded) TP
        group; with fewer than two survivors there is no exchange."""
        if self.degree == 1:
            return 0.0
        assert self.library is not None
        participants = self.effective_degree()
        if participants < 2:
            return 0.0
        time = self.library.all_reduce(size_bytes, participants).time
        auditor = get_auditor()
        if auditor is not None:
            auditor.check_collective(time, size_bytes, participants, self.degree)
        if self.metrics is not None:
            self.metrics.counter("comm.allreduce.calls").inc()
            self.metrics.counter("comm.allreduce.bytes").inc(size_bytes)
            self.metrics.histogram("comm.allreduce.seconds").observe(time)
        if self.queue_events:
            self._pending.append(("all_reduce", time, size_bytes))
        return time

    # -- observability -----------------------------------------------------
    def bind_observability(self, metrics, queue_events: bool = False) -> None:
        """Attach a metrics registry (or None to detach); with
        ``queue_events`` set, comm events also queue for
        :meth:`drain_comm_events`."""
        self.metrics = metrics
        self.queue_events = queue_events
        self._pending.clear()

    def drain_comm_events(self) -> List[Tuple[str, float, float]]:
        """Return and clear the ``(op, seconds, bytes)`` events queued
        since the last drain (the engine turns them into spans)."""
        events = list(self._pending)
        self._pending.clear()
        return events
