"""LLM training cost model (the paper's stated future work).

Section 5: "Intel claims that Gaudi NPUs are competitive to NVIDIA
GPUs for training large-scale AI models ... Analyzing Gaudi's
competitive edge against NVIDIA GPUs in training scenarios is part of
our immediate future work."  This module supplies that analysis over
the same device models:

* forward pass = the serving prefill walk;
* backward pass = 2x the forward matrix work (dgrad + wgrad GEMMs)
  plus the re-read of activations;
* optimizer step = a memory-bound pass over weights, gradients, and
  Adam state (16 bytes/param in mixed precision);
* data-parallel gradient AllReduce over the node fabric -- where the
  Section 3.4 interconnect contrast shows up at full 8-device scale,
  the regime the P2P mesh is strongest in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.device import Device
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.llama import LlamaConfig, LlamaCostModel, _merge_scaled
from repro.models.tensor_parallel import TensorParallelConfig

#: Bytes of optimizer + master state per parameter (Adam, mixed
#: precision: fp32 master + two fp32 moments + bf16 grad).
_OPTIMIZER_BYTES_PER_PARAM = 18

#: Fraction of forward matrix work the backward pass adds (dgrad +
#: wgrad each replay the forward GEMMs once).
_BACKWARD_FLOP_MULTIPLIER = 2.0


@dataclass(frozen=True)
class TrainingStepEstimate:
    """One optimizer step over a global batch."""

    device: str
    config_name: str
    data_parallel: int
    global_batch: int
    seq_len: int
    forward_time: float
    backward_time: float
    optimizer_time: float
    gradient_allreduce_time: float
    average_power: float

    @property
    def step_time(self) -> float:
        return (
            self.forward_time
            + self.backward_time
            + self.optimizer_time
            + self.gradient_allreduce_time
        )

    @property
    def tokens_per_second(self) -> float:
        tokens = self.global_batch * self.seq_len
        return tokens / self.step_time if self.step_time > 0 else 0.0

    #: 6 x params x tokens, the conventional training-flops estimate.
    model_flops: float = 0.0
    #: Matrix-engine peak of one device for the training dtype.
    device_peak_flops: float = 1.0

    @property
    def model_flops_utilization(self) -> float:
        """MFU: achieved fraction of aggregate matrix peak."""
        aggregate_peak = self.device_peak_flops * self.data_parallel
        return self.model_flops / (self.step_time * aggregate_peak)

    @property
    def energy_per_token(self) -> float:
        tokens = self.global_batch * self.seq_len
        if tokens == 0:
            return 0.0
        return self.average_power * self.data_parallel * self.step_time / tokens


class LlamaTrainingCostModel:
    """Training-step costs for one Llama configuration."""

    def __init__(
        self,
        config: LlamaConfig,
        device: Device,
        data_parallel: int = 8,
        tp: Optional[TensorParallelConfig] = None,
    ) -> None:
        if data_parallel < 1:
            raise ValueError("data_parallel must be >= 1")
        self.config = config
        self.device = device
        self.data_parallel = data_parallel
        self.tp = tp or TensorParallelConfig(degree=1)
        self.serving_model = LlamaCostModel(config, device, self.tp)
        # The gradient AllReduce runs over the same fabric TP does.
        self.comm = TensorParallelConfig.for_device(device, max(2, data_parallel))

    def step(self, global_batch: int, seq_len: int) -> TrainingStepEstimate:
        """One synchronous data-parallel training step."""
        if global_batch < self.data_parallel:
            raise ValueError("global_batch must cover all data-parallel ranks")
        local_batch = global_batch // self.data_parallel
        acc = ActivityAccumulator()

        forward = self.serving_model.prefill(local_batch, seq_len)
        acc.merge(forward.activity)
        forward_time = forward.time

        # Backward: dgrad + wgrad replay the forward GEMM work, plus the
        # activation re-reads (captured by scaling the forward phase).
        backward_time = _BACKWARD_FLOP_MULTIPLIER * forward.time
        _merge_scaled(acc, forward.activity, _BACKWARD_FLOP_MULTIPLIER)

        # Optimizer: stream weights + grads + Adam state once.
        shard = self.config.num_parameters / self.tp.degree
        optimizer_bytes = shard * _OPTIMIZER_BYTES_PER_PARAM
        stream_bw = (
            self.device.spec.memory.bandwidth
            * self.device.spec.memory.stream_efficiency
        )
        optimizer_time = optimizer_bytes / stream_bw
        acc.add_memory(optimizer_bytes / self.device.peak_bandwidth)

        # Data-parallel gradient AllReduce (bf16 grads).
        allreduce_time = 0.0
        if self.data_parallel > 1:
            grad_bytes = shard * self.config.dtype.itemsize
            assert self.comm.library is not None
            allreduce_time = self.comm.library.all_reduce(
                grad_bytes, self.data_parallel
            ).time
            acc.add_comm(allreduce_time)

        total = forward_time + backward_time + optimizer_time + allreduce_time
        power = PowerModel(self.device.spec.power).power(acc.profile(total))
        return TrainingStepEstimate(
            device=self.device.name,
            config_name=self.config.name,
            data_parallel=self.data_parallel,
            global_batch=global_batch,
            seq_len=seq_len,
            forward_time=forward_time,
            backward_time=backward_time,
            optimizer_time=optimizer_time,
            gradient_allreduce_time=allreduce_time,
            average_power=power,
            model_flops=6.0 * self.config.num_parameters * global_batch * seq_len,
            device_peak_flops=self.device.spec.matrix.peak(self.config.dtype),
        )
