"""Model zoo: the end-to-end workloads of Table 3.

* :mod:`repro.models.llama` -- Llama-3.1-8B/70B-Instruct decoder cost
  models (prefill + decode, single- and multi-device).
* :mod:`repro.models.dlrm` -- DLRM-DCNv2 RM1/RM2 recommendation models.
* :mod:`repro.models.tensor_parallel` -- tensor-parallel sharding and
  the per-layer collective traffic it induces.
"""

from repro.models.dlrm import DlrmConfig, DlrmCostModel, RM1_CONFIG, RM2_CONFIG
from repro.models.llama import (
    LLAMA_3_1_8B,
    LLAMA_3_1_70B,
    GenerationEstimate,
    LlamaConfig,
    LlamaCostModel,
)
from repro.models.tensor_parallel import TensorParallelConfig
from repro.models.torchrec import TorchRecShardedDlrm
from repro.models.training import LlamaTrainingCostModel, TrainingStepEstimate

__all__ = [
    "DlrmConfig",
    "DlrmCostModel",
    "GenerationEstimate",
    "LLAMA_3_1_70B",
    "LLAMA_3_1_8B",
    "LlamaConfig",
    "LlamaCostModel",
    "RM1_CONFIG",
    "RM2_CONFIG",
    "TensorParallelConfig",
    "TorchRecShardedDlrm",
    "LlamaTrainingCostModel",
    "TrainingStepEstimate",
]
