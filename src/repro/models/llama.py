"""Llama-3.1 decoder cost models (Table 3; Figures 12, 13, 17).

The model walks one decoder layer's operator list with the device's
GEMM/attention/collective models and accumulates time and engine
activity.  Prefill runs dense fused attention; decode runs either the
serving backend's static KV-cache attention (the optimum-habana /
TensorRT-LLM setup of Section 3.5) or one of the PagedAttention
implementations (the vLLM setup of Section 4.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.memo import CostCache
from repro.hw.device import Device
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.hw.spec import DType
from repro.kernels.attention import AttentionConfig, attention_time
from repro.kernels.elementwise import activation_cost, layernorm_cost
from repro.kernels.paged_attention import (
    DEFAULT_BLOCK_SIZE,
    PagedAttentionStats,
    a100_paged_attention,
    build_paged_time_fn,
    vllm_base_paged_attention,
    vllm_opt_paged_attention,
)
from repro.models.tensor_parallel import TensorParallelConfig

#: Per-layer dispatch overhead with CUDA Graphs / HPU Graphs enabled.
_LAYER_DISPATCH = 1.5e-6

#: Per-layer dispatch overhead in eager mode (per-op host launches).
_LAYER_DISPATCH_EAGER = 45e-6


class _StepperCache(CostCache):
    """Closure-valued :class:`CostCache` without memo-equivalence
    sampling: two independently compiled steppers are bit-identical in
    what they compute but never compare equal as objects, so the
    recompute-and-compare audit would always flag a false mismatch.
    Registry membership (``clear_caches`` / ``cache_stats``) and the
    LRU bound are inherited."""

    def get(self, key):
        from repro.core import memo

        if not memo.memoization_enabled():
            return None
        data = self._data
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        from repro.core import memo

        if not memo.memoization_enabled():
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        if len(data) >= self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value


#: Cross-instance compiled decode steppers: fleet and figure sweeps
#: build many short-lived engines over the same (device, config) pair,
#: and a drained batch walks every batch size down to 1 -- sharing the
#: compiled closures turns those rebuilds into dictionary hits.
_SHARED_STEPPERS = _StepperCache("llama.decode_stepper", maxsize=4096)

#: Cross-instance phase-estimate caches, keyed by the same pricing
#: identity as the shared steppers (device singleton, frozen config,
#: graphs/bucket knobs; tensor-parallel models stay instance-private
#: because their collective library is not part of the key).  The dict
#: holds strong references so ``clear_caches`` keeps finding them after
#: the models that created them are gone.
_SHARED_PHASE_CACHES: dict = {}


def _phase_caches(device, config, use_graphs: bool, static_bucket: int):
    """The (prefill, decode-terms, decode-attn) caches for one pricing
    identity, created on first use and shared by every later model with
    the same identity."""
    key = (device, config, use_graphs, static_bucket)
    caches = _SHARED_PHASE_CACHES.get(key)
    if caches is None:
        label = f"{device.name}/{config.name}"
        if not use_graphs or static_bucket != 1:
            label += f"/graphs={use_graphs}/bucket={static_bucket}"
        caches = (
            CostCache(f"llama.prefill[{label}]", maxsize=2048),
            CostCache(f"llama.decode_terms[{label}]", maxsize=1024),
            CostCache(f"llama.decode_attn[{label}]", maxsize=8192),
        )
        _SHARED_PHASE_CACHES[key] = caches
    return caches


class DecodeAttention(enum.Enum):
    """Which decode-attention path the serving backend uses."""

    STATIC = "static"          # contiguous KV cache (optimum-habana / TRT-LLM)
    PAGED_BASE = "paged-base"  # Gaudi vLLM fork baseline (BlockTable)
    PAGED_OPT = "paged-opt"    # optimized BlockList PagedAttention
    PAGED_CUDA = "paged-cuda"  # vLLM's native CUDA kernel


def default_decode_attention(device) -> "DecodeAttention":
    """The decode-attention path a backend's serving stack defaults to.

    Reads the backend's ``decode_attention`` capability string (part of
    the :class:`repro.hw.backend.Backend` protocol), so any registered
    platform -- not just the original pair -- picks its natural kernel.
    """
    return DecodeAttention(getattr(device, "decode_attention", "paged-opt"))


@dataclass(frozen=True)
class LlamaConfig:
    """Decoder configuration (Table 3 of the paper)."""

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    q_heads: int
    kv_heads: int
    vocab_size: int
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        for field_name in (
            "num_layers", "hidden_size", "intermediate_size",
            "q_heads", "kv_heads", "vocab_size",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.hidden_size % self.q_heads != 0:
            raise ValueError("hidden_size must be divisible by q_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.q_heads

    @property
    def num_parameters(self) -> float:
        h, i, v = self.hidden_size, self.intermediate_size, self.vocab_size
        qkv = h * (self.q_heads + 2 * self.kv_heads) * self.head_dim
        o = h * h
        mlp = 3 * h * i
        per_layer = qkv + o + mlp + 2 * h
        return self.num_layers * per_layer + 2 * v * h

    @property
    def weight_bytes(self) -> float:
        return self.num_parameters * self.dtype.itemsize

    def kv_bytes_per_token(self) -> int:
        return 2 * self.kv_heads * self.head_dim * self.dtype.itemsize


LLAMA_3_1_8B = LlamaConfig(
    name="Llama-3.1-8B-Instruct",
    num_layers=32,
    hidden_size=4096,
    intermediate_size=14336,
    q_heads=32,
    kv_heads=8,
    vocab_size=128256,
)

LLAMA_3_1_70B = LlamaConfig(
    name="Llama-3.1-70B-Instruct",
    num_layers=80,
    hidden_size=8192,
    intermediate_size=28672,
    q_heads=64,
    kv_heads=8,
    vocab_size=128256,
)


@dataclass(frozen=True)
class PhaseEstimate:
    """One phase (prefill, or a batch of decode steps)."""

    time: float
    activity: ActivityAccumulator

    def merged(self, other: "PhaseEstimate") -> "PhaseEstimate":
        acc = ActivityAccumulator()
        acc.merge(self.activity)
        acc.merge(other.activity)
        return PhaseEstimate(time=self.time + other.time, activity=acc)


@dataclass(frozen=True)
class DecodeBatchStats:
    """Order-independent aggregates of one decode batch's KV contexts.

    Decode-step cost depends on the per-request context lengths only
    through four integer aggregates (sum, KV-block sum, max, batch), so
    the serving engine can maintain these incrementally instead of
    rebuilding a length list every step.  ``residues`` is a histogram
    of ``context_len % block_size`` supporting O(block_size)
    :meth:`advanced` updates: when every request grows one token, only
    the ``residue == 0`` requests (exactly at a block boundary) start a
    new KV block.  All fields are integers, so the incremental path is
    bit-identical to a from-scratch rebuild.
    """

    batch: int
    total_context: int
    total_blocks: int
    max_context: int
    block_size: int = DEFAULT_BLOCK_SIZE
    residues: Tuple[int, ...] = ()

    @classmethod
    def from_context_lens(
        cls, context_lens: Sequence[int], block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "DecodeBatchStats":
        lens = [int(c) for c in context_lens]
        if not lens:
            raise ValueError("need at least one context length")
        if any(c <= 0 for c in lens):
            raise ValueError("context lengths must be positive")
        residues = [0] * block_size
        total = 0
        blocks = 0
        longest = 0
        for c in lens:
            total += c
            blocks += (c + block_size - 1) // block_size
            if c > longest:
                longest = c
            residues[c % block_size] += 1
        return cls(
            batch=len(lens),
            total_context=total,
            total_blocks=blocks,
            max_context=longest,
            block_size=block_size,
            residues=tuple(residues),
        )

    def advanced(self) -> "DecodeBatchStats":
        """The aggregates after every request grows by one token."""
        if not self.residues:
            raise ValueError("advanced() requires the residue histogram")
        residues = self.residues
        return DecodeBatchStats(
            batch=self.batch,
            total_context=self.total_context + self.batch,
            total_blocks=self.total_blocks + residues[0],
            max_context=self.max_context + 1,
            block_size=self.block_size,
            residues=(residues[-1],) + residues[:-1],
        )


@dataclass(frozen=True)
class GenerationEstimate:
    """End-to-end generation of ``output_len`` tokens for a batch."""

    device: str
    config_name: str
    batch: int
    input_len: int
    output_len: int
    prefill_time: float
    decode_time: float
    average_power: float

    @property
    def total_time(self) -> float:
        return self.prefill_time + self.decode_time

    @property
    def total_tokens(self) -> int:
        return self.batch * self.output_len

    @property
    def tokens_per_second(self) -> float:
        return self.total_tokens / self.total_time if self.total_time > 0 else 0.0

    @property
    def energy_joules(self) -> float:
        return self.average_power * self.total_time

    @property
    def tokens_per_joule(self) -> float:
        return self.total_tokens / self.energy_joules if self.energy_joules > 0 else 0.0


class LlamaCostModel:
    """Per-phase cost model of one Llama configuration on one device."""

    def __init__(
        self,
        config: LlamaConfig,
        device: Device,
        tp: Optional[TensorParallelConfig] = None,
        use_graphs: bool = True,
        static_bucket: int = 1,
    ) -> None:
        """``use_graphs`` models the CUDA Graphs / HPU Graphs tuning
        knob of Section 3.5: captured graphs replay with a tiny
        per-layer dispatch, eager mode pays per-op host launches.

        ``static_bucket`` models optimum-habana's static-shape
        bucketing: Gaudi's compiled graphs are shape-specialized, so
        the static KV cache is padded up to the next multiple of the
        bucket (1 = exact shapes, i.e. no bucketing cost).
        """
        if static_bucket < 1:
            raise ValueError("static_bucket must be >= 1")
        self.config = config
        self.device = device
        self.tp = tp or TensorParallelConfig(degree=1)
        self.use_graphs = use_graphs
        self.static_bucket = static_bucket
        self.tp.shard(config.q_heads, "q_heads")
        if self.tp.degree > 1:
            self.tp.shard(config.kv_heads, "kv_heads")
        # Shape-keyed memo caches over the phase estimates.  Cached
        # PhaseEstimates are shared between calls, so callers must
        # treat them (and their activity accumulators) as read-only.
        # Tensor-parallel degree 1 shares the cache *instances* across
        # models with the same pricing identity (sweeps and fleets
        # build many short-lived models over few device/config pairs).
        if self.tp.degree == 1:
            (
                self._prefill_cache,
                self._decode_terms_cache,
                self._decode_attn_cache,
            ) = _phase_caches(device, config, use_graphs, static_bucket)
        else:
            label = f"{device.name}/{config.name}/tp={self.tp.degree}"
            self._prefill_cache = CostCache(f"llama.prefill[{label}]", maxsize=2048)
            self._decode_terms_cache = CostCache(f"llama.decode_terms[{label}]", maxsize=1024)
            self._decode_attn_cache = CostCache(f"llama.decode_attn[{label}]", maxsize=8192)
        # Compiled per-(attention, batch) step closures for the
        # vectorized engine core; pure in the aggregates, so a plain
        # dict (no audit interplay) is sound.  Cross-instance reuse goes
        # through _SHARED_STEPPERS (see decode_stepper).
        self._stepper_cache: dict = {}

    @property
    def _layer_dispatch(self) -> float:
        return _LAYER_DISPATCH if self.use_graphs else _LAYER_DISPATCH_EAGER

    @property
    def _memo_ok(self) -> bool:
        """Whether phase-level memoization is sound right now.

        Two bypasses: (a) an observed tensor-parallel config must fire
        its per-call allreduce metrics/trace events, and (b) a
        non-static (degraded) topology prices live fault state, so its
        collective costs change over virtual time.  The pure device
        and kernel caches below this layer stay active either way.
        """
        tp = self.tp
        if tp.metrics is not None or tp.queue_events:
            return False
        library = tp.library
        if library is not None and not getattr(library.topology, "cache_static", True):
            return False
        return True

    # -- helpers ---------------------------------------------------------
    def _gemm(
        self, acc: ActivityAccumulator, m: int, k: int, n: int
    ) -> float:
        result = self.device.gemm(m, k, n, self.config.dtype)
        peak = self.device.peak_matrix_flops
        dtype_peak = self.device.spec.matrix.peak(self.config.dtype)
        acc.add_matrix(result.flops / dtype_peak, result.active_mac_fraction)
        itemsize = self.config.dtype.itemsize
        traffic = itemsize * (k * n + m * k + m * n)
        acc.add_memory(traffic / self.device.peak_bandwidth)
        del peak
        return result.time

    def _allreduce(self, acc: ActivityAccumulator, size_bytes: float) -> float:
        time = self.tp.allreduce_time(size_bytes)
        acc.add_comm(time)
        return time

    def _elementwise(self, acc: ActivityAccumulator, cost) -> float:
        stream_bw = (
            self.device.spec.memory.bandwidth
            * self.device.spec.memory.stream_efficiency
        )
        time = max(cost.compute_time, (cost.input_bytes + cost.output_bytes) / stream_bw)
        acc.add_vector(cost.compute_time)
        acc.add_memory(
            (cost.input_bytes + cost.output_bytes) / self.device.peak_bandwidth
        )
        return time

    # -- phases ----------------------------------------------------------
    def prefill(self, batch: int, seq_len: int) -> PhaseEstimate:
        """Process the whole prompt; produces the first token."""
        if batch <= 0 or seq_len <= 0:
            raise ValueError("batch and seq_len must be positive")
        if not self._memo_ok:
            return self._prefill_uncached(batch, seq_len)
        key = (batch, seq_len)
        phase = self._prefill_cache.get(key)
        if phase is None:
            phase = self._prefill_uncached(batch, seq_len)
            self._prefill_cache.put(key, phase)
        return phase

    def _prefill_uncached(self, batch: int, seq_len: int) -> PhaseEstimate:
        cfg, tp = self.config, self.tp
        acc = ActivityAccumulator()
        tokens = batch * seq_len
        hd = cfg.head_dim
        time = 0.0
        # one decoder layer
        time += self._elementwise(acc, layernorm_cost(self.device.spec, tokens * cfg.hidden_size, cfg.dtype))
        qkv_n = tp.shard((cfg.q_heads + 2 * cfg.kv_heads) * hd, "qkv width")
        time += self._gemm(acc, tokens, cfg.hidden_size, qkv_n)
        attn = attention_time(
            self.device,
            AttentionConfig(
                batch=batch,
                q_heads=cfg.q_heads // tp.degree,
                kv_heads=max(1, cfg.kv_heads // tp.degree),
                head_dim=hd,
                seq_q=seq_len,
                seq_kv=seq_len,
                dtype=cfg.dtype,
            ),
        )
        time += attn.time
        acc.add_matrix(
            min(attn.compute_time, attn.time), 1.0
        )
        acc.add_memory(min(attn.memory_time, attn.time))
        time += self._gemm(acc, tokens, tp.shard(cfg.q_heads * hd, "o-proj"), cfg.hidden_size)
        time += self._allreduce(acc, tokens * cfg.hidden_size * cfg.dtype.itemsize)
        time += self._elementwise(acc, layernorm_cost(self.device.spec, tokens * cfg.hidden_size, cfg.dtype))
        time += self._gemm(acc, tokens, cfg.hidden_size, tp.shard(2 * cfg.intermediate_size, "mlp up"))
        time += self._elementwise(acc, activation_cost(self.device.spec, tokens * cfg.intermediate_size // tp.degree, cfg.dtype))
        time += self._gemm(acc, tokens, tp.shard(cfg.intermediate_size, "mlp down"), cfg.hidden_size)
        time += self._allreduce(acc, tokens * cfg.hidden_size * cfg.dtype.itemsize)
        time += self._layer_dispatch
        time *= cfg.num_layers
        _scale_activity(acc, cfg.num_layers)
        # LM head for the first token only.
        time += self._gemm(acc, batch, cfg.hidden_size, tp.shard(cfg.vocab_size, "lm head"))
        return PhaseEstimate(time=time, activity=acc)

    def decode_step(
        self,
        batch: int,
        context_len,
        attention: DecodeAttention = DecodeAttention.STATIC,
    ) -> PhaseEstimate:
        """Generate one token per request.

        ``context_len`` is either a single KV length shared by the batch
        or a per-request sequence of lengths (continuous batching).
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        context_lens = (
            [int(context_len)] * batch
            if isinstance(context_len, (int, float))
            else [int(c) for c in context_len]
        )
        if len(context_lens) != batch:
            raise ValueError("context_len sequence must match batch size")
        if any(c <= 0 for c in context_lens):
            raise ValueError("context lengths must be positive")
        return self.decode_step_stats(
            DecodeBatchStats.from_context_lens(context_lens), attention
        )

    def decode_step_stats(
        self,
        stats: DecodeBatchStats,
        attention: DecodeAttention = DecodeAttention.STATIC,
    ) -> PhaseEstimate:
        """:meth:`decode_step` priced from batch aggregates.

        The serving engine maintains a :class:`DecodeBatchStats`
        incrementally across steps; this entry point skips the
        per-request length walk entirely.  One decode layer splits into
        a batch-level term (everything but attention -- memoized per
        batch size) plus the attention term (memoized per context
        aggregate); the split replays the exact call sequence of the
        monolithic implementation, so times and activity are
        bit-identical whether or not any cache hits.
        """
        terms = self._decode_terms(stats.batch)
        ln1, qkv, oproj, ar1, ln2, up, act, down, ar2, lm_head = terms
        cfg = self.config
        acc = ActivityAccumulator()
        time = 0.0
        time += ln1[0]
        acc.merge(ln1[1])
        time += qkv[0]
        acc.merge(qkv[1])
        time += self._decode_attention(acc, stats, attention)
        for term_time, term_acc in (oproj, ar1, ln2, up, act, down, ar2):
            time += term_time
            acc.merge(term_acc)
        time += self._layer_dispatch
        time *= cfg.num_layers
        _scale_activity(acc, cfg.num_layers)
        time += lm_head[0]
        acc.merge(lm_head[1])
        return PhaseEstimate(time=time, activity=acc)

    def _decode_terms(self, batch: int):
        """Per-call (time, activity) pairs for the non-attention slices
        of one decode layer plus the LM head, memoized per batch size."""
        if not self._memo_ok:
            return self._decode_terms_uncached(batch)
        terms = self._decode_terms_cache.get(batch)
        if terms is None:
            terms = self._decode_terms_uncached(batch)
            self._decode_terms_cache.put(batch, terms)
        return terms

    def _decode_terms_uncached(self, batch: int):
        cfg, tp = self.config, self.tp
        hd = cfg.head_dim

        def term(fn):
            acc = ActivityAccumulator()
            return (fn(acc), acc)

        spec = self.device.spec
        return (
            term(lambda acc: self._elementwise(
                acc, layernorm_cost(spec, batch * cfg.hidden_size, cfg.dtype))),
            term(lambda acc: self._gemm(
                acc, batch, cfg.hidden_size,
                tp.shard((cfg.q_heads + 2 * cfg.kv_heads) * hd, "qkv"))),
            term(lambda acc: self._gemm(
                acc, batch, tp.shard(cfg.q_heads * hd, "o-proj"), cfg.hidden_size)),
            term(lambda acc: self._allreduce(
                acc, batch * cfg.hidden_size * cfg.dtype.itemsize)),
            term(lambda acc: self._elementwise(
                acc, layernorm_cost(spec, batch * cfg.hidden_size, cfg.dtype))),
            term(lambda acc: self._gemm(
                acc, batch, cfg.hidden_size, tp.shard(2 * cfg.intermediate_size, "mlp up"))),
            term(lambda acc: self._elementwise(
                acc, activation_cost(spec, batch * cfg.intermediate_size // tp.degree, cfg.dtype))),
            term(lambda acc: self._gemm(
                acc, batch, tp.shard(cfg.intermediate_size, "mlp down"), cfg.hidden_size)),
            term(lambda acc: self._allreduce(
                acc, batch * cfg.hidden_size * cfg.dtype.itemsize)),
            term(lambda acc: self._gemm(
                acc, batch, cfg.hidden_size, tp.shard(cfg.vocab_size, "lm head"))),
        )

    def _decode_attention(
        self,
        acc: ActivityAccumulator,
        stats: DecodeBatchStats,
        attention: DecodeAttention,
    ) -> float:
        """Merge the decode-attention term for ``stats`` into ``acc``
        and return its time.  Pure in the aggregates (no collective
        calls), so it memoizes even on observed/degraded configs."""
        key = (
            attention, stats.batch, stats.total_context,
            stats.total_blocks, stats.max_context, stats.block_size,
        )
        cached = self._decode_attn_cache.get(key)
        if cached is None:
            attn_acc = ActivityAccumulator()
            time = self._decode_attention_uncached(attn_acc, stats, attention)
            cached = (time, attn_acc)
            self._decode_attn_cache.put(key, cached)
        acc.merge(cached[1])
        return cached[0]

    def _decode_attention_uncached(
        self,
        acc: ActivityAccumulator,
        stats: DecodeBatchStats,
        attention: DecodeAttention,
    ) -> float:
        cfg, tp = self.config, self.tp
        batch = stats.batch
        kv_heads = max(1, cfg.kv_heads // tp.degree)
        q_heads = cfg.q_heads // tp.degree
        if attention is DecodeAttention.STATIC:
            # Static bucketed KV cache: padded to the longest context,
            # then up to the shape bucket the compiled graph was built
            # for (optimum-habana's bucketing).
            padded_len = stats.max_context
            bucket = self.static_bucket
            padded_len = ((padded_len + bucket - 1) // bucket) * bucket
            kv_bytes = (
                2.0 * batch * kv_heads * cfg.head_dim * padded_len
                * cfg.dtype.itemsize
            )
            stream_bw = (
                self.device.spec.memory.bandwidth
                * self.device.spec.memory.stream_efficiency
            )
            time = kv_bytes / stream_bw
            acc.add_memory(kv_bytes / self.device.peak_bandwidth)
            flops = 4.0 * batch * q_heads * padded_len * cfg.head_dim
            acc.add_matrix(flops / self.device.spec.matrix.peak(cfg.dtype), 0.5)
            return time
        paged = PagedAttentionStats(
            batch=batch,
            total_context=stats.total_context,
            total_blocks=stats.total_blocks,
            max_context=stats.max_context,
            q_heads=q_heads,
            kv_heads=kv_heads,
            head_dim=cfg.head_dim,
            block_size=stats.block_size,
            dtype=cfg.dtype,
        )
        if attention is DecodeAttention.PAGED_BASE:
            result = vllm_base_paged_attention(paged, self.device.spec)
        elif attention is DecodeAttention.PAGED_OPT:
            result = vllm_opt_paged_attention(paged, self.device.spec)
        elif attention is DecodeAttention.PAGED_CUDA:
            result = a100_paged_attention(paged, self.device.spec)
        else:
            raise ValueError(f"unknown decode attention {attention!r}")
        acc.add_memory(paged.kv_bytes / self.device.peak_bandwidth)
        acc.add_vector(min(result.gather_time, result.time))
        return result.time

    # -- vectorized-engine fast path ---------------------------------------
    def _shared_stepper_key(
        self, attention: "DecodeAttention", batch: int, block_size: int
    ):
        """Cross-instance cache key, or None when the model cannot share.

        A compiled stepper depends only on the device (an identity-
        hashable cached singleton), the frozen config, the graphs/bucket
        tuning knobs, and the call shape -- provided there is no tensor
        parallelism (a TP library's collective costs are not part of
        the key, so sharded models keep instance-private caches).
        """
        if self.tp.degree != 1:
            return None
        return (
            self.device, self.config, self.use_graphs, self.static_bucket,
            attention, batch, block_size,
        )

    def decode_stepper(
        self,
        batch: int,
        attention: DecodeAttention,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> Callable[[int, int, int, ActivityAccumulator], float]:
        """Compile a one-decode-step pricing closure for a fixed batch.

        The returned ``stepper(total_context, total_blocks, max_context,
        acc)`` adds one step's activity directly into ``acc`` and
        returns the step time, bit-identical to
        ``decode_step_stats(...)`` followed by an
        ``ActivityAccumulator.merge`` -- the vectorized serving engine
        calls it once per virtual step, so everything that does not
        depend on the context aggregates is folded at build time.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        if not self._memo_ok:
            raise RuntimeError(
                "decode_stepper requires a memoizable config (no observed "
                "metrics, no degraded topology); use decode_step_stats"
            )
        key = (attention, batch, block_size)
        stepper = self._stepper_cache.get(key)
        if stepper is not None:
            return stepper
        shared_key = self._shared_stepper_key(attention, batch, block_size)
        if shared_key is not None:
            stepper = _SHARED_STEPPERS.get(shared_key)
        if stepper is None:
            stepper = self._build_stepper(batch, attention, block_size)
            if shared_key is not None:
                _SHARED_STEPPERS.put(shared_key, stepper)
        self._stepper_cache[key] = stepper
        return stepper

    def _build_stepper(
        self, batch: int, attention: DecodeAttention, block_size: int
    ) -> Callable[[int, int, int, ActivityAccumulator], float]:
        terms = self._decode_terms(batch)
        layers = self.config.num_layers
        lm_time, lm_acc = terms[9]

        def fields(acc: ActivityAccumulator) -> Tuple[float, float, float, float]:
            return (
                acc.matrix_seconds, acc.matrix_active_weighted,
                acc.vector_seconds, acc.memory_seconds,
            )

        # The scalar assembly starts every sum at 0.0 and adds ln1 then
        # qkv before the attention term, so that prefix folds into one
        # constant without changing any rounding.
        pre_t = 0.0 + terms[0][0] + terms[1][0]
        pre_m, pre_w, pre_v, pre_mem = (
            0.0 + x + y for x, y in zip(fields(terms[0][1]), fields(terms[1][1]))
        )
        # Post-attention terms land after the varying attention value,
        # so each stays an individual addition; zero terms are skipped
        # (x + 0.0 == x bitwise for the non-negative partials here).
        suf_t = tuple(t for t, _ in terms[2:9] if t != 0.0) + (self._layer_dispatch,)
        suf_m, suf_w, suf_v, suf_mem = (
            tuple(v for v in (fields(a)[i] for _, a in terms[2:9]) if v != 0.0)
            for i in range(4)
        )
        # The attention term never carries comm time, so the whole comm
        # chain (prefix, suffix, unscaled LM-head merge) is one constant.
        comm_step = 0.0 + terms[0][1].comm_seconds + terms[1][1].comm_seconds
        for _, acc in terms[2:9]:
            if acc.comm_seconds != 0.0:
                comm_step = comm_step + acc.comm_seconds
        comm_step = comm_step + lm_acc.comm_seconds
        lm_m, lm_w, lm_v, lm_mem = fields(lm_acc)
        attn_term = self._build_attention_term(batch, attention, block_size)

        def stepper(
            total_context: int, total_blocks: int, max_context: int,
            acc: ActivityAccumulator,
        ) -> float:
            a_t, a_m, a_w, a_v, a_mem = attn_term(
                total_context, total_blocks, max_context
            )
            t = pre_t + a_t
            for c in suf_t:
                t += c
            t *= layers
            t += lm_time
            m = pre_m + a_m
            for c in suf_m:
                m += c
            m *= layers
            m += lm_m
            acc.matrix_seconds += m
            w = pre_w + a_w
            for c in suf_w:
                w += c
            w *= layers
            w += lm_w
            acc.matrix_active_weighted += w
            v = pre_v + a_v
            for c in suf_v:
                v += c
            v *= layers
            v += lm_v
            acc.vector_seconds += v
            mem = pre_mem + a_mem
            for c in suf_mem:
                mem += c
            mem *= layers
            mem += lm_mem
            acc.memory_seconds += mem
            acc.comm_seconds += comm_step
            return t

        return stepper

    def _build_attention_term(
        self, batch: int, attention: DecodeAttention, block_size: int
    ) -> Callable[[int, int, int], Tuple[float, float, float, float, float]]:
        """Closure pricing the decode-attention term from aggregates:
        ``(total_context, total_blocks, max_context) -> (time, matrix,
        matrix_weighted, vector, memory)``, bit-identical to
        :meth:`_decode_attention_uncached`."""
        cfg, tp = self.config, self.tp
        spec = self.device.spec
        kv_heads = max(1, cfg.kv_heads // tp.degree)
        q_heads = cfg.q_heads // tp.degree
        hd = cfg.head_dim
        itemsize = cfg.dtype.itemsize
        peak_bw = self.device.peak_bandwidth
        if attention is DecodeAttention.STATIC:
            bucket = self.static_bucket
            stream_bw = spec.memory.bandwidth * spec.memory.stream_efficiency
            dtype_peak = spec.matrix.peak(cfg.dtype)
            # Folded prefixes of the twin's products; both are exact
            # integer-valued floats, so any association gives the same
            # bits as the twin's left-to-right chain.
            kv_coeff = 2.0 * batch * kv_heads * hd
            flops_coeff = 4.0 * batch * q_heads

            def static_term(total_context: int, total_blocks: int, max_context: int):
                padded_len = ((max_context + bucket - 1) // bucket) * bucket
                kv_bytes = kv_coeff * padded_len * itemsize
                time = kv_bytes / stream_bw
                mem = kv_bytes / peak_bw
                flops = flops_coeff * padded_len * hd
                mt = flops / dtype_peak
                return time, mt, mt * 0.5, 0.0, mem

            return static_term
        implementation = {
            DecodeAttention.PAGED_BASE: "vllm-base",
            DecodeAttention.PAGED_OPT: "vllm-opt",
            DecodeAttention.PAGED_CUDA: "cuda-paged-attention",
        }.get(attention)
        if implementation is None:
            raise ValueError(f"unknown decode attention {attention!r}")
        time_fn = build_paged_time_fn(implementation, batch, spec, cfg.dtype)
        block_bytes = 2 * kv_heads * hd * block_size * itemsize
        flops_coeff = 4.0 * q_heads * hd  # exact prefix of the flops chain
        needs_padded = attention is DecodeAttention.PAGED_BASE

        def paged_term(total_context: int, total_blocks: int, max_context: int):
            kv_bytes = float(total_blocks) * block_bytes
            flops = flops_coeff * total_context
            padded = (
                float(batch * math.ceil(max_context / block_size)) * block_bytes
                if needs_padded else 0.0
            )
            time, gather_time = time_fn(kv_bytes, padded, flops)
            return time, 0.0, 0.0, min(gather_time, time), kv_bytes / peak_bw

        return paged_term

    # -- end-to-end --------------------------------------------------------
    def generate(
        self,
        batch: int,
        input_len: int,
        output_len: int,
        attention: DecodeAttention = DecodeAttention.STATIC,
        decode_samples: int = 8,
    ) -> GenerationEstimate:
        """Fixed-length generation (the Section 3.5 serving setup)."""
        if output_len <= 0 or decode_samples <= 0:
            raise ValueError("output_len and decode_samples must be positive")
        prefill = self.prefill(batch, input_len)
        # Sample decode steps across the growing context and integrate.
        acc = ActivityAccumulator()
        acc.merge(prefill.activity)
        decode_time = 0.0
        samples = min(decode_samples, output_len)
        step_span = output_len / samples
        for i in range(samples):
            ctx = input_len + int((i + 0.5) * step_span)
            step = self.decode_step(batch, ctx, attention)
            decode_time += step.time * step_span
            _merge_scaled(acc, step.activity, step_span)
        total = prefill.time + decode_time
        profile = acc.profile(total)
        power = PowerModel(self.device.spec.power).power(profile)
        return GenerationEstimate(
            device=self.device.name,
            config_name=self.config.name,
            batch=batch,
            input_len=input_len,
            output_len=output_len,
            prefill_time=prefill.time,
            decode_time=decode_time,
            average_power=power,
        )

    # -- capacity ----------------------------------------------------------
    def max_kv_tokens(self) -> int:
        """KV-cache token capacity after weights (per TP shard)."""
        capacity = self.device.spec.memory.capacity_bytes * 0.92
        weights = self.config.weight_bytes / self.tp.degree
        free = capacity - weights
        per_token = self.config.kv_bytes_per_token() * self.config.num_layers / self.tp.degree
        return max(0, int(free / per_token))


def _scale_activity(acc: ActivityAccumulator, factor: float) -> None:
    acc.matrix_seconds *= factor
    acc.matrix_active_weighted *= factor
    acc.vector_seconds *= factor
    acc.memory_seconds *= factor


def _merge_scaled(acc: ActivityAccumulator, other: ActivityAccumulator, factor: float) -> None:
    acc.matrix_seconds += other.matrix_seconds * factor
    acc.matrix_active_weighted += other.matrix_active_weighted * factor
    acc.vector_seconds += other.vector_seconds * factor
    acc.memory_seconds += other.memory_seconds * factor
