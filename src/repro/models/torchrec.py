"""TorchRec-style multi-device RecSys serving (A100 only).

Section 3.5: "Because Intel Gaudi SDK currently lacks support for
multi-device RecSys serving (a feature that is natively supported in
TorchRec for serving RecSys over multi-GPUs), we focus on single-device
RecSys serving for Gaudi-2."  This module implements exactly that
asymmetry:

* :class:`TorchRecShardedDlrm` -- TorchRec's model-parallel recipe on
  the DGX A100: embedding tables are table-wise sharded across GPUs,
  each GPU looks up its local tables for the *whole* batch, and an
  AlltoAll over NVSwitch redistributes the pooled embeddings to the
  batch-sharded data-parallel MLPs.
* :func:`gaudi_multi_device_recsys` -- raises
  :class:`MultiDeviceUnsupportedError`, documenting the software gap
  the paper reports (and tests assert).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.comm import NcclLibrary
from repro.hw.device import Device
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.dlrm import DlrmConfig, DlrmCostModel


class MultiDeviceUnsupportedError(NotImplementedError):
    """The Gaudi SDK has no TorchRec equivalent (Section 3.5)."""


def gaudi_multi_device_recsys(config: DlrmConfig, num_devices: int):
    """Multi-device RecSys on Gaudi: not supported, as in the paper."""
    raise MultiDeviceUnsupportedError(
        f"multi-device RecSys serving of {config.name} over {num_devices} "
        "Gaudi-2 devices is unsupported: the Gaudi SDK provides no "
        "TorchRec backend (Section 3.5 of the paper); serve on a single "
        "device instead"
    )


@dataclass(frozen=True)
class ShardedForwardEstimate:
    """One multi-GPU DLRM forward pass."""

    device: str
    config_name: str
    num_devices: int
    global_batch: int
    time: float
    breakdown: Dict[str, float]
    average_power_per_device: float

    @property
    def requests_per_second(self) -> float:
        return self.global_batch / self.time if self.time > 0 else 0.0

    @property
    def node_energy_joules(self) -> float:
        return self.average_power_per_device * self.num_devices * self.time


class TorchRecShardedDlrm:
    """Table-wise sharded DLRM over a DGX A100 node."""

    def __init__(self, config: DlrmConfig, device: Device, num_devices: int) -> None:
        family = getattr(device, "family", "")
        if family == "gaudi":
            gaudi_multi_device_recsys(config, num_devices)
        if family != "cuda":
            raise TypeError(f"unsupported device {device!r} (family {family!r})")
        if not 2 <= num_devices <= 8:
            raise ValueError("num_devices must be in [2, 8] for one DGX node")
        self.config = config
        self.device = device
        self.num_devices = num_devices
        self.nccl = NcclLibrary()
        # Per-device view: a slice of the tables, the full batch.
        self.local_tables = math.ceil(config.num_tables / num_devices)

    def forward(self, global_batch: int) -> ShardedForwardEstimate:
        """One inference over ``global_batch`` samples across the node."""
        if global_batch < self.num_devices:
            raise ValueError("global_batch must cover every device")
        config = self.config
        acc = ActivityAccumulator()
        breakdown: Dict[str, float] = {}

        # Phase 1 (model parallel): every device gathers its local
        # tables for the FULL batch.
        local_config = DlrmConfig(
            name=config.name,
            num_tables=self.local_tables,
            rows_per_table=config.rows_per_table,
            embedding_dim=config.embedding_dim,
            pooling=config.pooling,
            dense_features=config.dense_features,
            bottom_mlp=config.bottom_mlp,
            top_mlp=config.top_mlp,
            cross_low_rank=config.cross_low_rank,
            cross_layers=config.cross_layers,
        )
        local_model = DlrmCostModel(local_config, self.device)
        breakdown["sharded_embedding"] = local_model.embedding_time(global_batch, acc)

        # Phase 2: AlltoAll of pooled embeddings (each device keeps the
        # rows of its batch shard for all tables).
        pooled_bytes = (
            global_batch
            * self.local_tables
            * config.embedding_dim
            * config.dtype.itemsize
        )
        alltoall = self.nccl.all_to_all(pooled_bytes, self.num_devices)
        breakdown["alltoall"] = alltoall.time
        acc.add_comm(alltoall.time)

        # Phase 3 (data parallel): MLPs + interaction on the batch shard.
        local_batch = global_batch // self.num_devices
        dense_model = DlrmCostModel(config, self.device)
        breakdown["bottom_mlp"] = dense_model._mlp(
            acc, local_batch, config.dense_features, config.bottom_mlp
        )
        breakdown["interaction"] = dense_model.interaction_time(local_batch, acc)
        breakdown["top_mlp"] = dense_model._mlp(
            acc, local_batch, config.interaction_width, config.top_mlp
        )

        total = sum(breakdown.values())
        power = PowerModel(self.device.spec.power).power(acc.profile(total))
        return ShardedForwardEstimate(
            device=self.device.name,
            config_name=config.name,
            num_devices=self.num_devices,
            global_batch=global_batch,
            time=total,
            breakdown=dict(breakdown),
            average_power_per_device=power,
        )
