"""Model graphs for the graph compiler.

:class:`~repro.models.llama.LlamaCostModel` walks operator costs
directly; this module instead *builds the operator graph* of a decoder
layer, so the graph compiler's passes (fusion, MME configuration,
MME<->TPC pipelining) and the profiler can be exercised on a real model
structure -- the PyTorch-level view of Figure 2(a) feeding the compiler
of Section 2.2.
"""

from __future__ import annotations

from repro.graph.ir import Engine, Graph
from repro.hw.device import Device
from repro.kernels.attention import AttentionConfig, attention_time
from repro.kernels.elementwise import activation_cost, layernorm_cost
from repro.models.llama import LlamaConfig


def _gemm_op(
    graph: Graph,
    device: Device,
    name: str,
    m: int,
    k: int,
    n: int,
    dtype,
    inputs,
) -> object:
    result = device.gemm(m, k, n, dtype)
    itemsize = dtype.itemsize
    op = graph.add_op(
        name,
        Engine.MME,
        compute_time=result.flops / device.spec.matrix.peak(dtype),
        input_bytes=float(itemsize) * (m * k + k * n),
        output_bytes=float(itemsize) * m * n,
        inputs=inputs,
        sliceable=True,
    )
    op.annotations["gemm_shape"] = (1, m, k, n)
    return op


def _tpc_op(graph: Graph, name: str, cost, inputs, sliceable=True) -> object:
    return graph.add_op(
        name,
        Engine.TPC,
        compute_time=cost.compute_time,
        input_bytes=cost.input_bytes,
        output_bytes=cost.output_bytes,
        inputs=inputs,
        fusable=True,
        sliceable=sliceable,
    )


def build_decoder_layer_graph(
    config: LlamaConfig,
    device: Device,
    batch: int,
    seq_len: int,
) -> Graph:
    """One prefill decoder layer as an operator graph.

    The op list mirrors the PyTorch trace the graph compiler consumes:
    norm -> QKV GEMM -> attention -> O-proj GEMM -> norm -> up/gate
    GEMM -> activation -> down GEMM.
    """
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    spec = device.spec
    dtype = config.dtype
    tokens = batch * seq_len
    hd = config.head_dim
    graph = Graph(f"{config.name}-layer")

    norm1 = _tpc_op(
        graph, "input_norm",
        layernorm_cost(spec, tokens * config.hidden_size, dtype), [],
    )
    qkv = _gemm_op(
        graph, device, "qkv_proj",
        tokens, config.hidden_size, (config.q_heads + 2 * config.kv_heads) * hd,
        dtype, [norm1],
    )
    attn_cfg = AttentionConfig(
        batch=batch, q_heads=config.q_heads, kv_heads=config.kv_heads,
        head_dim=hd, seq_q=seq_len, seq_kv=seq_len, dtype=dtype,
    )
    attn = attention_time(device, attn_cfg)
    attention = graph.add_op(
        "attention",
        Engine.MME,
        compute_time=attn.compute_time,
        input_bytes=attn_cfg.qo_bytes / 2 + attn_cfg.kv_bytes,
        output_bytes=attn_cfg.qo_bytes / 2,
        inputs=[qkv],
        sliceable=True,
    )
    o_proj = _gemm_op(
        graph, device, "o_proj",
        tokens, config.q_heads * hd, config.hidden_size, dtype, [attention],
    )
    norm2 = _tpc_op(
        graph, "post_attention_norm",
        layernorm_cost(spec, tokens * config.hidden_size, dtype), [o_proj],
    )
    up_gate = _gemm_op(
        graph, device, "up_gate_proj",
        tokens, config.hidden_size, 2 * config.intermediate_size, dtype, [norm2],
    )
    act = _tpc_op(
        graph, "silu_mul",
        activation_cost(spec, tokens * config.intermediate_size, dtype), [up_gate],
    )
    _gemm_op(
        graph, device, "down_proj",
        tokens, config.intermediate_size, config.hidden_size, dtype, [act],
    )
    graph.validate()
    return graph
