"""Runtime invariant auditing, typed failure taxonomy, and watchdogs.

See :mod:`repro.audit.auditor` for the invariant catalogue and modes
(``REPRO_AUDIT=off|sample|strict``), :mod:`repro.audit.errors` for the
:class:`AuditError` taxonomy, and :mod:`repro.audit.watchdog` for the
per-point step/wall watchdog that converts wedged simulations into
typed partial results.
"""

from repro.audit.auditor import (
    AuditMode,
    Auditor,
    RunAudit,
    audit_scope,
    configure,
    get_auditor,
    resolve_mode,
)
from repro.audit.errors import (
    AuditError,
    ClockError,
    CollectiveAuditError,
    ConfigError,
    FleetConservationError,
    FleetDrainError,
    FleetRoutingError,
    JournalError,
    KvConservationError,
    LifecycleError,
    MemoEquivalenceError,
    ReportConsistencyError,
    SurrogateEquivalenceError,
    TokenConservationError,
    WatchdogExceeded,
    WorkerRetryExhausted,
)
from repro.audit.watchdog import Watchdog

__all__ = [
    "AuditError",
    "AuditMode",
    "Auditor",
    "ClockError",
    "CollectiveAuditError",
    "ConfigError",
    "FleetConservationError",
    "FleetDrainError",
    "FleetRoutingError",
    "JournalError",
    "KvConservationError",
    "LifecycleError",
    "MemoEquivalenceError",
    "ReportConsistencyError",
    "RunAudit",
    "SurrogateEquivalenceError",
    "TokenConservationError",
    "Watchdog",
    "WatchdogExceeded",
    "WorkerRetryExhausted",
    "audit_scope",
    "configure",
    "get_auditor",
    "resolve_mode",
]
