"""Typed error taxonomy for the runtime invariant auditor.

Every invariant class the auditor enforces has its own exception type,
all rooted at :class:`AuditError`, so callers can catch the whole
family or one specific violation kind.  Each class carries a ``check``
slug -- the same key the auditor uses for its violation counters, the
``repro top`` audit section, and journal records.

:class:`ConfigError` doubles as a :class:`ValueError` so construction-
time validation of configs (:class:`~repro.faults.chaos.ChaosConfig`,
:class:`~repro.faults.plan.FaultPlan`, sweep/hardware knobs) stays
backward compatible with callers that catch ``ValueError``.

:class:`WatchdogExceeded` is raised by a
:class:`~repro.audit.watchdog.Watchdog` when a simulation exceeds its
step or wall-clock budget; the engine converts it into a typed partial
result (``ServingReport.watchdog_reason``) instead of losing the run.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "AuditError",
    "ClockError",
    "CollectiveAuditError",
    "ConfigError",
    "FleetConservationError",
    "FleetDrainError",
    "FleetRoutingError",
    "JournalError",
    "KvConservationError",
    "LifecycleError",
    "MemoEquivalenceError",
    "ReportConsistencyError",
    "SurrogateEquivalenceError",
    "TokenConservationError",
    "WatchdogExceeded",
    "WorkerRetryExhausted",
]


class AuditError(RuntimeError):
    """Base of the invariant-violation taxonomy."""

    #: Counter slug for this violation class.
    check = "audit"


class KvConservationError(AuditError):
    """KV blocks leaked, double-freed, or double-counted."""

    check = "kv_conservation"


class LifecycleError(AuditError):
    """A request took an illegal state transition."""

    check = "lifecycle"


class ClockError(AuditError):
    """The virtual clock moved backwards within one run."""

    check = "clock"


class TokenConservationError(AuditError):
    """Tokens held by requests disagree with tokens emitted by steps."""

    check = "token_conservation"


class ReportConsistencyError(AuditError):
    """A report's aggregates are internally inconsistent."""

    check = "report_consistency"


class MemoEquivalenceError(AuditError):
    """A sampled cache hit did not match its recomputed value."""

    check = "memo_equivalence"


class SurrogateEquivalenceError(AuditError):
    """A spot-sampled surrogate prediction strayed past its certified
    error bound from the exact cost model it was fitted to."""

    check = "surrogate_equivalence"


class CollectiveAuditError(AuditError):
    """A collective reported an impossible cost or participant count."""

    check = "collective"


class ConfigError(AuditError, ValueError):
    """A config field is out of its legal range (names the field)."""

    check = "config"


class WatchdogExceeded(AuditError):
    """A simulation exceeded its per-point step or wall budget."""

    check = "watchdog"

    def __init__(
        self,
        message: str,
        steps: Optional[int] = None,
        wall_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.steps = steps
        self.wall_seconds = wall_seconds


class FleetRoutingError(AuditError):
    """The gateway dispatched a request to an unroutable node."""

    check = "fleet_routing"


class FleetConservationError(AuditError):
    """Fleet request accounting broke: admitted requests were lost,
    double-served, or double-counted across failover."""

    check = "fleet_conservation"


class FleetDrainError(AuditError):
    """A node drain or rolling upgrade lost in-flight work: a drained
    node retained attempts, or an upgrade schedule never completed."""

    check = "fleet_drain"


class JournalError(AuditError):
    """A run journal is unreadable or inconsistent with its request."""

    check = "journal"


class WorkerRetryExhausted(AuditError):
    """A process-pool task kept dying past the retry budget."""

    check = "worker_retry"
