"""Per-point step/wall watchdog for long simulations.

A wedged simulation (a scheduling livelock, a pathological parameter
point) would otherwise stall a whole sweep.  A :class:`Watchdog` bounds
one simulated point by engine steps and/or wall-clock seconds; tripping
raises :class:`~repro.audit.errors.WatchdogExceeded`, which the serving
engine converts into a typed *partial* report
(``ServingReport.watchdog_reason``) so the sweep records the point as
degraded instead of hanging or dying.

Budgets come from the constructor or the ``REPRO_WATCHDOG_STEPS`` /
``REPRO_WATCHDOG_WALL`` environment variables (see :meth:`from_env`).
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.audit.errors import ConfigError, WatchdogExceeded

__all__ = ["Watchdog"]


class Watchdog:
    """Step/wall budget for one simulated point."""

    __slots__ = ("max_steps", "max_wall_seconds", "_started")

    def __init__(
        self,
        max_steps: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ) -> None:
        if max_steps is not None and max_steps < 1:
            raise ConfigError(f"max_steps must be >= 1, got {max_steps!r}")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ConfigError(
                f"max_wall_seconds must be positive, got {max_wall_seconds!r}"
            )
        self.max_steps = max_steps
        self.max_wall_seconds = max_wall_seconds
        self._started: Optional[float] = None

    @classmethod
    def from_env(cls) -> Optional["Watchdog"]:
        """A watchdog per ``REPRO_WATCHDOG_STEPS`` / ``REPRO_WATCHDOG_WALL``,
        or None when neither is set."""
        steps = os.environ.get("REPRO_WATCHDOG_STEPS")
        wall = os.environ.get("REPRO_WATCHDOG_WALL")
        if not steps and not wall:
            return None
        return cls(
            max_steps=int(steps) if steps else None,
            max_wall_seconds=float(wall) if wall else None,
        )

    @property
    def armed(self) -> bool:
        return self.max_steps is not None or self.max_wall_seconds is not None

    def start(self) -> "Watchdog":
        """Arm the wall-clock budget; returns self for chaining."""
        self._started = time.monotonic()
        return self

    def elapsed(self) -> float:
        return 0.0 if self._started is None else time.monotonic() - self._started

    def check(self, steps: int) -> None:
        """Raise :class:`WatchdogExceeded` when a budget is blown."""
        if self.max_steps is not None and steps >= self.max_steps:
            raise WatchdogExceeded(
                f"step budget exceeded: {steps} engine steps >= {self.max_steps}",
                steps=steps,
            )
        if self.max_wall_seconds is not None and self._started is not None:
            elapsed = time.monotonic() - self._started
            if elapsed >= self.max_wall_seconds:
                raise WatchdogExceeded(
                    f"wall budget exceeded: {elapsed:.3f}s >= "
                    f"{self.max_wall_seconds:g}s after {steps} engine steps",
                    steps=steps,
                    wall_seconds=elapsed,
                )
