"""Pluggable runtime invariant auditor.

The auditor cross-checks the simulator's internal accounting while it
runs -- the same class of conservation checks detailed-simulator
validation work uses to keep results trustworthy.  It is wired through
the serving engine, scheduler, KV block manager, collectives, and the
memo caches; every hook is a cheap ``is None`` test when auditing is
off, so unaudited runs pay nothing.

Modes (env ``REPRO_AUDIT``, CLI ``--audit``):

* ``off``    -- no auditor; hooks are no-ops (the default).
* ``sample`` -- invariants are checked (expensive ones on a seeded
  sample); violations are *counted* and surfaced, never raised.
* ``strict`` -- every violation raises its typed
  :class:`~repro.audit.errors.AuditError` subclass immediately.

Invariants covered:

* **KV block conservation** -- free + allocated block counts always
  equal the pool size, block ids are never double-owned, and a
  completed run leaves ``allocated_blocks == 0``.
* **Request lifecycle legality** -- only
  ``waiting -> running -> {preempted(waiting), finished, shed,
  failed}`` transitions are legal.
* **Virtual-clock monotonicity** -- within one run the clock never
  moves backwards.
* **Token conservation** -- tokens held by requests at the end equal
  tokens emitted by prefill/decode steps minus tokens rolled back by
  preemption/resubmission.
* **Report consistency** -- p50 <= p99, latency aggregates are
  non-negative, and finished + shed + failed + unfinished == submitted.
* **Sampled memo equivalence** -- a seeded fraction of cost-cache hits
  is recomputed and compared against the cached value.
* **Sampled surrogate equivalence** -- a seeded fraction of fitted
  fast-path (surrogate) predictions is recomputed through the exact
  cost model and held to the surrogate's certified error bound.
* **Collective sanity** -- collective costs are finite, non-negative,
  and never involve more participants than the TP degree.
"""

from __future__ import annotations

import enum
import math
import os
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.audit.errors import (
    AuditError,
    ClockError,
    CollectiveAuditError,
    ConfigError,
    KvConservationError,
    LifecycleError,
    MemoEquivalenceError,
    ReportConsistencyError,
    SurrogateEquivalenceError,
    TokenConservationError,
)

__all__ = [
    "AuditMode",
    "Auditor",
    "RunAudit",
    "audit_scope",
    "configure",
    "get_auditor",
    "resolve_mode",
]

#: Default fraction of cache hits re-verified in sample/strict modes.
DEFAULT_SAMPLE_FRACTION = 0.05

#: Cap on retained violation messages (counters are never capped).
MAX_RECORDED_VIOLATIONS = 64


class AuditMode(enum.Enum):
    OFF = "off"
    SAMPLE = "sample"
    STRICT = "strict"


def resolve_mode(value: Optional[str] = None) -> AuditMode:
    """Resolve an explicit mode string, else the ``REPRO_AUDIT`` env
    variable, else ``off``.  Unknown values raise :class:`ConfigError`."""
    raw = value if value is not None else os.environ.get("REPRO_AUDIT", "off")
    raw = (raw or "off").strip().lower()
    aliases = {"": "off", "0": "off", "false": "off", "1": "strict", "true": "strict"}
    raw = aliases.get(raw, raw)
    try:
        return AuditMode(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_AUDIT/--audit must be one of off|sample|strict, got {value!r}"
        ) from None


class _SampleGate:
    """Deterministic Bernoulli gate (xorshift, seeded) -- avoids
    perturbing any :mod:`random`/:mod:`numpy` stream the simulator uses."""

    __slots__ = ("_state", "_threshold")

    def __init__(self, seed: int, fraction: float) -> None:
        self._state = (seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF or 1
        self._threshold = int(fraction * 2**32)

    def fire(self) -> bool:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x < self._threshold


class Auditor:
    """Process-wide invariant auditor (see module docstring).

    One auditor serves any number of runs: per-run state (clock, token
    ledger) lives in the :class:`RunAudit` handles that
    :meth:`begin_run` hands out, while violation counters aggregate
    here across the whole process.
    """

    def __init__(
        self,
        mode: AuditMode = AuditMode.STRICT,
        sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_fraction <= 1.0:
            raise ConfigError(
                f"sample_fraction must be in [0, 1], got {sample_fraction!r}"
            )
        self.mode = mode
        self.sample_fraction = sample_fraction
        self.checks: Counter = Counter()
        self.violation_counts: Counter = Counter()
        self.violations: List[Tuple[str, str]] = []
        self.memo_verified = 0
        self.surrogate_verified = 0
        self.runs_audited = 0
        self._memo_gate = _SampleGate(seed, sample_fraction)
        self._deep_gate = _SampleGate(seed + 1, sample_fraction)
        self._surrogate_gate = _SampleGate(seed + 2, sample_fraction)

    # -- core ----------------------------------------------------------
    @property
    def strict(self) -> bool:
        return self.mode is AuditMode.STRICT

    def record_violation(self, error: AuditError) -> None:
        """Count a violation; raise it in strict mode."""
        self.violation_counts[error.check] += 1
        if len(self.violations) < MAX_RECORDED_VIOLATIONS:
            self.violations.append((error.check, str(error)))
        if self.strict:
            raise error

    def check(self, condition: bool, error_cls, message: str) -> bool:
        """Count one check; on failure record (and in strict, raise) a
        typed violation.  Returns the condition for convenience."""
        self.checks[error_cls.check] += 1
        if not condition:
            self.record_violation(error_cls(message))
        return condition

    @property
    def total_violations(self) -> int:
        return sum(self.violation_counts.values())

    # -- per-run handles ----------------------------------------------
    def begin_run(self, label: str = "run") -> "RunAudit":
        self.runs_audited += 1
        return RunAudit(self, label)

    # -- lifecycle -----------------------------------------------------
    _LEGAL_TRANSITIONS = frozenset({
        ("waiting", "running"),
        ("waiting", "waiting"),      # requeue / client resubmission
        ("waiting", "shed"),
        ("waiting", "failed"),
        ("running", "finished"),
        ("running", "waiting"),      # preemption (capacity or fault)
        ("running", "shed"),
        ("running", "failed"),
    })

    def on_transition(self, request_id: int, old, new) -> None:
        """Validate one request-state transition (enum or str values)."""
        old_v = getattr(old, "value", old)
        new_v = getattr(new, "value", new)
        self.check(
            (old_v, new_v) in self._LEGAL_TRANSITIONS,
            LifecycleError,
            f"request {request_id}: illegal transition {old_v} -> {new_v}",
        )

    # -- KV conservation ----------------------------------------------
    def on_kv_op(self, manager) -> None:
        """Cheap O(1) conservation after every pool mutation, plus a
        sampled deep scan for double-owned or out-of-range block ids."""
        free = manager.free_blocks
        allocated = manager.allocated_blocks
        self.check(
            free + allocated == manager.num_blocks,
            KvConservationError,
            f"block conservation broken: {free} free + {allocated} allocated "
            f"!= {manager.num_blocks} total",
        )
        if self._deep_gate.fire():
            self.deep_check_kv(manager)

    def deep_check_kv(self, manager) -> None:
        """Full O(blocks) ownership scan of the pool."""
        self.checks[KvConservationError.check] += 1
        owned: Dict[int, int] = {}
        for request_id, blocks in manager.iter_tables():
            for block in blocks:
                if not 0 <= block < manager.num_blocks:
                    self.record_violation(KvConservationError(
                        f"request {request_id} owns out-of-range block {block}"
                    ))
                elif block in owned:
                    self.record_violation(KvConservationError(
                        f"block {block} owned by both request {owned[block]} "
                        f"and request {request_id}"
                    ))
                owned[block] = request_id
        doubled = set(manager.free_block_ids()) & set(owned)
        if doubled:
            self.record_violation(KvConservationError(
                f"blocks {sorted(doubled)[:8]} are simultaneously free and allocated"
            ))

    def check_kv_drained(self, manager, where: str = "end of run") -> None:
        """A finished run must leave the pool empty (no leaked blocks)."""
        self.check(
            manager.allocated_blocks == 0,
            KvConservationError,
            f"KV pool not drained at {where}: {manager.allocated_blocks} "
            f"blocks still allocated",
        )

    # -- vectorized engine core ---------------------------------------
    def check_core_invariants(self, core) -> None:
        """Vectorized invariant sweep over a fast-path
        :class:`~repro.serving.engine_core.EngineCore`.

        The scalar engine audits through per-object hooks; the
        struct-of-arrays fast path has no per-token object traffic, so
        its invariants are asserted directly on the slot arrays: cheap
        shadow-KV block conservation every call, plus a sampled deep
        scan for slot aliasing and per-slot state legality.
        """
        import numpy as np

        held = 0
        if core.run_slots:
            slots = np.asarray(core.run_slots, dtype=np.intp)
            context = core.input_tokens[slots] + core.generated[slots] - 1
            held = int(
                np.sum(-(-context // core.block_size))
            )
        self.check(
            core.free_blocks + held == core.num_blocks,
            KvConservationError,
            f"shadow block conservation broken: {core.free_blocks} free + "
            f"{held} held != {core.num_blocks} total",
        )
        if not self._deep_gate.fire():
            return
        self.checks[LifecycleError.check] += 1
        live = core.run_slots + core.waiting_slots()
        if len(set(live)) != len(live):
            self.record_violation(LifecycleError(
                "engine core: a slot id appears twice in the live set"
            ))
        free = set(core.free_slots)
        aliased = free.intersection(live)
        if aliased:
            self.record_violation(LifecycleError(
                f"engine core: slots {sorted(aliased)[:8]} are simultaneously "
                "free and live"
            ))
        if live:
            slots = np.asarray(live, dtype=np.intp)
            over = core.generated[slots] > core.output_tokens[slots]
            if bool(np.any(over)):
                bad = slots[over][:8].tolist()
                self.record_violation(TokenConservationError(
                    f"engine core: slots {bad} generated past their output "
                    "budget"
                ))
            started = ~np.isnan(core.first_token[slots])
            unstarted_with_tokens = (core.generated[slots] > 0) & ~started
            if bool(np.any(unstarted_with_tokens)):
                bad = slots[unstarted_with_tokens][:8].tolist()
                self.record_violation(LifecycleError(
                    f"engine core: slots {bad} hold tokens without a "
                    "first-token timestamp"
                ))
        waiting = core.waiting_slots()
        if waiting:
            arrivals = core.arrival[np.asarray(waiting, dtype=np.intp)]
            if bool(np.any(arrivals[1:] < arrivals[:-1])):
                self.record_violation(LifecycleError(
                    "engine core: waiting queue is not arrival-sorted"
                ))

    # -- collectives ---------------------------------------------------
    def check_collective(
        self, seconds: float, size_bytes: float, participants: int, degree: int
    ) -> None:
        self.check(
            seconds >= 0.0 and math.isfinite(seconds),
            CollectiveAuditError,
            f"collective reported an impossible cost {seconds!r}s "
            f"({size_bytes:.0f} bytes)",
        )
        self.check(
            2 <= participants <= degree,
            CollectiveAuditError,
            f"collective ran with {participants} participants "
            f"outside [2, degree={degree}]",
        )

    # -- memo equivalence ---------------------------------------------
    def should_verify_memo(self) -> bool:
        """Seeded gate: recompute this cache hit and compare?"""
        return self._memo_gate.fire()

    def on_memo_result(self, name: str, key, cached, fresh) -> None:
        self.checks[MemoEquivalenceError.check] += 1
        self.memo_verified += 1
        try:
            equal = cached == fresh
        except Exception:
            equal = False
        if not equal:
            self.record_violation(MemoEquivalenceError(
                f"cache {name!r} hit for key {key!r} diverged from recompute: "
                f"cached={cached!r} fresh={fresh!r}"
            ))

    # -- surrogate equivalence ----------------------------------------
    def should_verify_surrogate(self) -> bool:
        """Seeded gate: recompute this surrogate prediction exactly?"""
        return self._surrogate_gate.fire()

    def on_surrogate_result(
        self,
        surface: str,
        key,
        predicted: float,
        exact: float,
        tolerance: float,
        slack: float = 2.0,
    ) -> bool:
        """Compare one spot-sampled surrogate prediction to its exact
        recompute.

        ``tolerance`` is the surrogate's certified held-out max
        relative error; runtime queries may sit slightly off the
        held-out distribution, so the spot check allows ``slack`` times
        that bound before flagging a violation.  Returns whether the
        prediction passed.
        """
        self.checks[SurrogateEquivalenceError.check] += 1
        self.surrogate_verified += 1
        denom = abs(exact) if exact else 1.0
        rel = abs(predicted - exact) / denom
        ok = math.isfinite(rel) and rel <= slack * tolerance
        if not ok:
            self.record_violation(SurrogateEquivalenceError(
                f"surrogate {surface!r} prediction for {key!r} strayed "
                f"{rel:.2%} from the exact model (certified bound "
                f"{tolerance:.2%}, slack {slack:g}x): "
                f"predicted={predicted!r} exact={exact!r}"
            ))
        return ok

    # -- reporting -----------------------------------------------------
    def render(self) -> str:
        """Fixed-format audit summary (the ``repro top`` section)."""
        lines = [
            f"  mode       : {self.mode.value} "
            f"(sample fraction {self.sample_fraction:g})",
            f"  checks     : {sum(self.checks.values())} performed over "
            f"{self.runs_audited} audited runs | {self.memo_verified} memo "
            f"hits re-verified | {self.surrogate_verified} surrogate "
            "predictions spot-checked",
        ]
        if self.total_violations == 0:
            lines.append("  violations : 0")
        else:
            lines.append(f"  violations : {self.total_violations}")
            for check, count in sorted(self.violation_counts.items()):
                lines.append(f"    {check:<20s} {count}")
            for check, message in self.violations[:8]:
                lines.append(f"    [{check}] {message}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "mode": self.mode.value,
            "checks": int(sum(self.checks.values())),
            "violations": int(self.total_violations),
            "violation_counts": dict(sorted(self.violation_counts.items())),
            "memo_verified": self.memo_verified,
            "surrogate_verified": self.surrogate_verified,
            "runs_audited": self.runs_audited,
        }

    def publish_metrics(self, registry) -> None:
        """Export counters as ``audit.*`` metrics (delta-idempotent)."""
        pairs = [("audit.checks", sum(self.checks.values())),
                 ("audit.violations", self.total_violations),
                 ("audit.memo_verified", self.memo_verified),
                 ("audit.surrogate_verified", self.surrogate_verified)]
        pairs += [
            (f"audit.violations.{check}", count)
            for check, count in self.violation_counts.items()
        ]
        for name, value in pairs:
            counter = registry.counter(name)
            delta = value - counter.value
            if delta > 0:
                counter.inc(delta)


class RunAudit:
    """Per-run audit state: the virtual clock and the token ledger.

    Violations still count (and raise) on the parent :class:`Auditor`;
    this handle only isolates state that must reset between runs so
    several engines in one process audit independently.
    """

    __slots__ = ("auditor", "label", "_last_clock", "tokens_emitted",
                 "tokens_rolled_back", "_token_baseline")

    def __init__(self, auditor: Auditor, label: str) -> None:
        self.auditor = auditor
        self.label = label
        self._last_clock = -math.inf
        self.tokens_emitted = 0
        self.tokens_rolled_back = 0
        self._token_baseline = 0

    # -- clock ---------------------------------------------------------
    def observe_clock(self, now: float) -> None:
        self.auditor.check(
            now >= self._last_clock,
            ClockError,
            f"{self.label}: virtual clock moved backwards "
            f"({self._last_clock!r} -> {now!r})",
        )
        if now > self._last_clock:
            self._last_clock = now

    # -- token ledger --------------------------------------------------
    def set_token_baseline(self, tokens: int) -> None:
        """Tokens already held by the submitted requests (normally 0)."""
        self._token_baseline = tokens

    def on_tokens_emitted(self, count: int = 1) -> None:
        self.tokens_emitted += count

    def on_tokens_rolled_back(self, count: int) -> None:
        if count > 0:
            self.tokens_rolled_back += count

    def check_token_conservation(self, total_generated: int) -> None:
        expected = self._token_baseline + self.tokens_emitted - self.tokens_rolled_back
        self.auditor.check(
            total_generated == expected,
            TokenConservationError,
            f"{self.label}: requests hold {total_generated} tokens but the "
            f"ledger expects {expected} ({self._token_baseline} baseline + "
            f"{self.tokens_emitted} emitted - {self.tokens_rolled_back} rolled back)",
        )

    # -- delegation conveniences --------------------------------------
    def on_transition(self, request_id: int, old, new) -> None:
        self.auditor.on_transition(request_id, old, new)

    def check_kv_drained(self, manager, where: str = "end of run") -> None:
        self.auditor.check_kv_drained(manager, where)

    def check_report(self, report, ttfts=None) -> None:
        """Consistency of one serving/resilience report.

        ``report`` needs the request-partition attributes; ``ttfts`` is
        the finished requests' TTFT list for the percentile ordering
        check (optional).
        """
        auditor = self.auditor
        parts = (
            report.finished_requests + report.shed_requests
            + report.failed_requests + report.unfinished_requests
        )
        auditor.check(
            parts == report.num_requests,
            ReportConsistencyError,
            f"{self.label}: finished+shed+failed+unfinished = {parts} "
            f"!= {report.num_requests} submitted",
        )
        auditor.check(
            report.total_time >= 0.0 and report.total_output_tokens >= 0,
            ReportConsistencyError,
            f"{self.label}: negative total_time/total_output_tokens",
        )
        auditor.check(
            report.mean_ttft >= 0.0 and report.mean_tpot >= 0.0,
            ReportConsistencyError,
            f"{self.label}: negative latency aggregate "
            f"(mean_ttft={report.mean_ttft!r}, mean_tpot={report.mean_tpot!r})",
        )
        if ttfts:
            ordered = sorted(ttfts)
            p50 = ordered[max(1, math.ceil(0.50 * len(ordered))) - 1]
            p99 = ordered[max(1, math.ceil(0.99 * len(ordered))) - 1]
            auditor.check(
                p50 <= p99,
                ReportConsistencyError,
                f"{self.label}: p50 TTFT {p50!r} > p99 TTFT {p99!r}",
            )


# -- process-global wiring ------------------------------------------------
_UNSET = object()
_AUDITOR = _UNSET


def get_auditor() -> Optional[Auditor]:
    """The process auditor, or None when auditing is off.

    Resolved lazily from ``REPRO_AUDIT`` on first use, so worker
    processes inherit the parent's audit mode through the environment.
    """
    global _AUDITOR
    if _AUDITOR is _UNSET:
        mode = resolve_mode()
        _AUDITOR = None if mode is AuditMode.OFF else Auditor(mode=mode)
    return _AUDITOR


def configure(
    mode: Optional[str] = None,
    sample_fraction: Optional[float] = None,
    seed: int = 0,
) -> Optional[Auditor]:
    """(Re)build the process auditor -- the CLI ``--audit`` hook.

    Also exports the mode to ``REPRO_AUDIT`` so process-pool workers
    spawned later audit at the same level.
    """
    global _AUDITOR
    resolved = resolve_mode(mode)
    os.environ["REPRO_AUDIT"] = resolved.value
    if resolved is AuditMode.OFF:
        _AUDITOR = None
    else:
        _AUDITOR = Auditor(
            mode=resolved,
            sample_fraction=(
                DEFAULT_SAMPLE_FRACTION if sample_fraction is None else sample_fraction
            ),
            seed=seed,
        )
    return _AUDITOR


class audit_scope:
    """Context manager pinning the global auditor (tests)."""

    def __init__(self, mode: str, **kwargs) -> None:
        self.mode = mode
        self.kwargs = kwargs
        self.auditor: Optional[Auditor] = None

    def __enter__(self) -> Optional[Auditor]:
        global _AUDITOR
        self._saved = _AUDITOR
        self._saved_env = os.environ.get("REPRO_AUDIT")
        self.auditor = configure(self.mode, **self.kwargs)
        return self.auditor

    def __exit__(self, *exc) -> None:
        global _AUDITOR
        _AUDITOR = self._saved
        if self._saved_env is None:
            os.environ.pop("REPRO_AUDIT", None)
        else:
            os.environ["REPRO_AUDIT"] = self._saved_env
        return None
