"""A100 CUDA kernel analog.

The paper implements its non-GEMM microbenchmarks in CUDA for the A100
(Table 2).  GPU SMs hide latency with massive multithreading rather
than VLIW scheduling, so a cycle-accurate pipeline buys nothing here;
:mod:`repro.cuda.smmodel` models SM throughput and occupancy
analytically, reusing the shared HBM model for memory behaviour.
"""

from repro.cuda.smmodel import CudaKernelResult, CudaLauncher

__all__ = ["CudaKernelResult", "CudaLauncher"]
