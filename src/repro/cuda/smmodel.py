"""Analytical SM throughput model for A100 CUDA kernels.

An element-wise CUDA kernel on the A100 is bounded by whichever is
slower: the SIMD-core compute ceiling (39 TFLOPS BF16 with FMA, half
that without -- same accounting as the TPC) or memory bandwidth.  With
tens of thousands of threads in flight, per-SM bandwidth saturates with
roughly a quarter of the SMs, and random-access kernels reach the HBM
transaction-rate/sector limits directly; there is no analog of the
TPC's per-core unrolling cliff, which is the programmability contrast
Section 3.2 draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import HbmModel
from repro.hw.spec import A100_SPEC, DeviceSpec, DType
from repro.hw.vector_unit import VectorUnitModel


@dataclass(frozen=True)
class CudaKernelResult:
    """Timing estimate for one CUDA kernel launch."""

    kernel_name: str
    time: float
    compute_time: float
    memory_time: float
    launch_overhead: float
    achieved_flops: float
    useful_bytes: float
    bandwidth_utilization: float
    bottleneck: str


class CudaLauncher:
    """Launch model for non-GEMM CUDA kernels on the A100."""

    def __init__(self, spec: DeviceSpec = A100_SPEC) -> None:
        self.spec = spec
        self.hbm = HbmModel(spec.memory)
        self.vector = VectorUnitModel(spec.vector)

    def _result(
        self,
        name: str,
        compute_time: float,
        memory_time: float,
        flops: float,
        useful_bytes: float,
        include_launch_overhead: bool,
    ) -> CudaKernelResult:
        busy = max(compute_time, memory_time)
        overhead = self.spec.kernel_launch_overhead if include_launch_overhead else 0.0
        time = busy + overhead
        return CudaKernelResult(
            kernel_name=name,
            time=time,
            compute_time=compute_time,
            memory_time=memory_time,
            launch_overhead=overhead,
            achieved_flops=flops / busy if busy > 0 else 0.0,
            useful_bytes=useful_bytes,
            bandwidth_utilization=(
                (useful_bytes / busy) / self.spec.memory.bandwidth if busy > 0 else 0.0
            ),
            bottleneck="simd-compute" if compute_time >= memory_time else "hbm-bandwidth",
        )

    # ------------------------------------------------------------------
    def launch_stream(
        self,
        name: str,
        num_elements: int,
        flops_per_element: float,
        bytes_per_element: float,
        dtype: DType = DType.BF16,
        uses_fma: bool = False,
        num_streams: int = 2,
        num_sms: int | None = None,
        include_launch_overhead: bool = True,
    ) -> CudaKernelResult:
        """Element-wise streaming kernel (the CUDA STREAM analog)."""
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        compute_time = self.vector.elementwise_time(
            num_elements, flops_per_element, dtype, uses_fma, num_sms
        )
        useful_bytes = num_elements * bytes_per_element
        active_sms = self.spec.vector.num_cores if num_sms is None else num_sms
        chip_bw = min(
            self.hbm.stream_bandwidth(num_streams),
            active_sms * self.spec.vector.per_core_stream_bw,
        )
        memory_time = useful_bytes / chip_bw
        flops = num_elements * flops_per_element
        return self._result(
            name, compute_time, memory_time, flops, useful_bytes, include_launch_overhead
        )

    def launch_gather(
        self,
        name: str,
        num_accesses: int,
        access_bytes: int,
        is_write: bool = False,
        working_set_bytes: float = float("inf"),
        parallel_accesses: int | None = None,
        include_launch_overhead: bool = True,
    ) -> CudaKernelResult:
        """Random gather/scatter kernel (the CUDA GUPS analog).

        ``parallel_accesses`` limits memory-level parallelism when the
        launch is too small to fill the machine (e.g. a tiny embedding
        batch); the A100 needs roughly 32k concurrent accesses in
        flight to reach its random-access ceiling.
        """
        if num_accesses <= 0 or access_bytes <= 0:
            raise ValueError("num_accesses and access_bytes must be positive")
        bw = self.hbm.random_bandwidth(access_bytes, is_write, working_set_bytes)
        if parallel_accesses is not None:
            fill = min(1.0, parallel_accesses / 32768.0)
            bw *= max(fill, 1.0 / 32768.0)
        useful = float(num_accesses) * access_bytes
        memory_time = useful / bw
        return self._result(name, 0.0, memory_time, 0.0, useful, include_launch_overhead)
