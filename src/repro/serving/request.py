"""Request lifecycle for the serving engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RequestState(enum.Enum):
    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request and its latency bookkeeping."""

    request_id: int
    input_tokens: int
    output_tokens: int
    arrival_time: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("input_tokens and output_tokens must be positive")

    @property
    def context_len(self) -> int:
        """Current KV length: prompt plus generated tokens."""
        return self.input_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.output_tokens

    def record_token(self, now: float) -> None:
        """Account one generated token at virtual time ``now``."""
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"request {self.request_id} is not running")
        self.generated += 1
        if self.first_token_time is None:
            self.first_token_time = now
        if self.done:
            self.state = RequestState.FINISHED
            self.finish_time = now

    # -- metrics ---------------------------------------------------------
    @property
    def ttft(self) -> float:
        """Time-To-First-Token."""
        if self.first_token_time is None:
            raise RuntimeError(f"request {self.request_id} has no first token yet")
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Time-Per-Output-Token (excluding the first token)."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} is not finished")
        if self.output_tokens == 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.output_tokens - 1)
