"""Request lifecycle for the serving engine.

Every state change funnels through :meth:`Request._transition`, so a
process auditor (``REPRO_AUDIT``, see :mod:`repro.audit`) can verify
lifecycle legality -- ``waiting -> running -> {preempted(waiting),
finished, shed, failed}`` only -- no matter which layer drives the
transition.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.audit import ConfigError, get_auditor

#: Traffic class for requests that carry no tenant (mirrors
#: :data:`repro.cluster.admission.DEFAULT_TIER` without importing the
#: cluster layer into the serving layer).
DEFAULT_TIER = 1


class RequestState(enum.Enum):
    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"
    #: Rejected by admission control / load shedding (carries a reason).
    SHED = "shed"
    #: Permanently given up after exhausting the retry budget.
    FAILED = "failed"


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry with jittered exponential backoff.

    Shed or faulted requests are re-submitted after
    ``backoff_base * backoff_multiplier ** attempt`` seconds (capped at
    ``max_backoff``), up to ``max_retries`` attempts, mirroring how
    serving clients react to load-shedding responses.

    ``jitter`` spreads the delay uniformly over
    ``[1 - jitter, 1 + jitter]`` times the nominal backoff so retries
    from correlated failures do not re-arrive as a thundering herd.  The
    jitter is stateless and deterministic: it is derived from
    ``(seed, token, attempt)``, so the same request retrying for the
    same time always waits the same virtual-clock delay, which keeps
    chaos and fleet runs byte-reproducible.
    """

    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_multiplier: float = 2.0
    #: Relative jitter amplitude in ``[0, 1]``; 0 disables jitter.
    jitter: float = 0.0
    #: Upper bound on the (pre-jitter) delay; None = unbounded.
    max_backoff: Optional[float] = None
    #: Stream seed for the deterministic jitter.
    seed: int = 0

    def __post_init__(self) -> None:
        # ConfigError subclasses ValueError, so callers catching the
        # historical ValueError keep working.
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"need backoff_base >= 0 and backoff_multiplier >= 1, got "
                f"backoff_base={self.backoff_base!r} "
                f"backoff_multiplier={self.backoff_multiplier!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.max_backoff is not None and self.max_backoff <= 0:
            # Zero would silently collapse every backoff to an
            # immediate retry storm; reject it alongside negatives.
            raise ConfigError(
                f"max_backoff must be positive (or None), got {self.max_backoff!r}"
            )

    def backoff(self, attempt: int, token: int = 0) -> float:
        """Delay before retry number ``attempt`` (0-based).

        ``token`` identifies the retrying entity (e.g. a request id) so
        distinct requests draw decorrelated jitter from the same seed.
        """
        delay = self.backoff_base * self.backoff_multiplier ** attempt
        if self.max_backoff is not None:
            delay = min(delay, self.max_backoff)
        if self.jitter > 0.0:
            # String seeds hash through SHA-512 inside random.Random,
            # so the stream is stable across platforms and processes.
            rng = random.Random(f"{self.seed}/{token}/{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class Request:
    """One generation request and its latency bookkeeping."""

    request_id: int
    input_tokens: int
    output_tokens: int
    arrival_time: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: Absolute TTFT budget in seconds from ``arrival_time`` (None = no SLO).
    deadline: Optional[float] = None
    #: Client-side re-submissions after shedding/timeouts.
    retries: int = 0
    #: Engine-side restarts (preemption-recompute and device faults).
    restarts: int = 0
    #: Last checkpointed token count; fault restarts resume from here.
    checkpoint: int = 0
    #: Owning tenant ("" = untenanted standalone traffic).
    tenant: str = ""
    #: Traffic class: 0 = premium, 1 = standard, 2 = best-effort.  The
    #: scheduler admits by (tier, arrival_time), so lower tiers never
    #: delay a queued premium request.
    tier: int = DEFAULT_TIER
    #: Why the request was shed/failed, if it was.
    shed_reason: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("input_tokens and output_tokens must be positive")
        if self.tier < 0:
            raise ValueError(f"tier must be >= 0, got {self.tier}")

    def _transition(self, new_state: RequestState) -> None:
        """Move to ``new_state``, auditing legality when enabled."""
        auditor = get_auditor()
        if auditor is not None:
            auditor.on_transition(self.request_id, self.state, new_state)
        self.state = new_state

    def start_running(self) -> None:
        """Admission: the scheduler moved this request into the batch."""
        self._transition(RequestState.RUNNING)

    @property
    def context_len(self) -> int:
        """Current KV length: prompt plus generated tokens."""
        return self.input_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.output_tokens

    def record_token(self, now: float) -> None:
        """Account one generated token at virtual time ``now``."""
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"request {self.request_id} is not running")
        self.generated += 1
        if self.first_token_time is None:
            self.first_token_time = now
        if self.done:
            self._transition(RequestState.FINISHED)
            self.finish_time = now

    def record_tokens_bulk(
        self, count: int, first_token_time: float, now: float
    ) -> None:
        """Account ``count`` generated tokens in one call.

        The vectorized engine core prices whole decode bursts against
        slot arrays and only materializes the result back onto the
        request object at lifecycle events; this is that materialization
        step, with the same legality guard and terminal transition as
        ``count`` individual :meth:`record_token` calls.
        """
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"request {self.request_id} is not running")
        if count <= 0:
            raise ValueError("count must be positive")
        self.generated += count
        if self.first_token_time is None:
            self.first_token_time = first_token_time
        if self.done:
            self._transition(RequestState.FINISHED)
            self.finish_time = now

    # -- fault/degradation transitions -----------------------------------
    def restart(self, from_checkpoint: bool = False) -> None:
        """Send the request back to the wait queue for recompute.

        Capacity preemption (``from_checkpoint=False``) discards all
        progress, so the eventual TTFT reflects the restart.  Fault
        recovery resumes from the last checkpoint: tokens up to the
        checkpoint were already delivered, so the original
        ``first_token_time`` is kept.
        """
        self._transition(RequestState.WAITING)
        self.restarts += 1
        self.generated = self.checkpoint if from_checkpoint else 0
        if self.generated == 0:
            self.first_token_time = None
        self.finish_time = None

    def shed(self, reason: str) -> None:
        """Reject with a reason instead of crashing the run."""
        if self.state is RequestState.FINISHED:
            raise RuntimeError(f"request {self.request_id} already finished")
        self._transition(RequestState.SHED)
        self.shed_reason = reason

    def fail(self, reason: str) -> None:
        """Give up permanently (retry budget exhausted)."""
        self._transition(RequestState.FAILED)
        self.shed_reason = reason

    def resubmit(self, at: float) -> None:
        """Client retry: re-enter the wait queue as a fresh arrival."""
        self.retries += 1
        self.arrival_time = at
        self._transition(RequestState.WAITING)
        self.generated = 0
        self.checkpoint = 0
        self.first_token_time = None
        self.finish_time = None

    def deadline_missed(self, now: float) -> bool:
        """True when the TTFT SLO expired before the first token."""
        return (
            self.deadline is not None
            and self.first_token_time is None
            and now - self.arrival_time > self.deadline
        )

    # -- metrics ---------------------------------------------------------
    @property
    def ttft(self) -> float:
        """Time-To-First-Token."""
        if self.first_token_time is None:
            raise RuntimeError(f"request {self.request_id} has no first token yet")
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Time-Per-Output-Token (excluding the first token)."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} is not finished")
        if self.output_tokens == 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.output_tokens - 1)
