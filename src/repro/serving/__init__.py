"""LLM and RecSys serving stack (the vLLM analog of Section 4.2).

* :mod:`repro.serving.request` -- request lifecycle and per-request
  latency metrics (TTFT, TPOT).
* :mod:`repro.serving.dataset` -- synthetic request generators: the
  fixed-length sweeps of Section 3.5 and a Dynamic-Sonnet-like
  variable-length dataset for Figure 17(d, e).
* :mod:`repro.serving.kv_cache` -- the paged KV-cache block manager
  (PagedAttention's memory side).
* :mod:`repro.serving.block_table` -- 2-D zero-padded BlockTable vs
  flat BlockList construction (Figure 16).
* :mod:`repro.serving.scheduler` -- continuous-batching scheduler with
  a maximum decode batch size (the Figure 17(d, e) sweep knob).
* :mod:`repro.serving.engine` -- the step-driven serving engine over a
  :class:`~repro.models.llama.LlamaCostModel`.
* :mod:`repro.serving.recsys` -- single-device RecSys serving over a
  :class:`~repro.models.dlrm.DlrmCostModel`.
"""

from repro.serving.capacity import CapacityReport, compare_capacity
from repro.serving.dataset import (
    dynamic_sonnet_requests,
    fixed_length_requests,
    iter_dynamic_sonnet_requests,
)
from repro.serving.engine import (
    FaultStats,
    LlmServingEngine,
    ResiliencePolicy,
    ServingReport,
)
from repro.serving.loadgen import (
    LoadTestReport,
    ResilientLoadReport,
    max_sustainable_rate,
    poisson_arrivals,
    run_load_test,
    run_resilient_load_test,
)
from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.recsys import RecSysServer, RecSysReport
from repro.serving.request import Request, RequestState, RetryPolicy
from repro.serving.scheduler import ContinuousBatchingScheduler

__all__ = [
    "BlockManager",
    "CapacityReport",
    "FaultStats",
    "LoadTestReport",
    "ResiliencePolicy",
    "ResilientLoadReport",
    "compare_capacity",
    "max_sustainable_rate",
    "poisson_arrivals",
    "run_load_test",
    "run_resilient_load_test",
    "ContinuousBatchingScheduler",
    "KvCacheError",
    "LlmServingEngine",
    "RecSysReport",
    "RecSysServer",
    "Request",
    "RequestState",
    "RetryPolicy",
    "ServingReport",
    "dynamic_sonnet_requests",
    "fixed_length_requests",
    "iter_dynamic_sonnet_requests",
]
