"""Paged KV-cache block manager.

The memory-management half of PagedAttention (Section 4.2): the KV
cache is divided into fixed-size blocks allocated on demand, so memory
waste is bounded by one partial block per request instead of a whole
max-length preallocation.  The manager tracks free blocks, per-request
block lists, and utilization/fragmentation statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


class KvCacheError(RuntimeError):
    """Raised when the block pool is exhausted or misused."""


@dataclass(frozen=True)
class KvCacheStats:
    """Occupancy snapshot of the block pool."""

    total_blocks: int
    allocated_blocks: int
    used_tokens: int
    block_size: int

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.allocated_blocks

    @property
    def occupancy(self) -> float:
        return self.allocated_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def internal_fragmentation(self) -> float:
        """Fraction of allocated token slots holding no token."""
        capacity = self.allocated_blocks * self.block_size
        return 1.0 - self.used_tokens / capacity if capacity else 0.0


class BlockManager:
    """Allocates KV-cache blocks to requests.

    With a :class:`~repro.obs.metrics.MetricsRegistry` bound (see
    :meth:`bind_metrics`), every allocate/append/free updates the
    ``kv.*`` counters and occupancy gauge; unbound, the hooks cost one
    None test.  Likewise an :class:`~repro.audit.Auditor` bound via
    :meth:`bind_auditor` verifies block conservation after every pool
    mutation.

    Misuse (freeing an unknown or already-freed request id,
    re-allocating an existing id) always raises :class:`KvCacheError` --
    never a silent pass or a bare ``KeyError`` -- because a tolerated
    double-free would silently skew every downstream occupancy metric.
    """

    def __init__(self, num_blocks: int, block_size: int, metrics=None) -> None:
        if num_blocks <= 0 or block_size <= 0:
            raise ValueError("num_blocks and block_size must be positive")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._tables: Dict[int, List[int]] = {}
        self._tokens: Dict[int, int] = {}
        self.metrics = metrics
        self.auditor = None

    def bind_metrics(self, metrics) -> None:
        """Attach a metrics registry (or None to detach)."""
        self.metrics = metrics

    def bind_auditor(self, auditor) -> None:
        """Attach an :class:`~repro.audit.Auditor` (or None to detach)."""
        self.auditor = auditor

    def _observe_occupancy(self) -> None:
        self.metrics.gauge("kv.occupancy").set(
            (self.num_blocks - len(self._free)) / self.num_blocks
        )

    # ------------------------------------------------------------------
    def blocks_needed(self, num_tokens: int) -> int:
        return math.ceil(num_tokens / self.block_size)

    def can_allocate(self, num_tokens: int) -> bool:
        return self.blocks_needed(num_tokens) <= len(self._free)

    def has_headroom(self, num_tokens: int, watermark: float = 1.0) -> bool:
        """Like :meth:`can_allocate`, but also respects an admission
        watermark: new admissions may not push pool occupancy above
        ``watermark`` (a fraction of all blocks), reserving headroom
        for the running batch to grow during decode.  An empty pool
        always admits a fitting request, so a watermark can delay but
        never deadlock admission."""
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        needed = self.blocks_needed(num_tokens)
        if needed > len(self._free):
            return False
        allocated = self.num_blocks - len(self._free)
        return allocated + needed <= max(watermark * self.num_blocks, needed)

    def allocate(self, request_id: int, num_tokens: int) -> List[int]:
        """Allocate blocks for a request's prompt."""
        if request_id in self._tables:
            raise KvCacheError(f"request {request_id} already has an allocation")
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        needed = self.blocks_needed(num_tokens)
        if needed > len(self._free):
            raise KvCacheError(
                f"out of KV blocks: need {needed}, have {len(self._free)}"
            )
        blocks = [self._free.pop() for _ in range(needed)]
        self._tables[request_id] = blocks
        self._tokens[request_id] = num_tokens
        if self.metrics is not None:
            self.metrics.counter("kv.allocations").inc()
            self.metrics.counter("kv.blocks_allocated").inc(needed)
            self._observe_occupancy()
        if self.auditor is not None:
            self.auditor.on_kv_op(self)
        return list(blocks)

    def append_token(self, request_id: int) -> bool:
        """Extend a request by one token; returns True if a new block
        was allocated."""
        if request_id not in self._tables:
            raise KvCacheError(f"request {request_id} has no allocation")
        self._tokens[request_id] += 1
        needed = self.blocks_needed(self._tokens[request_id])
        if needed > len(self._tables[request_id]):
            if not self._free:
                raise KvCacheError("out of KV blocks during decode")
            self._tables[request_id].append(self._free.pop())
            if self.metrics is not None:
                self.metrics.counter("kv.blocks_allocated").inc()
                self._observe_occupancy()
            if self.auditor is not None:
                self.auditor.on_kv_op(self)
            return True
        return False

    def free(self, request_id: int) -> None:
        """Release a request's blocks.

        Raises :class:`KvCacheError` for an unknown or already-freed
        request id: a silent double-free would corrupt the pool's
        conservation accounting.
        """
        blocks = self._tables.pop(request_id, None)
        if blocks is None:
            raise KvCacheError(
                f"request {request_id} has no allocation to free "
                "(unknown id or double free)"
            )
        self._tokens.pop(request_id, None)
        self._free.extend(reversed(blocks))
        if self.metrics is not None:
            self.metrics.counter("kv.frees").inc()
            self.metrics.counter("kv.blocks_freed").inc(len(blocks))
            self._observe_occupancy()
        if self.auditor is not None:
            self.auditor.on_kv_op(self)

    def free_all(self) -> int:
        """Release every allocation (engine teardown); returns how many
        requests still held blocks.  Always leaves
        ``allocated_blocks == 0`` -- asserted by the auditor when one
        is bound."""
        holders = list(self._tables)
        for request_id in holders:
            self.free(request_id)
        if self.auditor is not None:
            self.auditor.check_kv_drained(self, where="free_all")
        return len(holders)

    def block_list(self, request_id: int) -> List[int]:
        try:
            return list(self._tables[request_id])
        except KeyError:
            raise KvCacheError(f"request {request_id} has no allocation") from None

    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def allocated_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    # -- auditor views -------------------------------------------------
    def iter_tables(self) -> Iterable[Tuple[int, List[int]]]:
        """(request_id, blocks) pairs for ownership scans."""
        return self._tables.items()

    def free_block_ids(self) -> List[int]:
        """The free list (auditor's double-ownership scan)."""
        return list(self._free)

    def stats(self) -> KvCacheStats:
        allocated = self.num_blocks - len(self._free)
        return KvCacheStats(
            total_blocks=self.num_blocks,
            allocated_blocks=allocated,
            used_tokens=sum(self._tokens.values()),
            block_size=self.block_size,
        )
