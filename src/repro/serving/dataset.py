"""Synthetic request datasets.

Two generators mirror the paper's two serving setups:

* :func:`fixed_length_requests` -- the Section 3.5 sweeps: input length
  fixed at 100, output lengths swept 25-400.
* :func:`dynamic_sonnet_requests` -- a Dynamic-Sonnet-like workload for
  Figure 17(d, e): the real dataset packs variable numbers of sonnet
  stanzas into prompts, producing a wide, right-skewed length
  distribution; we reproduce that with seeded log-normal samples
  clipped to the same ranges.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.serving.request import Request

#: Length statistics approximating the Dynamic-Sonnet Llama-3 dataset:
#: prompts of a few hundred to a couple thousand tokens, outputs of a
#: few dozen to a few hundred.
_SONNET_INPUT_MEDIAN = 512
_SONNET_INPUT_SIGMA = 0.6
_SONNET_INPUT_RANGE = (64, 3072)
_SONNET_OUTPUT_MEDIAN = 150
_SONNET_OUTPUT_SIGMA = 0.5
_SONNET_OUTPUT_RANGE = (16, 512)


def fixed_length_requests(
    num_requests: int, input_len: int = 100, output_len: int = 100
) -> List[Request]:
    """Uniform-shape requests, all arriving at time zero."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    return [
        Request(request_id=i, input_tokens=input_len, output_tokens=output_len)
        for i in range(num_requests)
    ]


def dynamic_sonnet_requests(num_requests: int, seed: int = 0) -> List[Request]:
    """Variable-length requests with Dynamic-Sonnet-like statistics."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    inputs = np.exp(
        rng.normal(np.log(_SONNET_INPUT_MEDIAN), _SONNET_INPUT_SIGMA, num_requests)
    )
    outputs = np.exp(
        rng.normal(np.log(_SONNET_OUTPUT_MEDIAN), _SONNET_OUTPUT_SIGMA, num_requests)
    )
    inputs = np.clip(inputs, *_SONNET_INPUT_RANGE).astype(int)
    outputs = np.clip(outputs, *_SONNET_OUTPUT_RANGE).astype(int)
    return [
        Request(request_id=i, input_tokens=int(inputs[i]), output_tokens=int(outputs[i]))
        for i in range(num_requests)
    ]


#: Fixed RNG block size for the streaming generator.  Samples are drawn
#: one block at a time, so peak memory is O(_STREAM_CHUNK) no matter how
#: long the trace is, and the stream is a pure function of ``seed``.
_STREAM_CHUNK = 4096


def iter_dynamic_sonnet_requests(
    num_requests: int, seed: int = 0
) -> Iterator[Request]:
    """Lazily yield Dynamic-Sonnet-like requests in bounded chunks.

    The streaming twin of :func:`dynamic_sonnet_requests` for
    million-request runs: length samples are drawn a fixed-size block
    at a time so peak memory stays constant regardless of
    ``num_requests``.  Each block gets its own
    :class:`numpy.random.SeedSequence` child stream, which makes the
    stream a prefix-stable function of ``seed`` alone (the first k
    requests are identical for any ``num_requests >= k``) *but* a
    distinct stream from the list variant -- the two are statistically
    matched, not request-for-request identical.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    chunk = _STREAM_CHUNK
    root = np.random.SeedSequence(seed)
    next_id = 0
    for child in root.spawn(-(-num_requests // chunk)):
        rng = np.random.default_rng(child)
        count = min(chunk, num_requests - next_id)
        # Always draw full blocks so a short final block yields the
        # same prefix as a longer trace would.
        inputs = np.exp(
            rng.normal(np.log(_SONNET_INPUT_MEDIAN), _SONNET_INPUT_SIGMA, chunk)
        )[:count]
        outputs = np.exp(
            rng.normal(np.log(_SONNET_OUTPUT_MEDIAN), _SONNET_OUTPUT_SIGMA, chunk)
        )[:count]
        inputs = np.clip(inputs, *_SONNET_INPUT_RANGE).astype(int)
        outputs = np.clip(outputs, *_SONNET_OUTPUT_RANGE).astype(int)
        for i in range(count):
            yield Request(
                request_id=next_id,
                input_tokens=int(inputs[i]),
                output_tokens=int(outputs[i]),
            )
            next_id += 1
