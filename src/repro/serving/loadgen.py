"""Open-loop load generation and sustainable-throughput search.

The paper's Figure 17(d, e) sweeps the engine's batch-size knob under a
backlog; production serving instead sees an *arrival process*.  This
module adds the standard open-loop methodology on top of the engine:
Poisson arrivals at a target request rate, latency percentiles under
load, and a bisection search for the maximum sustainable rate (the
knee of the latency curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.api.compat import positional_shim
from repro.audit import ConfigError
from repro.core.metrics import goodput_fraction, percentile, slo_violation_rate
from repro.core.parallel import map_with_retries, resolve_worker_count
from repro.serving.engine import LlmServingEngine, ServingReport
from repro.serving.request import Request, RequestState, RetryPolicy

__all__ = [
    "LoadTestReport",
    "ResilientLoadReport",
    "RetryPolicy",
    "diurnal_arrivals",
    "max_sustainable_rate",
    "poisson_arrivals",
    "run_load_sweep",
    "run_load_test",
    "run_resilient_load_test",
    "sweep_seeds",
]


def sweep_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent child seeds derived from one sweep seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so each sweep
    point gets its own stream regardless of execution order -- serial
    and parallel sweeps see identical arrival processes.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [int(child.generate_state(1)[0]) for child in np.random.SeedSequence(seed).spawn(n)]


@dataclass(frozen=True)
class LoadTestReport:
    """One open-loop load point."""

    offered_rate: float          # requests/s offered
    achieved_rate: float         # requests/s completed
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    saturated: bool              # completions lag arrivals

    @property
    def goodput_fraction(self) -> float:
        return self.achieved_rate / self.offered_rate if self.offered_rate else 0.0

    def to_dict(self) -> dict:
        """Exact (unrounded) JSON payload; round-trips bit-identically
        through :meth:`from_dict` -- the sweep-journal contract."""
        return {
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "mean_ttft": self.mean_ttft,
            "p99_ttft": self.p99_ttft,
            "mean_tpot": self.mean_tpot,
            "saturated": self.saturated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadTestReport":
        return cls(
            offered_rate=float(data["offered_rate"]),
            achieved_rate=float(data["achieved_rate"]),
            mean_ttft=float(data["mean_ttft"]),
            p99_ttft=float(data["p99_ttft"]),
            mean_tpot=float(data["mean_tpot"]),
            saturated=bool(data["saturated"]),
        )


def _check_request_factory(request_factory: object) -> None:
    """Reject a bare iterable passed where a factory is required.

    Sweeps and bisection searches serve one workload *per load point*,
    so they need a zero-argument callable that yields a fresh, finite
    arrival stream each call -- a generator object can only be consumed
    once and would silently starve every point after the first."""
    if callable(request_factory):
        return
    if isinstance(request_factory, Iterable):
        raise ConfigError(
            "request_factory must be a zero-argument callable, not a bare "
            "iterable/generator (it would be consumed by the first load "
            "point); wrap it in a factory, e.g. "
            "lambda: iter_dynamic_sonnet_requests(n, seed)"
        )
    raise ConfigError(
        f"request_factory must be callable, got "
        f"{type(request_factory).__name__!r}"
    )


def poisson_arrivals(
    requests: Iterable[Request], rate: float, seed: int = 0
) -> Union[List[Request], Iterator[Request]]:
    """Assign Poisson arrival times (rate in requests/s), in place.

    A :class:`Sequence` is stamped and returned as a list (the
    original, byte-golden path); any other iterable is wrapped lazily
    -- requests are stamped one by one as they are pulled, so a
    million-request generator never materializes.  Both draw the gaps
    from the same seeded stream.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not isinstance(requests, Sequence):
        return _lazy_poisson(requests, rate, seed)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    clock = 0.0
    for request, gap in zip(requests, gaps):
        clock += float(gap)
        request.arrival_time = clock
    return list(requests)


def _lazy_poisson(
    requests: Iterable[Request], rate: float, seed: int
) -> Iterator[Request]:
    rng = np.random.default_rng(seed)
    clock = 0.0
    for request in requests:
        clock += float(rng.exponential(1.0 / rate))
        request.arrival_time = clock
        yield request


def diurnal_arrivals(
    requests: Iterable[Request],
    rate: float,
    period: float = 60.0,
    amplitude: float = 0.8,
    seed: int = 0,
) -> Union[List[Request], Iterator[Request]]:
    """Assign sinusoidally-modulated Poisson arrival times, in place.

    A non-homogeneous Poisson process with instantaneous rate
    ``rate * (1 + amplitude * sin(2*pi*t / period))`` (mean ``rate``),
    sampled by Lewis-Shedler thinning against the peak rate -- the
    standard diurnal traffic shape that exercises autoscalers with
    alternating overload peaks and idle troughs.

    As with :func:`poisson_arrivals`, a non-``Sequence`` iterable is
    stamped lazily; the thinning loop already draws per request, so
    both paths consume the identical random stream.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if not isinstance(requests, Sequence):
        return _lazy_diurnal(requests, rate, period, amplitude, seed)
    return list(_lazy_diurnal(requests, rate, period, amplitude, seed))


def _lazy_diurnal(
    requests: Iterable[Request],
    rate: float,
    period: float,
    amplitude: float,
    seed: int,
) -> Iterator[Request]:
    rng = np.random.default_rng(seed)
    peak = rate * (1.0 + amplitude)
    clock = 0.0
    for request in requests:
        while True:
            clock += float(rng.exponential(1.0 / peak))
            instantaneous = rate * (
                1.0 + amplitude * np.sin(2.0 * np.pi * clock / period)
            )
            if rng.random() * peak <= instantaneous:
                break
        request.arrival_time = clock
        yield request


@positional_shim("engine_factory", "request_factory", "offered_rate", "seed")
def run_load_test(
    *,
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    offered_rate: float,
    seed: Optional[int] = None,
    ctx=None,
) -> LoadTestReport:
    """Serve one Poisson-arrival workload at ``offered_rate``.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, the run is
    traced/metered through it and its seed serves as the default.

    ``request_factory`` may return a lazy iterable instead of a list;
    the workload then streams through the engine without ever being
    materialized (p99 TTFT comes from the engine, which in
    ``retain_requests=False`` release mode is the histogram upper
    bound over finished requests).
    """
    _check_request_factory(request_factory)
    seed = ctx.resolve_seed(seed) if ctx is not None else (0 if seed is None else seed)
    workload = request_factory()
    if not isinstance(workload, Sequence):
        arrivals = poisson_arrivals(workload, offered_rate, seed)
        engine = engine_factory()
        if ctx is not None:
            engine.bind_context(ctx)
        report = engine.run(arrivals)
        achieved = (
            report.num_requests / report.total_time
            if report.total_time > 0 else 0.0
        )
        return LoadTestReport(
            offered_rate=offered_rate,
            achieved_rate=achieved,
            mean_ttft=report.mean_ttft,
            p99_ttft=engine.ttft_p99(),
            mean_tpot=report.mean_tpot,
            saturated=report.total_time > 1.25 * engine.last_fed_arrival,
        )
    requests = poisson_arrivals(workload, offered_rate, seed)
    engine = engine_factory()
    if ctx is not None:
        engine.bind_context(ctx)
    report: ServingReport = engine.run(requests)
    last_arrival = max((r.arrival_time for r in requests), default=0.0)
    achieved = len(requests) / report.total_time if report.total_time > 0 else 0.0
    # Shed/failed requests never saw a first token; exclude them so
    # zero-completion runs report zeros instead of raising.
    ttfts = [r.ttft for r in requests if r.first_token_time is not None]
    return LoadTestReport(
        offered_rate=offered_rate,
        achieved_rate=achieved,
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99) if ttfts else 0.0,
        mean_tpot=report.mean_tpot,
        # Saturated when the engine finishes well after arrivals stop.
        saturated=report.total_time > 1.25 * last_arrival,
    )


@dataclass(frozen=True)
class ResilientLoadReport:
    """One open-loop load point under graceful degradation.

    Unlike :class:`LoadTestReport`, the engine is expected to shed and
    retry, so completions are partitioned and quality is measured as
    goodput (tokens of requests finished within the SLO) rather than
    raw throughput.
    """

    offered_rate: float
    finished: int
    shed: int
    failed: int
    retried: int
    mean_ttft: float
    p99_ttft: float
    slo_violation_rate: float
    goodput_fraction: float       # fraction of submitted tokens delivered in-SLO
    serving: ServingReport

    @property
    def completion_rate(self) -> float:
        return self.serving.completion_rate

    def to_dict(self) -> dict:
        """JSON payload for sweep journaling.  Top-level fields are
        exact; the nested serving report keeps its standard (rounded at
        1e-9) encoding."""
        return {
            "offered_rate": self.offered_rate,
            "finished": self.finished,
            "shed": self.shed,
            "failed": self.failed,
            "retried": self.retried,
            "mean_ttft": self.mean_ttft,
            "p99_ttft": self.p99_ttft,
            "slo_violation_rate": self.slo_violation_rate,
            "goodput_fraction": self.goodput_fraction,
            "serving": self.serving.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilientLoadReport":
        return cls(
            offered_rate=float(data["offered_rate"]),
            finished=int(data["finished"]),
            shed=int(data["shed"]),
            failed=int(data["failed"]),
            retried=int(data["retried"]),
            mean_ttft=float(data["mean_ttft"]),
            p99_ttft=float(data["p99_ttft"]),
            slo_violation_rate=float(data["slo_violation_rate"]),
            goodput_fraction=float(data["goodput_fraction"]),
            serving=ServingReport.from_dict(data["serving"]),
        )


@positional_shim("engine_factory", "request_factory", "offered_rate", "seed")
def run_resilient_load_test(
    *,
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    offered_rate: float,
    seed: Optional[int] = None,
    ctx=None,
) -> ResilientLoadReport:
    """Serve one Poisson workload on a degradation-enabled engine.

    The factory must return an engine constructed with a
    :class:`~repro.serving.engine.ResiliencePolicy` (and optionally a
    fault injector); shed requests then surface in the report instead
    of crashing the run.  ``ctx`` works as in :func:`run_load_test`.

    A lazy ``request_factory`` streams through the engine like in
    :func:`run_load_test`, but the engine must retain requests
    (``retain_requests=True``, the default): goodput and SLO violations
    need every finished request's TTFT against the deadline, which the
    release-mode aggregates do not keep.
    """
    _check_request_factory(request_factory)
    seed = ctx.resolve_seed(seed) if ctx is not None else (0 if seed is None else seed)
    workload = request_factory()
    streaming = not isinstance(workload, Sequence)
    arrivals = poisson_arrivals(workload, offered_rate, seed)
    engine = engine_factory()
    if streaming and not engine.retain_requests:
        raise ConfigError(
            "streaming resilient load tests need retain_requests=True "
            "engines: per-request TTFTs against the SLO deadline cannot "
            "be recovered from release-mode aggregates"
        )
    if ctx is not None:
        engine.bind_context(ctx)
    report = engine.run(arrivals)
    requests = arrivals if not streaming else engine.retained_requests
    finished = [r for r in requests if r.state is RequestState.FINISHED]
    ttfts = [r.ttft for r in finished]
    deadline = engine.policy.deadline if engine.policy else None
    if deadline is not None:
        good = [r for r in finished if r.ttft <= deadline]
        violations = (
            slo_violation_rate(ttfts, deadline) * len(finished)
            + (len(requests) - len(finished))
        ) / len(requests)
    else:
        good = finished
        violations = (len(requests) - len(finished)) / len(requests)
    good_tokens = sum(r.output_tokens for r in good)
    submitted_tokens = sum(r.output_tokens for r in requests)
    return ResilientLoadReport(
        offered_rate=offered_rate,
        finished=len(finished),
        shed=report.shed_requests,
        failed=report.failed_requests,
        retried=report.retried_requests,
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99) if ttfts else 0.0,
        slo_violation_rate=violations,
        goodput_fraction=goodput_fraction(good_tokens, submitted_tokens),
        serving=report,
    )


def _load_point(task) -> LoadTestReport:
    """Process-pool task: one load point.  Top-level so it pickles."""
    engine_factory, request_factory, rate, point_seed, resilient = task
    runner = run_resilient_load_test if resilient else run_load_test
    return runner(
        engine_factory=engine_factory,
        request_factory=request_factory,
        offered_rate=rate,
        seed=point_seed,
    )


def _point_key(index: int) -> str:
    """Journal key of sweep point ``index``."""
    return f"point-{index:04d}"


@positional_shim("engine_factory", "request_factory", "rates", "seed")
def run_load_sweep(
    *,
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    rates: Sequence[float],
    seed: Optional[int] = None,
    workers: Optional[object] = None,
    resilient: bool = False,
    journal: Optional[object] = None,
    ctx=None,
) -> List[LoadTestReport]:
    """Serve one load point per rate; results are in ``rates`` order.

    Each point draws its arrival process from its own
    :func:`sweep_seeds` child seed, so the sweep is bit-identical
    whether it runs serially or across a process pool (``workers``,
    resolved by :func:`repro.core.parallel.resolve_worker_count`).
    Worker-process death is retried with backoff
    (:func:`repro.core.parallel.map_with_retries`), so a killed worker
    costs a rebuilt pool, not the sweep.

    With ``journal`` set (a :class:`~repro.core.journal.RunJournal` or
    a path), each completed point is durably appended as it finishes,
    and re-running the same sweep against the same journal reuses the
    completed points instead of recomputing them -- crash-safe resume.
    The journal header pins ``(rates, seed, resilient)``; a mismatch
    raises :class:`~repro.audit.JournalError`.

    With ``workers > 1`` the factories must be picklable (top-level
    functions, not closures) and ``ctx`` observability stays on the
    parent process only; pass ``resilient=True`` to run
    :func:`run_resilient_load_test` points instead.
    """
    _check_request_factory(request_factory)
    seed = ctx.resolve_seed(seed) if ctx is not None else (0 if seed is None else seed)
    rates = list(rates)
    if not rates:
        return []
    point_seeds = sweep_seeds(seed, len(rates))
    tasks = [
        (engine_factory, request_factory, rate, point_seed, resilient)
        for rate, point_seed in zip(rates, point_seeds)
    ]
    report_cls = ResilientLoadReport if resilient else LoadTestReport
    reports: List[Optional[LoadTestReport]] = [None] * len(tasks)
    if journal is not None:
        from repro.core.journal import RunJournal

        if not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        journal.write_header({
            "tool": "load_sweep",
            "rates": [float(rate) for rate in rates],
            "seed": int(seed),
            "resilient": bool(resilient),
        })
        points = journal.completed_keys()
        for index in range(len(tasks)):
            payload = points.get(_point_key(index))
            if payload is not None:
                reports[index] = report_cls.from_dict(payload)
    pending = [index for index in range(len(tasks)) if reports[index] is None]

    def _store(position: int, report) -> None:
        index = pending[position]
        reports[index] = report
        if journal is not None:
            journal.append(_point_key(index), report.to_dict())

    if pending:
        map_with_retries(
            _load_point,
            [tasks[index] for index in pending],
            workers=workers,
            on_result=_store,
        )
    return reports


def max_sustainable_rate(
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    low: float,
    high: float,
    iterations: int = 6,
    seed: int = 0,
    workers: Optional[object] = None,
) -> float:
    """Bisect for the highest rate the engine keeps up with.

    With ``workers > 1`` each iteration probes that many evenly spaced
    interior rates concurrently (every probe reuses ``seed``, exactly
    like the serial bisection), then narrows the bracket to the lowest
    saturated / highest unsaturated probe -- a k-section that converges
    faster per wall-clock iteration but returns the same kind of lower
    bound.  ``workers`` resolving to 1 keeps the classic bisection.
    """
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    _check_request_factory(request_factory)
    count = resolve_worker_count(workers, 2**31)
    if count <= 1:
        for _ in range(iterations):
            mid = (low + high) / 2
            report = run_load_test(
                engine_factory=engine_factory,
                request_factory=request_factory,
                offered_rate=mid,
                seed=seed,
            )
            if report.saturated:
                high = mid
            else:
                low = mid
        return low
    for _ in range(iterations):
        span = high - low
        probes = [low + span * (j + 1) / (count + 1) for j in range(count)]
        tasks = [
            (engine_factory, request_factory, rate, seed, False)
            for rate in probes
        ]
        reports = map_with_retries(_load_point, tasks, workers=count)
        new_high = high
        new_low = low
        for rate, report in zip(probes, reports):
            if report.saturated:
                new_high = min(new_high, rate)
                break
            new_low = rate
        low, high = new_low, new_high
    return low
