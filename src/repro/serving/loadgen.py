"""Open-loop load generation and sustainable-throughput search.

The paper's Figure 17(d, e) sweeps the engine's batch-size knob under a
backlog; production serving instead sees an *arrival process*.  This
module adds the standard open-loop methodology on top of the engine:
Poisson arrivals at a target request rate, latency percentiles under
load, and a bisection search for the maximum sustainable rate (the
knee of the latency curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.api.compat import positional_shim
from repro.core.metrics import goodput_fraction, percentile, slo_violation_rate
from repro.serving.engine import LlmServingEngine, ServingReport
from repro.serving.request import Request, RequestState, RetryPolicy

__all__ = [
    "LoadTestReport",
    "ResilientLoadReport",
    "RetryPolicy",
    "max_sustainable_rate",
    "poisson_arrivals",
    "run_load_test",
    "run_resilient_load_test",
]


@dataclass(frozen=True)
class LoadTestReport:
    """One open-loop load point."""

    offered_rate: float          # requests/s offered
    achieved_rate: float         # requests/s completed
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    saturated: bool              # completions lag arrivals

    @property
    def goodput_fraction(self) -> float:
        return self.achieved_rate / self.offered_rate if self.offered_rate else 0.0


def poisson_arrivals(
    requests: Sequence[Request], rate: float, seed: int = 0
) -> List[Request]:
    """Assign Poisson arrival times (rate in requests/s), in place."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    clock = 0.0
    for request, gap in zip(requests, gaps):
        clock += float(gap)
        request.arrival_time = clock
    return list(requests)


@positional_shim("engine_factory", "request_factory", "offered_rate", "seed")
def run_load_test(
    *,
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    offered_rate: float,
    seed: Optional[int] = None,
    ctx=None,
) -> LoadTestReport:
    """Serve one Poisson-arrival workload at ``offered_rate``.

    With a :class:`~repro.api.RunContext` passed as ``ctx``, the run is
    traced/metered through it and its seed serves as the default.
    """
    seed = ctx.resolve_seed(seed) if ctx is not None else (0 if seed is None else seed)
    requests = poisson_arrivals(request_factory(), offered_rate, seed)
    engine = engine_factory()
    if ctx is not None:
        engine.bind_context(ctx)
    report: ServingReport = engine.run(requests)
    last_arrival = max(r.arrival_time for r in requests)
    achieved = len(requests) / report.total_time
    ttfts = [r.ttft for r in requests]
    return LoadTestReport(
        offered_rate=offered_rate,
        achieved_rate=achieved,
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99),
        mean_tpot=report.mean_tpot,
        # Saturated when the engine finishes well after arrivals stop.
        saturated=report.total_time > 1.25 * last_arrival,
    )


@dataclass(frozen=True)
class ResilientLoadReport:
    """One open-loop load point under graceful degradation.

    Unlike :class:`LoadTestReport`, the engine is expected to shed and
    retry, so completions are partitioned and quality is measured as
    goodput (tokens of requests finished within the SLO) rather than
    raw throughput.
    """

    offered_rate: float
    finished: int
    shed: int
    failed: int
    retried: int
    mean_ttft: float
    p99_ttft: float
    slo_violation_rate: float
    goodput_fraction: float       # fraction of submitted tokens delivered in-SLO
    serving: ServingReport

    @property
    def completion_rate(self) -> float:
        return self.serving.completion_rate


@positional_shim("engine_factory", "request_factory", "offered_rate", "seed")
def run_resilient_load_test(
    *,
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    offered_rate: float,
    seed: Optional[int] = None,
    ctx=None,
) -> ResilientLoadReport:
    """Serve one Poisson workload on a degradation-enabled engine.

    The factory must return an engine constructed with a
    :class:`~repro.serving.engine.ResiliencePolicy` (and optionally a
    fault injector); shed requests then surface in the report instead
    of crashing the run.  ``ctx`` works as in :func:`run_load_test`.
    """
    seed = ctx.resolve_seed(seed) if ctx is not None else (0 if seed is None else seed)
    requests = poisson_arrivals(request_factory(), offered_rate, seed)
    engine = engine_factory()
    if ctx is not None:
        engine.bind_context(ctx)
    report = engine.run(requests)
    finished = [r for r in requests if r.state is RequestState.FINISHED]
    ttfts = [r.ttft for r in finished]
    deadline = engine.policy.deadline if engine.policy else None
    if deadline is not None:
        good = [r for r in finished if r.ttft <= deadline]
        violations = (
            slo_violation_rate(ttfts, deadline) * len(finished)
            + (len(requests) - len(finished))
        ) / len(requests)
    else:
        good = finished
        violations = (len(requests) - len(finished)) / len(requests)
    good_tokens = sum(r.output_tokens for r in good)
    submitted_tokens = sum(r.output_tokens for r in requests)
    return ResilientLoadReport(
        offered_rate=offered_rate,
        finished=len(finished),
        shed=report.shed_requests,
        failed=report.failed_requests,
        retried=report.retried_requests,
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99) if ttfts else 0.0,
        slo_violation_rate=violations,
        goodput_fraction=goodput_fraction(good_tokens, submitted_tokens),
        serving=report,
    )


def max_sustainable_rate(
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    low: float,
    high: float,
    iterations: int = 6,
    seed: int = 0,
) -> float:
    """Bisect for the highest rate the engine keeps up with."""
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    for _ in range(iterations):
        mid = (low + high) / 2
        report = run_load_test(
            engine_factory=engine_factory,
            request_factory=request_factory,
            offered_rate=mid,
            seed=seed,
        )
        if report.saturated:
            high = mid
        else:
            low = mid
    return low
