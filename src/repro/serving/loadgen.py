"""Open-loop load generation and sustainable-throughput search.

The paper's Figure 17(d, e) sweeps the engine's batch-size knob under a
backlog; production serving instead sees an *arrival process*.  This
module adds the standard open-loop methodology on top of the engine:
Poisson arrivals at a target request rate, latency percentiles under
load, and a bisection search for the maximum sustainable rate (the
knee of the latency curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.metrics import percentile
from repro.serving.engine import LlmServingEngine, ServingReport
from repro.serving.request import Request


@dataclass(frozen=True)
class LoadTestReport:
    """One open-loop load point."""

    offered_rate: float          # requests/s offered
    achieved_rate: float         # requests/s completed
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    saturated: bool              # completions lag arrivals

    @property
    def goodput_fraction(self) -> float:
        return self.achieved_rate / self.offered_rate if self.offered_rate else 0.0


def poisson_arrivals(
    requests: Sequence[Request], rate: float, seed: int = 0
) -> List[Request]:
    """Assign Poisson arrival times (rate in requests/s), in place."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    clock = 0.0
    for request, gap in zip(requests, gaps):
        clock += float(gap)
        request.arrival_time = clock
    return list(requests)


def run_load_test(
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    offered_rate: float,
    seed: int = 0,
) -> LoadTestReport:
    """Serve one Poisson-arrival workload at ``offered_rate``."""
    requests = poisson_arrivals(request_factory(), offered_rate, seed)
    engine = engine_factory()
    report: ServingReport = engine.run(requests)
    last_arrival = max(r.arrival_time for r in requests)
    achieved = len(requests) / report.total_time
    ttfts = [r.ttft for r in requests]
    return LoadTestReport(
        offered_rate=offered_rate,
        achieved_rate=achieved,
        mean_ttft=report.mean_ttft,
        p99_ttft=percentile(ttfts, 99),
        mean_tpot=report.mean_tpot,
        # Saturated when the engine finishes well after arrivals stop.
        saturated=report.total_time > 1.25 * last_arrival,
    )


def max_sustainable_rate(
    engine_factory: Callable[[], LlmServingEngine],
    request_factory: Callable[[], List[Request]],
    low: float,
    high: float,
    iterations: int = 6,
    seed: int = 0,
) -> float:
    """Bisect for the highest rate the engine keeps up with."""
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    for _ in range(iterations):
        mid = (low + high) / 2
        report = run_load_test(engine_factory, request_factory, mid, seed)
        if report.saturated:
            high = mid
        else:
            low = mid
    return low
