"""Single-device RecSys serving (Section 3.5, Figure 11).

The Gaudi SDK lacks multi-device RecSys support (no TorchRec), so the
paper -- and this model -- serve RM1/RM2 on a single device.  The
server batches inference requests and reports latency, throughput,
power, and energy per request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.dlrm import DlrmCostModel, DlrmForwardEstimate


@dataclass(frozen=True)
class RecSysReport:
    """Metrics of one batched RecSys inference."""

    device: str
    model_name: str
    batch: int
    latency: float
    average_power: float

    @property
    def requests_per_s(self) -> float:
        return self.batch / self.latency if self.latency > 0 else 0.0

    @property
    def energy_joules(self) -> float:
        return self.average_power * self.latency

    @property
    def energy_per_request(self) -> float:
        return self.energy_joules / self.batch if self.batch else 0.0


class RecSysServer:
    """Serves batched recommendation inference on one device."""

    def __init__(self, model: DlrmCostModel) -> None:
        self.model = model

    def serve_batch(self, batch: int) -> RecSysReport:
        estimate: DlrmForwardEstimate = self.model.forward(batch)
        return RecSysReport(
            device=estimate.device,
            model_name=estimate.config_name,
            batch=batch,
            latency=estimate.time,
            average_power=estimate.average_power,
        )
