"""Continuous-batching scheduler.

vLLM-style iteration-level scheduling: at every engine step, finished
requests leave, and waiting requests are admitted while (a) the running
decode batch is below ``max_decode_batch`` -- the knob swept in
Figure 17(d, e) -- and (b) the KV block pool can hold their prompts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState


@dataclass
class ScheduleStep:
    """What the engine should execute next."""

    new_requests: List[Request] = field(default_factory=list)
    running: List[Request] = field(default_factory=list)

    @property
    def has_work(self) -> bool:
        return bool(self.new_requests or self.running)


class ContinuousBatchingScheduler:
    """Admission + batching policy over a shared block pool."""

    def __init__(
        self,
        block_manager: BlockManager,
        max_decode_batch: int,
    ) -> None:
        if max_decode_batch <= 0:
            raise ValueError("max_decode_batch must be positive")
        self.block_manager = block_manager
        self.max_decode_batch = max_decode_batch
        self.waiting: List[Request] = []
        self.running: List[Request] = []

    def submit(self, request: Request) -> None:
        if request.state is not RequestState.WAITING:
            raise ValueError(f"request {request.request_id} is not schedulable")
        needed = self.block_manager.blocks_needed(request.input_tokens)
        if needed > self.block_manager.num_blocks:
            raise KvCacheError(
                f"request {request.request_id}'s prompt needs {needed} KV "
                f"blocks but the pool only has {self.block_manager.num_blocks}; "
                "it can never be scheduled"
            )
        self.waiting.append(request)

    @property
    def has_unfinished(self) -> bool:
        return bool(self.waiting or self.running)

    def step(self, now: float) -> ScheduleStep:
        """Admit what fits, retire what finished, return the batch."""
        # Retire finished requests and release their blocks.
        still_running: List[Request] = []
        for request in self.running:
            if request.state is RequestState.FINISHED:
                self.block_manager.free(request.request_id)
            else:
                still_running.append(request)
        self.running = still_running

        # Admit waiting requests in arrival order (no reordering).
        admitted: List[Request] = []
        while (
            self.waiting
            and len(self.running) + len(admitted) < self.max_decode_batch
            and self.waiting[0].arrival_time <= now
            and self.block_manager.can_allocate(self.waiting[0].input_tokens)
        ):
            request = self.waiting.pop(0)
            self.block_manager.allocate(request.request_id, request.input_tokens)
            request.state = RequestState.RUNNING
            admitted.append(request)
        self.running.extend(admitted)
        return ScheduleStep(new_requests=admitted, running=list(self.running))
