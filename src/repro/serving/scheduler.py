"""Continuous-batching scheduler.

vLLM-style iteration-level scheduling: at every engine step, finished
requests leave, and waiting requests are admitted while (a) the running
decode batch is below ``max_decode_batch`` -- the knob swept in
Figure 17(d, e) -- and (b) the KV block pool can hold their prompts.

Scheduler invariants (membership of ``waiting``/``running``, block
ownership, request-state transitions) live here: the engine asks for
:meth:`preempt` / :meth:`shed` instead of reaching into the queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState


def _insort_by_arrival(queue: List[Request], request: Request, left: bool = False) -> None:
    """Insert into a ``(tier, arrival_time)``-sorted queue by binary
    search.

    Ordering is tier first (premium tiers admit ahead of best-effort
    regardless of arrival), then arrival time -- for uniform-tier
    workloads this reduces to the historical pure-arrival order, so
    untiered runs are byte-identical.  ``left=False`` places the
    request after equal keys (stable FIFO for submissions);
    ``left=True`` places it before them (preempted victims re-admit
    ahead of later arrivals).  Manual bisection because
    :func:`bisect.insort`'s ``key=`` needs Python 3.10+.
    """
    key = (request.tier, request.arrival_time)
    lo, hi = 0, len(queue)
    while lo < hi:
        mid = (lo + hi) // 2
        probe = (queue[mid].tier, queue[mid].arrival_time)
        if probe < key or (not left and probe == key):
            lo = mid + 1
        else:
            hi = mid
    queue.insert(lo, request)


@dataclass
class ScheduleStep:
    """What the engine should execute next."""

    new_requests: List[Request] = field(default_factory=list)
    running: List[Request] = field(default_factory=list)

    @property
    def has_work(self) -> bool:
        return bool(self.new_requests or self.running)


class ContinuousBatchingScheduler:
    """Admission + batching policy over a shared block pool."""

    def __init__(
        self,
        block_manager: BlockManager,
        max_decode_batch: int,
        admission_watermark: float = 1.0,
    ) -> None:
        if max_decode_batch <= 0:
            raise ValueError("max_decode_batch must be positive")
        if not 0.0 < admission_watermark <= 1.0:
            raise ValueError("admission_watermark must be in (0, 1]")
        self.block_manager = block_manager
        self.max_decode_batch = max_decode_batch
        self.admission_watermark = admission_watermark
        #: Waiting queue, kept sorted by (tier, arrival time); mutate
        #: it through :meth:`submit` / :meth:`requeue` /
        #: :meth:`preempt` / :meth:`shed` so the invariant holds.
        self.waiting: List[Request] = []
        #: Distinct tiers submitted so far.  Single-tier queues keep
        #: the O(1) admission early-exit (the queue is then fully
        #: arrival-sorted); mixed tiers must scan past unarrived
        #: premium work to admit arrived best-effort work.
        self._tiers_seen: set = set()
        self.running: List[Request] = []
        #: Bumped whenever the running batch's membership changes; the
        #: engine compares it to decide whether its incremental
        #: decode-batch statistics are still valid.
        self.mutation_count = 0
        self.tracer = None
        self.metrics = None
        #: Per-run :class:`~repro.audit.RunAudit` handle (None = off);
        #: the engine binds it so preemption/resubmission rollbacks
        #: enter the token-conservation ledger.
        self.audit = None
        #: Virtual time of the last :meth:`step`; preempt/shed events
        #: (which take no clock argument) are stamped with it.
        self._last_now = 0.0
        #: Called with each request as it leaves the scheduler in a
        #: terminal state (retired, shed, or failed).  The engine binds
        #: it in ``retain_requests=False`` runs to fold metrics without
        #: keeping the object alive.
        self.on_retire = None

    def bind_observability(self, tracer, metrics) -> None:
        """Attach a tracer / metrics registry (None disables either)."""
        self.tracer = tracer
        self.metrics = metrics

    def bind_audit(self, audit) -> None:
        """Attach a per-run audit handle (or None to detach)."""
        self.audit = audit

    def submit(self, request: Request) -> None:
        if request.state is not RequestState.WAITING:
            raise ValueError(f"request {request.request_id} is not schedulable")
        needed = self.block_manager.blocks_needed(request.input_tokens)
        if needed > self.block_manager.num_blocks:
            raise KvCacheError(
                f"request {request.request_id}'s prompt needs {needed} KV "
                f"blocks but the pool only has {self.block_manager.num_blocks}; "
                "it can never be scheduled"
            )
        self._tiers_seen.add(request.tier)
        _insort_by_arrival(self.waiting, request)

    def requeue(self, request: Request, at: float) -> None:
        """Pull a waiting request and resubmit it to arrive at ``at``
        (client-style deadline retry with backoff)."""
        self.waiting.remove(request)
        if self.audit is not None:
            # Resubmission discards checkpointed progress.
            self.audit.on_tokens_rolled_back(request.generated)
        request.resubmit(at)
        _insort_by_arrival(self.waiting, request)

    @property
    def has_unfinished(self) -> bool:
        return bool(self.waiting or self.running)

    def next_blocked(self, now: float):
        """The highest-priority waiting request that has already
        arrived (None when nothing has) -- the engine's kv-exhaustion
        probe.  For single-tier queues this is ``waiting[0]`` exactly
        when it has arrived."""
        for request in self.waiting:
            if request.arrival_time <= now:
                return request
        return None

    def next_arrival(self) -> float:
        """Earliest arrival among waiting requests (inf when empty);
        the engine's idle clock-jump target."""
        if not self.waiting:
            return float("inf")
        if len(self._tiers_seen) <= 1:
            return self.waiting[0].arrival_time
        return min(request.arrival_time for request in self.waiting)

    def step(self, now: float) -> ScheduleStep:
        """Admit what fits, retire what finished, return the batch."""
        self._last_now = now
        # Retire finished requests and release their blocks.
        still_running: List[Request] = []
        retired = 0
        for request in self.running:
            if request.state is RequestState.FINISHED:
                blocks = len(self.block_manager.block_list(request.request_id))
                self.block_manager.free(request.request_id)
                retired += 1
                if self.on_retire is not None:
                    self.on_retire(request)
                if self.tracer is not None:
                    # Pool bookkeeping is instantaneous on the virtual
                    # clock; the zero-width span marks the event on the
                    # ``kv`` track with its block count.
                    self.tracer.record(
                        "kv.free", "kv", now, now,
                        request_id=request.request_id, blocks=blocks,
                    )
            else:
                still_running.append(request)
        self.running = still_running

        # Admit waiting requests in (tier, arrival) order -- no
        # reordering within a traffic class.  A restarted request
        # re-allocates its full context (prompt plus any checkpointed
        # tokens to recompute).  An arrived request that does not fit
        # the KV pool blocks everything behind it (head-of-line within
        # the priority order, the historical semantics); an *unarrived*
        # request is skipped only in mixed-tier queues, where a
        # premium request arriving later must not block an arrived
        # best-effort one.
        admitted: List[Request] = []
        index = 0
        single_tier = len(self._tiers_seen) <= 1
        while (
            index < len(self.waiting)
            and len(self.running) + len(admitted) < self.max_decode_batch
        ):
            request = self.waiting[index]
            if request.arrival_time > now:
                if single_tier:
                    break  # arrival-sorted: nothing behind has arrived
                index += 1
                continue
            if not self.block_manager.has_headroom(
                request.context_len, self.admission_watermark
            ):
                break
            self.waiting.pop(index)
            blocks = self.block_manager.allocate(request.request_id, request.context_len)
            request.start_running()
            admitted.append(request)
            if self.tracer is not None:
                self.tracer.record(
                    "kv.allocate", "kv", now, now,
                    request_id=request.request_id, blocks=len(blocks),
                )
        self.running.extend(admitted)
        if admitted or retired:
            self.mutation_count += 1
        if self.tracer is not None:
            # Scheduling is instantaneous on the virtual clock, so the
            # span is zero-width; its args carry the admission ledger.
            self.tracer.record(
                "scheduler.step",
                "scheduler",
                now,
                now,
                admitted=len(admitted),
                retired=retired,
                running=len(self.running),
                waiting=len(self.waiting),
            )
        if self.metrics is not None:
            self.metrics.counter("scheduler.steps").inc()
            if admitted:
                self.metrics.counter("scheduler.admitted").inc(len(admitted))
            if retired:
                self.metrics.counter("scheduler.retired").inc(retired)
            self.metrics.gauge("scheduler.running").set(len(self.running))
            self.metrics.gauge("scheduler.waiting").set(len(self.waiting))
        return ScheduleStep(new_requests=admitted, running=list(self.running))

    # -- degradation paths ------------------------------------------------
    def preempt(self, victim: Request, from_checkpoint: bool = False) -> None:
        """Evict a running request back to the head of the wait queue.

        Frees its KV blocks and rolls its progress back (to zero for
        capacity preemption, to the last checkpoint for fault
        recovery); the victim is re-admitted ahead of later arrivals.

        A victim that already FINISHED this step (but has not been
        retired by the next :meth:`step` yet) is retired here instead of
        restarted -- re-running a served request would double-serve it.
        """
        if victim not in self.running:
            raise ValueError(f"request {victim.request_id} is not running")
        self.running.remove(victim)
        self.mutation_count += 1
        blocks = len(self.block_manager.block_list(victim.request_id))
        self.block_manager.free(victim.request_id)
        if victim.state is RequestState.FINISHED:
            if self.on_retire is not None:
                self.on_retire(victim)
            if self.tracer is not None:
                self.tracer.record(
                    "kv.free", "kv", self._last_now, self._last_now,
                    request_id=victim.request_id, blocks=blocks,
                )
            return
        if self.audit is not None:
            kept = victim.checkpoint if from_checkpoint else 0
            self.audit.on_tokens_rolled_back(victim.generated - kept)
        victim.restart(from_checkpoint=from_checkpoint)
        _insort_by_arrival(self.waiting, victim, left=True)
        if self.tracer is not None:
            self.tracer.instant(
                "preempt",
                "scheduler",
                self._last_now,
                request_id=victim.request_id,
                from_checkpoint=from_checkpoint,
            )
        if self.metrics is not None:
            self.metrics.counter("scheduler.preemptions").inc()

    def shed(self, request: Request, reason: str) -> None:
        """Drop a request from either queue with a rejection reason.

        Shedding a request that already FINISHED (still awaiting
        retirement) retires it instead -- it was served, not rejected.
        """
        if request in self.waiting:
            self.waiting.remove(request)
        elif request in self.running:
            self.running.remove(request)
            self.mutation_count += 1
            self.block_manager.free(request.request_id)
            if request.state is RequestState.FINISHED:
                if self.on_retire is not None:
                    self.on_retire(request)
                return
        else:
            raise ValueError(f"request {request.request_id} is not scheduled")
        request.shed(reason)
        if self.on_retire is not None:
            self.on_retire(request)
        if self.tracer is not None:
            self.tracer.instant(
                "shed",
                "scheduler",
                self._last_now,
                request_id=request.request_id,
                reason=reason,
            )
        if self.metrics is not None:
            self.metrics.counter("scheduler.sheds").inc()

    def fail_all(self, reason: str) -> List[Request]:
        """Terminally fail every scheduled request (e.g. total outage).

        Requests that FINISHED during the last step (awaiting retirement)
        are retired, not failed -- they were already served.
        """
        victims = [
            r for r in self.waiting + self.running
            if r.state is not RequestState.FINISHED
        ]
        finished = [r for r in self.running if r.state is RequestState.FINISHED]
        for request in self.running:
            self.block_manager.free(request.request_id)
        if self.running:
            self.mutation_count += 1
        self.waiting = []
        self.running = []
        for request in victims:
            request.fail(reason)
        if self.on_retire is not None:
            for request in finished:
                self.on_retire(request)
            for request in victims:
                self.on_retire(request)
        if victims and self.tracer is not None:
            self.tracer.instant(
                "fail_all", "scheduler", self._last_now,
                victims=len(victims), reason=reason,
            )
        if victims and self.metrics is not None:
            self.metrics.counter("scheduler.failed").inc(len(victims))
        return victims
