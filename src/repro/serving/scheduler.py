"""Continuous-batching scheduler.

vLLM-style iteration-level scheduling: at every engine step, finished
requests leave, and waiting requests are admitted while (a) the running
decode batch is below ``max_decode_batch`` -- the knob swept in
Figure 17(d, e) -- and (b) the KV block pool can hold their prompts.

Scheduler invariants (membership of ``waiting``/``running``, block
ownership, request-state transitions) live here: the engine asks for
:meth:`preempt` / :meth:`shed` instead of reaching into the queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState


@dataclass
class ScheduleStep:
    """What the engine should execute next."""

    new_requests: List[Request] = field(default_factory=list)
    running: List[Request] = field(default_factory=list)

    @property
    def has_work(self) -> bool:
        return bool(self.new_requests or self.running)


class ContinuousBatchingScheduler:
    """Admission + batching policy over a shared block pool."""

    def __init__(
        self,
        block_manager: BlockManager,
        max_decode_batch: int,
        admission_watermark: float = 1.0,
    ) -> None:
        if max_decode_batch <= 0:
            raise ValueError("max_decode_batch must be positive")
        if not 0.0 < admission_watermark <= 1.0:
            raise ValueError("admission_watermark must be in (0, 1]")
        self.block_manager = block_manager
        self.max_decode_batch = max_decode_batch
        self.admission_watermark = admission_watermark
        self.waiting: List[Request] = []
        self.running: List[Request] = []

    def submit(self, request: Request) -> None:
        if request.state is not RequestState.WAITING:
            raise ValueError(f"request {request.request_id} is not schedulable")
        needed = self.block_manager.blocks_needed(request.input_tokens)
        if needed > self.block_manager.num_blocks:
            raise KvCacheError(
                f"request {request.request_id}'s prompt needs {needed} KV "
                f"blocks but the pool only has {self.block_manager.num_blocks}; "
                "it can never be scheduled"
            )
        self.waiting.append(request)

    @property
    def has_unfinished(self) -> bool:
        return bool(self.waiting or self.running)

    def step(self, now: float) -> ScheduleStep:
        """Admit what fits, retire what finished, return the batch."""
        # Retire finished requests and release their blocks.
        still_running: List[Request] = []
        for request in self.running:
            if request.state is RequestState.FINISHED:
                self.block_manager.free(request.request_id)
            else:
                still_running.append(request)
        self.running = still_running

        # Admit waiting requests in arrival order (no reordering).  A
        # restarted request re-allocates its full context (prompt plus
        # any checkpointed tokens to recompute).
        admitted: List[Request] = []
        while (
            self.waiting
            and len(self.running) + len(admitted) < self.max_decode_batch
            and self.waiting[0].arrival_time <= now
            and self.block_manager.has_headroom(
                self.waiting[0].context_len, self.admission_watermark
            )
        ):
            request = self.waiting.pop(0)
            self.block_manager.allocate(request.request_id, request.context_len)
            request.state = RequestState.RUNNING
            admitted.append(request)
        self.running.extend(admitted)
        return ScheduleStep(new_requests=admitted, running=list(self.running))

    # -- degradation paths ------------------------------------------------
    def preempt(self, victim: Request, from_checkpoint: bool = False) -> None:
        """Evict a running request back to the head of the wait queue.

        Frees its KV blocks and rolls its progress back (to zero for
        capacity preemption, to the last checkpoint for fault
        recovery); the victim is re-admitted ahead of later arrivals.
        """
        if victim not in self.running:
            raise ValueError(f"request {victim.request_id} is not running")
        self.running.remove(victim)
        self.block_manager.free(victim.request_id)
        victim.restart(from_checkpoint=from_checkpoint)
        self.waiting.insert(0, victim)

    def shed(self, request: Request, reason: str) -> None:
        """Drop a request from either queue with a rejection reason."""
        if request in self.waiting:
            self.waiting.remove(request)
        elif request in self.running:
            self.running.remove(request)
            self.block_manager.free(request.request_id)
        else:
            raise ValueError(f"request {request.request_id} is not scheduled")
        request.shed(reason)

    def fail_all(self, reason: str) -> List[Request]:
        """Terminally fail every scheduled request (e.g. total outage)."""
        victims = self.waiting + self.running
        for request in self.running:
            self.block_manager.free(request.request_id)
        self.waiting = []
        self.running = []
        for request in victims:
            request.fail(reason)
        return victims
