"""BlockTable vs BlockList construction (Figure 16).

Given the per-request block lists from the
:class:`~repro.serving.kv_cache.BlockManager`, the baseline engine
builds a 2-D ``BlockTable`` padded with zeros to the longest request,
while the optimized engine concatenates only the *effectual* indices
into a flat ``BlockList``.  The padding fraction of the BlockTable is
exactly the redundant-gather fraction swept in Figure 17(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class BlockTable:
    """The baseline's zero-padded 2-D table."""

    table: np.ndarray           # [batch, max_blocks], int
    valid_counts: np.ndarray    # [batch]

    @property
    def total_entries(self) -> int:
        return int(self.table.size)

    @property
    def effectual_entries(self) -> int:
        return int(self.valid_counts.sum())

    @property
    def padding_fraction(self) -> float:
        total = self.total_entries
        return 1.0 - self.effectual_entries / total if total else 0.0


@dataclass(frozen=True)
class BlockList:
    """The optimized flat list of effectual block indices."""

    blocks: np.ndarray          # [sum(valid_counts)]
    request_offsets: np.ndarray  # [batch + 1] prefix offsets

    @property
    def total_entries(self) -> int:
        return int(self.blocks.size)


def build_block_table(per_request_blocks: Sequence[Sequence[int]]) -> BlockTable:
    """Pad per-request block lists into the 2-D BlockTable."""
    if not per_request_blocks:
        raise ValueError("need at least one request")
    counts = np.array([len(b) for b in per_request_blocks], dtype=np.int64)
    if (counts == 0).any():
        raise ValueError("every request needs at least one block")
    width = int(counts.max())
    table = np.zeros((len(per_request_blocks), width), dtype=np.int64)
    for row, blocks in enumerate(per_request_blocks):
        table[row, : len(blocks)] = blocks
    return BlockTable(table=table, valid_counts=counts)


def build_block_list(per_request_blocks: Sequence[Sequence[int]]) -> BlockList:
    """Concatenate effectual indices into the flat BlockList."""
    if not per_request_blocks:
        raise ValueError("need at least one request")
    if any(len(b) == 0 for b in per_request_blocks):
        raise ValueError("every request needs at least one block")
    flat: List[int] = []
    offsets = [0]
    for blocks in per_request_blocks:
        flat.extend(blocks)
        offsets.append(len(flat))
    return BlockList(
        blocks=np.asarray(flat, dtype=np.int64),
        request_offsets=np.asarray(offsets, dtype=np.int64),
    )
