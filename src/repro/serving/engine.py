"""Step-driven LLM serving engine (the vLLM analog).

The engine advances a virtual clock: each iteration admits requests
through the continuous-batching scheduler, charges a prefill phase for
newly admitted prompts, then one decode step for the whole running
batch, using the bound :class:`~repro.models.llama.LlamaCostModel` and
the selected decode-attention implementation.  TTFT and TPOT fall out
of the per-request timestamps, which is how Figure 17(d, e) is
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.llama import DecodeAttention, LlamaCostModel
from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler

#: Default KV block size in tokens (matches the paged-attention kernel).
DEFAULT_BLOCK_SIZE = 128


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics of one serving run."""

    device: str
    attention: str
    num_requests: int
    max_decode_batch: int
    total_time: float
    total_output_tokens: int
    mean_ttft: float
    mean_tpot: float
    average_power: float
    engine_steps: int
    preemptions: int

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_output_tokens / self.total_time if self.total_time > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.num_requests / self.total_time if self.total_time > 0 else 0.0

    @property
    def energy_per_token(self) -> float:
        if self.total_output_tokens == 0:
            return 0.0
        return self.average_power * self.total_time / self.total_output_tokens


class LlmServingEngine:
    """Serves batches of requests over a Llama cost model."""

    def __init__(
        self,
        model: LlamaCostModel,
        attention: DecodeAttention = DecodeAttention.PAGED_OPT,
        max_decode_batch: int = 64,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_kv_blocks: Optional[int] = None,
    ) -> None:
        self.model = model
        self.attention = attention
        if num_kv_blocks is None:
            capacity_tokens = model.max_kv_tokens()
            num_kv_blocks = max(1, capacity_tokens // block_size)
        self.block_manager = BlockManager(num_kv_blocks, block_size)
        self.scheduler = ContinuousBatchingScheduler(self.block_manager, max_decode_batch)
        self.max_decode_batch = max_decode_batch

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve ``requests`` to completion; returns aggregate metrics."""
        if not requests:
            raise ValueError("need at least one request")
        for request in requests:
            self.scheduler.submit(request)

        now = 0.0
        steps = 0
        preemptions = 0
        activity = ActivityAccumulator()
        while self.scheduler.has_unfinished:
            schedule = self.scheduler.step(now)
            if not schedule.has_work:
                if not self.scheduler.waiting:
                    break  # everything retired in this step
                head = min(self.scheduler.waiting, key=lambda r: r.arrival_time)
                if head.arrival_time <= now:
                    # Nothing runs, nothing admits, and the head request
                    # has already arrived: the pool can never serve it.
                    raise KvCacheError(
                        f"request {head.request_id} cannot be admitted: "
                        f"{head.input_tokens} prompt tokens exceed the free "
                        "KV pool with no running request to retire"
                    )
                # All remaining requests arrive later; jump the clock.
                now = max(now, head.arrival_time)
                continue
            for request in schedule.new_requests:
                # vLLM prefills prompts individually (no padding waste).
                phase = self.model.prefill(1, request.input_tokens)
                now += phase.time
                activity.merge(phase.activity)
                request.record_token(now)
            running = [r for r in schedule.running if r.state is RequestState.RUNNING]
            if not running:
                steps += 1
                continue
            preemptions += self._ensure_headroom(running)
            running = [r for r in running if r.state is RequestState.RUNNING]
            if not running:
                steps += 1
                continue
            phase = self.model.decode_step(
                len(running), [r.context_len for r in running], self.attention
            )
            now += phase.time
            activity.merge(phase.activity)
            for request in running:
                self.block_manager.append_token(request.request_id)
                request.record_token(now)
            steps += 1

        finished = list(requests)
        mean_ttft = sum(r.ttft for r in finished) / len(finished)
        mean_tpot = sum(r.tpot for r in finished) / len(finished)
        total_tokens = sum(r.output_tokens for r in finished)
        profile = activity.profile(now)
        power = PowerModel(self.model.device.spec.power).power(profile)
        return ServingReport(
            device=self.model.device.name,
            attention=self.attention.value,
            num_requests=len(finished),
            max_decode_batch=self.max_decode_batch,
            total_time=now,
            total_output_tokens=total_tokens,
            mean_ttft=mean_ttft,
            mean_tpot=mean_tpot,
            average_power=power,
            engine_steps=steps,
            preemptions=preemptions,
        )

    # ------------------------------------------------------------------
    def _ensure_headroom(self, running: List[Request]) -> int:
        """Preempt newest requests until every runner can grow a block."""
        preempted = 0
        while self.block_manager.free_blocks < len(running) and len(running) > 1:
            victim = running.pop()
            self.block_manager.free(victim.request_id)
            self.scheduler.running.remove(victim)
            victim.state = RequestState.WAITING
            victim.generated = 0
            victim.first_token_time = None
            self.scheduler.waiting.insert(0, victim)
            preempted += 1
        return preempted
