"""Step-driven LLM serving engine (the vLLM analog).

The engine advances a virtual clock: each iteration admits requests
through the continuous-batching scheduler, charges a prefill phase for
newly admitted prompts, then one decode step for the whole running
batch, using the bound :class:`~repro.models.llama.LlamaCostModel` and
the selected decode-attention implementation.  TTFT and TPOT fall out
of the per-request timestamps, which is how Figure 17(d, e) is
regenerated.

With a :class:`ResiliencePolicy` (and optionally a
:class:`~repro.faults.injector.FaultInjector`) bound, the engine
degrades gracefully instead of crashing: requests that can never fit
the KV pool are shed with a reason, TTFT deadlines trigger client-style
retries with exponential backoff, device faults preempt the running
batch into checkpointed recompute, and transient kernel failures cost a
wasted step rather than the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.llama import DecodeAttention, LlamaCostModel
from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState, RetryPolicy
from repro.serving.scheduler import ContinuousBatchingScheduler

#: Default KV block size in tokens (matches the paged-attention kernel).
DEFAULT_BLOCK_SIZE = 128


@dataclass(frozen=True)
class ResiliencePolicy:
    """Graceful-degradation knobs for one serving run.

    ``deadline`` is a TTFT SLO in seconds: a request still waiting past
    it is retried (client-style, with exponential backoff per
    ``retry``) and finally shed.  ``checkpoint_interval`` bounds the
    recompute after a device fault; ``admission_watermark`` keeps a
    fraction of the KV pool free for decode growth.
    """

    shed_on_exhaustion: bool = True
    deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_interval: int = 32
    admission_watermark: float = 1.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class FaultStats:
    """Counters of degradation events during one run."""

    device_failures: int = 0
    device_recoveries: int = 0
    fault_preemptions: int = 0
    kernel_retries: int = 0
    deadline_retries: int = 0
    recovered_requests: int = 0


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics of one serving run.

    Latency means are computed over *finished* requests only;
    ``num_requests`` counts everything submitted, partitioned into
    finished / shed / failed / unfinished.
    """

    device: str
    attention: str
    num_requests: int
    max_decode_batch: int
    total_time: float
    total_output_tokens: int
    mean_ttft: float
    mean_tpot: float
    average_power: float
    engine_steps: int
    preemptions: int
    finished_requests: int = 0
    shed_requests: int = 0
    failed_requests: int = 0
    unfinished_requests: int = 0
    retried_requests: int = 0
    kernel_retries: int = 0
    device_failures: int = 0

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_output_tokens / self.total_time if self.total_time > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.num_requests / self.total_time if self.total_time > 0 else 0.0

    @property
    def energy_per_token(self) -> float:
        if self.total_output_tokens == 0:
            return 0.0
        return self.average_power * self.total_time / self.total_output_tokens

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests served to completion."""
        return self.finished_requests / self.num_requests if self.num_requests else 0.0


class LlmServingEngine:
    """Serves batches of requests over a Llama cost model."""

    def __init__(
        self,
        model: LlamaCostModel,
        attention: DecodeAttention = DecodeAttention.PAGED_OPT,
        max_decode_batch: int = 64,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_kv_blocks: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[object] = None,
    ) -> None:
        """``injector`` is a :class:`~repro.faults.injector.FaultInjector`
        (duck-typed so the serving layer stays import-independent of
        :mod:`repro.faults`)."""
        self.model = model
        self.attention = attention
        if num_kv_blocks is None:
            capacity_tokens = model.max_kv_tokens()
            num_kv_blocks = max(1, capacity_tokens // block_size)
        self.block_manager = BlockManager(num_kv_blocks, block_size)
        self.policy = policy
        self.injector = injector
        self.scheduler = ContinuousBatchingScheduler(
            self.block_manager,
            max_decode_batch,
            admission_watermark=policy.admission_watermark if policy else 1.0,
        )
        self.max_decode_batch = max_decode_batch
        self.fault_stats = FaultStats()
        self._fault_restarted_ids: set = set()

    @property
    def _graceful(self) -> bool:
        return self.policy is not None and self.policy.shed_on_exhaustion

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve ``requests``; returns aggregate metrics.

        Without a policy, an unservable request raises
        :class:`KvCacheError` (fail fast); with one, it is shed with a
        reason and the run continues.
        """
        if not requests:
            raise ValueError("need at least one request")
        for request in requests:
            if self.policy and self.policy.deadline is not None and request.deadline is None:
                request.deadline = self.policy.deadline
            self._submit(request)

        now = 0.0
        steps = 0
        preemptions = 0
        activity = ActivityAccumulator()
        while self.scheduler.has_unfinished:
            now = self._advance_faults(now)
            self._enforce_deadlines(now)
            schedule = self.scheduler.step(now)
            if not schedule.has_work:
                if not self.scheduler.waiting:
                    break  # everything retired in this step
                head = min(self.scheduler.waiting, key=lambda r: r.arrival_time)
                if head.arrival_time <= now:
                    # Nothing runs, nothing admits, and the head request
                    # has already arrived: the pool can never serve it.
                    reason = (
                        f"kv-exhausted: {head.context_len} prompt tokens exceed "
                        "the free KV pool with no running request to retire"
                    )
                    if self._graceful:
                        self.scheduler.shed(head, reason)
                        continue
                    raise KvCacheError(
                        f"request {head.request_id} cannot be admitted: {reason}"
                    )
                # All remaining requests arrive later; jump the clock.
                now = max(now, head.arrival_time)
                continue
            slowdown = self._slowdown()
            for request in schedule.new_requests:
                # vLLM prefills prompts individually (no padding waste).
                # A fault-restarted request recomputes its checkpointed
                # tokens too, hence context_len rather than input_tokens.
                phase = self.model.prefill(1, request.context_len)
                now += phase.time * slowdown
                activity.merge(phase.activity)
                request.record_token(now)
                self._maybe_checkpoint(request)
            running = [r for r in schedule.running if r.state is RequestState.RUNNING]
            if not running:
                steps += 1
                continue
            preemptions += self._ensure_headroom(running)
            running = [r for r in running if r.state is RequestState.RUNNING]
            if not running:
                steps += 1
                continue
            phase = self.model.decode_step(
                len(running), [r.context_len for r in running], self.attention
            )
            now += phase.time * slowdown
            activity.merge(phase.activity)
            steps += 1
            if self.injector is not None and self.injector.kernel_fault():
                # Transient kernel failure: the step's output is lost
                # and recomputed next iteration; the time still passed.
                self.fault_stats.kernel_retries += 1
                continue
            for request in running:
                if not self._grow_kv(request):
                    continue
                request.record_token(now)
                self._maybe_checkpoint(request)
        return self._build_report(requests, now, steps, preemptions, activity)

    # ------------------------------------------------------------------
    def _submit(self, request: Request) -> None:
        try:
            self.scheduler.submit(request)
        except KvCacheError as error:
            if not self._graceful:
                raise
            request.shed(f"oversized: {error}")

    def _advance_faults(self, now: float) -> float:
        """Apply fault events due at ``now``; returns the clock, advanced
        past any total-outage window the run had to wait out."""
        if self.injector is None:
            return now
        self._apply_fault_summary(self.injector.advance(now))
        # Total outage: with every device down nothing can execute.  The
        # clock can only move to the next scheduled event (a recovery, if
        # one is coming); a permanent outage fails everything in flight.
        while self.injector.alive_devices() == 0:
            next_time = self.injector.next_event_time
            if next_time is None:
                self.scheduler.fail_all("outage: all devices down")
                break
            now = max(now, next_time)
            self._apply_fault_summary(self.injector.advance(now))
        return now

    def _apply_fault_summary(self, summary: object) -> None:
        self.fault_stats.device_failures += summary.device_failures
        self.fault_stats.device_recoveries += summary.device_recoveries
        if summary.device_failures:
            # A device fault kills the in-flight batch: preempt every
            # runner into checkpointed recompute.
            for victim in list(self.scheduler.running):
                self.scheduler.preempt(victim, from_checkpoint=True)
                self.fault_stats.fault_preemptions += 1
                self._fault_restarted_ids.add(victim.request_id)

    def _enforce_deadlines(self, now: float) -> None:
        if self.policy is None or self.policy.deadline is None:
            return
        for request in list(self.scheduler.waiting):
            if not request.deadline_missed(now):
                continue
            if request.retries < self.policy.retry.max_retries:
                self.scheduler.waiting.remove(request)
                delay = self.policy.retry.backoff(request.retries)
                request.resubmit(now + delay)
                self.scheduler.waiting.append(request)
                self.fault_stats.deadline_retries += 1
            else:
                self.scheduler.shed(
                    request,
                    f"deadline: no first token within {request.deadline:g}s "
                    f"after {request.retries} retries",
                )

    def _slowdown(self) -> float:
        return self.injector.compute_slowdown() if self.injector is not None else 1.0

    def _maybe_checkpoint(self, request: Request) -> None:
        if self.policy is None:
            return
        if request.generated % self.policy.checkpoint_interval == 0:
            request.checkpoint = request.generated

    def _grow_kv(self, request: Request) -> bool:
        """Extend a runner's KV allocation by one token; shed on a full
        pool in graceful mode (only reachable with a single runner)."""
        try:
            self.block_manager.append_token(request.request_id)
            return True
        except KvCacheError:
            if not self._graceful:
                raise
            self.scheduler.shed(request, "kv-exhausted: pool full during decode")
            return False

    def _build_report(
        self,
        requests: Sequence[Request],
        now: float,
        steps: int,
        preemptions: int,
        activity: ActivityAccumulator,
    ) -> ServingReport:
        finished = [r for r in requests if r.state is RequestState.FINISHED]
        self.fault_stats.recovered_requests = sum(
            1 for r in finished if r.request_id in self._fault_restarted_ids
        )
        shed = [r for r in requests if r.state is RequestState.SHED]
        failed = [r for r in requests if r.state is RequestState.FAILED]
        unfinished = len(requests) - len(finished) - len(shed) - len(failed)
        mean_ttft = sum(r.ttft for r in finished) / len(finished) if finished else 0.0
        mean_tpot = sum(r.tpot for r in finished) / len(finished) if finished else 0.0
        total_tokens = sum(r.generated for r in requests)
        profile = activity.profile(now)
        power = PowerModel(self.model.device.spec.power).power(profile)
        return ServingReport(
            device=self.model.device.name,
            attention=self.attention.value,
            num_requests=len(requests),
            max_decode_batch=self.max_decode_batch,
            total_time=now,
            total_output_tokens=total_tokens,
            mean_ttft=mean_ttft,
            mean_tpot=mean_tpot,
            average_power=power,
            engine_steps=steps,
            preemptions=preemptions,
            finished_requests=len(finished),
            shed_requests=len(shed),
            failed_requests=len(failed),
            unfinished_requests=unfinished,
            retried_requests=sum(1 for r in requests if r.retries > 0),
            kernel_retries=self.fault_stats.kernel_retries,
            device_failures=self.fault_stats.device_failures,
        )

    # ------------------------------------------------------------------
    def _ensure_headroom(self, running: List[Request]) -> int:
        """Preempt newest requests until every runner can grow a block."""
        preempted = 0
        while self.block_manager.free_blocks < len(running) and len(running) > 1:
            victim = running.pop()
            self.scheduler.preempt(victim)
            preempted += 1
        return preempted
